"""Ablation bench: Gamma prior sensitivity (§III-C).

The paper uses Gamma(N1 + 0.1, n + 1) and reports "we did not observe a
strong dependence on this value choice".  This bench sweeps (alpha0,
beta0) across two orders of magnitude and checks the spread in
samples-to-half-recall stays within a small constant factor.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_prior_ablation,
)


def test_bench_ablation_prior(benchmark, save_report):
    config = AblationConfig(runs=5)
    result = benchmark.pedantic(
        run_prior_ablation, args=(config,), rounds=1, iterations=1
    )
    save_report("ablation_prior", format_ablation(result))

    half = config.num_instances // 2
    times = {s.label: s.samples_to(half) for s in result.series}
    assert all(t is not None for t in times.values()), times
    fastest, slowest = min(times.values()), max(times.values())
    # "no strong dependence": the whole prior sweep lands within 2x.
    assert slowest <= 2.0 * fastest, times
