"""Bench: the vectorized sampler hot path (Alg. 1 planning throughput).

Times ``ExSample.plan()`` — the Thompson draw + argmax + frame pick that
dominates serving-tick cost — over a 1000-chunk repository at the
serving batch size, and checks the two throughput claims the PR gates:

* the numpy fast path plans at least 5x faster than the pure-Python
  fallback on the same flat-array layout;
* the fallback itself is no slower than the naive per-arm scalar loop
  it replaced (within noise), so losing numpy costs vectorization, not
  an extra penalty.

The ``benchmark`` timing (the regression-gated number) measures the
backend the run actually uses, so the nightly baseline tracks the fast
path while a force-fallback run still produces a comparable report.
"""

import math
import time

from repro.core import backend
from repro.core.belief import DEFAULT_ALPHA0, DEFAULT_BETA0
from repro.core.chunking import fixed_size_chunks
from repro.core.estimator import ChunkStatistics
from repro.core.rng import DecisionRng
from repro.core.sampler import ExSample
from repro.detection.detector import OracleDetector
from repro.tracking.discriminator import OracleDiscriminator
from repro.video.repository import single_clip_repository

NUM_CHUNKS = 1000
CHUNK_FRAMES = 40
BATCH = 8
PLANS = 120


def build_engine(seed: int = 0) -> ExSample:
    total = NUM_CHUNKS * CHUNK_FRAMES
    rng = DecisionRng(seed)
    chunks = fixed_size_chunks(total, CHUNK_FRAMES, rng)
    repo = single_clip_repository(total, [])
    engine = ExSample(
        chunks,
        OracleDetector(repo),
        OracleDiscriminator(),
        rng=rng,
        batch_size=BATCH,
    )
    # a realistic mid-query posterior: skewed hit counts, uneven visits
    for m in range(NUM_CHUNKS):
        n = 1 + (m * 7) % 23
        n1 = (m % 11) % n
        engine.stats.record(m, n1, 0)
        for _ in range(n - 1):
            engine.stats.record(m, 0, 0)
    return engine


def run_plans(engine: ExSample, plans: int = PLANS) -> int:
    picked = 0
    for _ in range(plans):
        picked += len(engine.plan(batch_size=BATCH))
    return picked


def timed_plans(engine: ExSample, plans: int = PLANS) -> float:
    run_plans(engine, plans=4)  # warm the layout and allocator
    start = time.perf_counter()
    run_plans(engine, plans=plans)
    return time.perf_counter() - start


def naive_scalar_gamma(rng: DecisionRng, shape: float) -> float:
    """Marsaglia-Tsang, one arm at a time — the pre-vectorization cost
    model: a Python-level loop body per (row, arm) pair."""
    boost = 1.0
    if shape < 1.0:
        boost = rng.random() ** (1.0 / shape)
        shape += 1.0
    d = shape - 1.0 / 3.0
    c = 1.0 / math.sqrt(9.0 * d)
    while True:
        x = rng.normal()
        v = 1.0 + c * x
        if v <= 0.0:
            continue
        v = v * v * v
        u = rng.random()
        if u < 1.0 - 0.0331 * x * x * x * x:
            return boost * d * v
        if math.log(u) < 0.5 * x * x + d * (1.0 - v + math.log(v)):
            return boost * d * v


def naive_plan_loop(stats: ChunkStatistics, rng: DecisionRng, plans: int) -> float:
    """Per-arm scalar Thompson rounds over the same statistics."""
    n1 = list(stats.n1)
    n = list(stats.n)
    start = time.perf_counter()
    for _ in range(plans):
        for _row in range(BATCH):
            best, best_val = 0, -1.0
            for m in range(NUM_CHUNKS):
                draw = naive_scalar_gamma(rng, n1[m] + DEFAULT_ALPHA0) / (
                    n[m] + DEFAULT_BETA0
                )
                if draw > best_val:
                    best, best_val = m, draw
            assert 0 <= best < NUM_CHUNKS
    return time.perf_counter() - start


def test_bench_sampler_vectorized(benchmark, save_report):
    benchmark.pedantic(
        run_plans,
        setup=lambda: ((build_engine(),), {}),
        rounds=3,
        iterations=1,
    )

    lines = [
        "sampler hot path: plan() over "
        f"{NUM_CHUNKS} chunks, batch={BATCH}, {PLANS} plans per timing",
    ]
    fallback_elapsed = None
    if backend.HAVE_NUMPY:
        old = backend.set_force_fallback(False)
        try:
            fast_elapsed = timed_plans(build_engine(seed=1))
            backend.set_force_fallback(True)
            fallback_elapsed = timed_plans(build_engine(seed=1))
        finally:
            backend.set_force_fallback(old)
        speedup = fallback_elapsed / fast_elapsed
        lines += [
            f"numpy fast path : {fast_elapsed:.4f}s "
            f"({PLANS * BATCH / fast_elapsed:,.0f} frames planned/s)",
            f"pure fallback   : {fallback_elapsed:.4f}s "
            f"({PLANS * BATCH / fallback_elapsed:,.0f} frames planned/s)",
            f"speedup         : {speedup:.1f}x",
        ]
        assert speedup >= 5.0, (
            f"vectorized planning is only {speedup:.1f}x the fallback; "
            "the hot path has regressed"
        )
    else:
        fallback_elapsed = timed_plans(build_engine(seed=1))
        lines.append(f"pure fallback   : {fallback_elapsed:.4f}s (numpy absent)")

    # the fallback must not lose to the per-arm scalar loop it replaced
    naive_plans = max(4, PLANS // 8)  # the naive loop is slow; sample it
    old = backend.set_force_fallback(True)
    try:
        engine = build_engine(seed=2)
        naive_elapsed = (
            naive_plan_loop(engine.stats, DecisionRng(3), naive_plans)
            * PLANS
            / naive_plans
        )
        layout_elapsed = timed_plans(build_engine(seed=2))
    finally:
        backend.set_force_fallback(old)
    lines.append(
        f"naive per-arm   : {naive_elapsed:.4f}s (extrapolated from "
        f"{naive_plans} plans); fallback/naive = "
        f"{layout_elapsed / naive_elapsed:.2f}"
    )
    # a sanity bound, not a tight race: the fallback pays for the
    # bit-identical counter-substream schedule, so it may run somewhat
    # behind the unconstrained naive loop — but never multiples of it
    assert layout_elapsed <= naive_elapsed * 2.0, (
        "the flat-array fallback is slower than the naive per-arm loop "
        f"({layout_elapsed:.3f}s vs {naive_elapsed:.3f}s)"
    )
    save_report("sampler_vectorized", "\n".join(lines))
