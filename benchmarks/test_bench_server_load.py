"""Bench: closed-loop load against the network serving tier.

Boots ``repro server`` as a real subprocess, then drives it with a
closed-loop load generator: 16 client threads x 16 sessions each = 256
concurrent query sessions, every client blocking on each response
before sending its next request (closed-loop: offered load adapts to
server speed, the honest way to measure a latency SLO).

Measured claims, all asserted here:

* the server sustains >= 200 concurrent sessions to completion;
* p99 submit-to-first-result latency stays under a generous CI-safe
  bound (the regression gate in ``check_regression.py`` guards the
  *throughput* trend via this benchmark's calibrated runtime share);
* decision-stream parity — every served session's results payload is
  byte-identical to an uninterrupted in-process ``QueryService`` run of
  the same seeds (warm-start off, so decisions are pure functions of
  each session's seed; only the server-assigned session ids differ and
  are stripped);
* SIGTERM after the load drains cleanly: exit 0, no traceback.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import repro
from repro.serving import QueryService, ServingClient
from repro.video.datasets import build_dataset, scaled_chunk_frames

CLIENTS = 16
SESSIONS_PER_CLIENT = 16  # 16 x 16 = 256 concurrent sessions
DATASET = "dashcam"
CATEGORY = "bicycle"
SCALE = 0.04
# one frame per session per tick: with 256 concurrent sessions a smaller
# budget starves everyone's first result behind the round-robin queue
FRAMES_PER_TICK = CLIENTS * SESSIONS_PER_CLIENT
LIMIT = 4
MAX_SAMPLES = 100
BASE_SEED = 1000
P99_BOUND_SECONDS = 30.0  # CI-safe headroom; see the report for actuals


def _seed(client: int, k: int) -> int:
    return BASE_SEED + client * SESSIONS_PER_CLIENT + k


def _server_env() -> dict:
    env = dict(os.environ)
    package_parent = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_parent, env.get("PYTHONPATH")) if p
    )
    return env


def _boot_server() -> tuple[subprocess.Popen, tuple[str, int]]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "server",
         "--datasets", DATASET, "--scale", str(SCALE),
         "--frames-per-tick", str(FRAMES_PER_TICK),
         "--max-queue", "128"],
        env=_server_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    banner = proc.stdout.readline().strip()
    assert banner.startswith("repro server listening on "), banner
    host, port = banner.rsplit(" ", 1)[1].rsplit(":", 1)
    return proc, (host, int(port))


def _client_loop(client_index, address, latencies, payloads, errors):
    """One closed-loop client: submit a batch of sessions, poll each to
    its first result (the latency clock), then to terminal, then fetch
    the full results payload."""
    try:
        with ServingClient(*address, timeout=120) as client:
            sids, t0 = {}, {}
            for k in range(SESSIONS_PER_CLIENT):
                seed = _seed(client_index, k)
                tenant = f"tenant-{client_index}"
                start = time.perf_counter()
                sids[seed] = client.submit(
                    DATASET, CATEGORY, limit=LIMIT, max_samples=MAX_SAMPLES,
                    seed=seed, tenant=tenant, warm_start=False,
                )
                t0[seed] = start
            pending = dict(sids)
            while pending:
                for seed, sid in list(pending.items()):
                    status = client.status(sid)
                    if status["results_found"] > 0 or status["state"] in (
                        "completed", "exhausted", "cancelled"
                    ):
                        latencies[seed] = time.perf_counter() - t0[seed]
                        del pending[seed]
                if pending:
                    time.sleep(0.005)
            for seed, sid in sids.items():
                client.wait_terminal(sid, timeout=180)
                payloads[seed] = client.results(sid)
    except Exception as exc:  # noqa: BLE001 — surface to the main thread
        errors.append((client_index, exc))


def _run():
    proc, address = _boot_server()
    latencies: dict[int, float] = {}
    payloads: dict[int, dict] = {}
    errors: list = []
    try:
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(i, address, latencies, payloads, errors),
            )
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        with ServingClient(*address) as client:
            stats = client.stats()
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert not errors, errors[:3]
    assert proc.returncode == 0, err
    assert "Traceback" not in err
    return latencies, payloads, stats


def _reference_payloads(seeds):
    """One uninterrupted in-process run of the same seeds."""
    service = QueryService(
        {DATASET: build_dataset(DATASET, categories=None,
                                scale=SCALE, seed=0)},
        chunk_frames={DATASET: scaled_chunk_frames(DATASET, SCALE)},
        frames_per_tick=FRAMES_PER_TICK, seed=0,
    )
    sids = {
        seed: service.submit(DATASET, CATEGORY, limit=LIMIT,
                             max_samples=MAX_SAMPLES, seed=seed,
                             warm_start=False)
        for seed in seeds
    }
    service.run_until_idle()
    return {seed: service.results(sid) for seed, sid in sids.items()}


def _stripped(payload: dict) -> str:
    """Canonical JSON minus the server-assigned session id (admission
    order across client threads is the one thing timing may reorder)."""
    return json.dumps(
        {k: v for k, v in payload.items() if k != "session_id"},
        sort_keys=True,
    )


def test_bench_server_load(benchmark, save_report):
    latencies, payloads, stats = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )

    total = CLIENTS * SESSIONS_PER_CLIENT
    assert len(latencies) == len(payloads) == total
    assert total >= 200  # the "hundreds of concurrent sessions" floor
    assert stats["accepted"] == total

    ordered = sorted(latencies.values())
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1)))]
    worst = ordered[-1]

    reference = _reference_payloads(sorted(payloads))
    mismatches = [
        seed for seed in sorted(payloads)
        if _stripped(payloads[seed]) != _stripped(reference[seed])
    ]

    save_report("server_load", "\n".join([
        "Server load — closed-loop NDJSON clients vs in-process parity",
        f"sessions: {total} across {CLIENTS} client connections "
        f"({SESSIONS_PER_CLIENT} each)",
        f"submit-to-first-result seconds: p50={p50:.4f} p99={p99:.4f} "
        f"max={worst:.4f}",
        f"server stats: {json.dumps(stats, sort_keys=True)}",
        f"decision-stream mismatches vs in-process run: {len(mismatches)}",
    ]))

    assert p99 < P99_BOUND_SECONDS
    assert not mismatches, f"parity broke for seeds {mismatches[:5]}"
