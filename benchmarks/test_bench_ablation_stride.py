"""Ablation bench: §II-B's naive strided-scan failure modes.

"If objects appear in the video for much longer than the sampling rate,
we may repeatedly compute detections of the same object. Similarly, if
objects appear for shorter than the sampling rate, we may completely
miss some objects."  Checked claims: large strides cap recall below 1.0
for short-lived objects; small strides spend most occupied frames on
re-detections; and no single stride is right for both duration regimes —
the motivation for adaptive sampling.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_stride_ablation,
    run_stride_ablation,
)

STRIDES = (1, 30, 300, 3000)
DURATIONS = (100.0, 2000.0)


def test_bench_ablation_stride(benchmark, save_report):
    config = AblationConfig(total_frames=100_000, num_instances=200)
    outcomes = benchmark.pedantic(
        run_stride_ablation, args=(config, STRIDES, DURATIONS), rounds=1, iterations=1
    )
    save_report("ablation_stride", format_stride_ablation(outcomes))

    by = {(o.mean_duration, o.stride): o for o in outcomes}

    # stride >> duration: a full pass permanently misses short objects.
    assert by[(100.0, 3000)].misses_objects
    assert by[(100.0, 3000)].recall_after_full_pass < 0.5
    # stride << duration: most occupied frames are wasted re-detections.
    assert by[(2000.0, 1)].redundant_fraction > 0.8
    # recall ceiling is monotone non-increasing in the stride.
    for duration in DURATIONS:
        recalls = [by[(duration, s)].recall_after_full_pass for s in STRIDES]
        assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    # no stride wins both regimes: any stride safe for short objects
    # (recall >= 0.95) is badly redundant on long ones (> 30% waste).
    for stride in STRIDES:
        if by[(100.0, stride)].recall_after_full_pass >= 0.95:
            assert by[(2000.0, stride)].redundant_fraction > 0.3
