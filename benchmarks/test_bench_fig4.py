"""Bench: Fig. 4 — chunk-count sweep (§IV-C).

Paper shape: any chunking beats random under skew; the optimal-allocation
ceiling rises with the chunk count, but ExSample's achieved results are
non-monotonic — the many-chunk configuration pays an exploration tax.
"""

import numpy as np

from repro.experiments.fig4 import Fig4Config, format_fig4, run_fig4


def _median_samples_to(band, target):
    """First grid point where the median trajectory reaches ``target``."""
    hits = np.nonzero(band.median >= target)[0]
    return int(band.grid[hits[0]]) if len(hits) else None


def test_bench_fig4(benchmark, save_report):
    config = Fig4Config(
        total_frames=300_000,
        num_instances=400,
        chunk_counts=(1, 2, 16, 128, 1024),
        runs=5,
        max_samples=6000,
    )
    result = benchmark.pedantic(run_fig4, args=(config,), rounds=1, iterations=1)
    save_report("fig4", format_fig4(result))

    # chunking exploits the skew: 16 and 128 chunks reach half recall in
    # fewer samples than the 1-chunk (== random) configuration.  Final
    # counts are not compared — every configuration saturates by the end
    # of the budget, so the signal lives mid-trajectory.
    by_m = {s.num_chunks: s for s in result.series}
    half = config.num_instances // 2
    to_half = {m: _median_samples_to(s.exsample, half) for m, s in by_m.items()}
    assert to_half[16] is not None and to_half[1] is not None
    assert to_half[16] <= to_half[1]
    assert to_half[128] is not None
    assert to_half[128] <= to_half[1]
    # the optimal ceiling is non-decreasing in chunk count
    ceilings = [float(s.optimal_curve[-1]) for s in result.series]
    for a, b in zip(ceilings, ceilings[1:]):
        assert b >= a - 1.0
    # exploration tax: 1024 chunks shows a larger gap to its own optimal
    # curve than 16 chunks does
    by_m = {s.num_chunks: s for s in result.series}
    gap_16 = float(by_m[16].optimal_curve[-1]) - by_m[16].exsample.final_median()
    gap_1024 = float(by_m[1024].optimal_curve[-1]) - by_m[1024].exsample.final_median()
    assert gap_1024 >= gap_16 - 2.0
