"""Micro-bench: the sampler's per-decision overhead.

§III says ExSample's runtime "is roughly proportional to the number of
frames processed by the detector" — which is only true if the decision
machinery (M Gamma draws + argmax + without-replacement draw + state
update) is negligible next to a detector invocation (~50 ms at the
paper's 20 fps).  This bench measures the full non-detector iteration
cost at three chunk counts and asserts it stays below 5 ms even at
M = 8192 — two orders of magnitude under the detector's share.

A second bench guards the serving refactor: ``run()`` is now a thin
wrapper over the incremental ``steps()`` generator, and the generator
machinery must not tax the non-serving callers — the wrapped loop is
held to <5% overhead against the pre-refactor inline loop on a
Fig.-2-scale skewed workload.
"""

import time

import numpy as np
import pytest

from repro.core.chunking import even_count_chunks
from repro.core.sampler import ExSample
from repro.detection.detector import OracleDetector
from repro.tracking.discriminator import OracleDiscriminator
from repro.video.repository import single_clip_repository
from repro.video.synthetic import place_instances

DETECTOR_SECONDS = 1.0 / 20.0  # one detector call at the paper's 20 fps


def make_sampler(num_chunks: int, seed: int = 0) -> ExSample:
    # an empty repository isolates pure decision overhead: the oracle
    # detector returns instantly, so each step is belief + bookkeeping.
    repo = single_clip_repository(num_chunks * 1000, [])
    rng = np.random.default_rng(seed)
    chunks = even_count_chunks(repo.total_frames, num_chunks, rng)
    return ExSample(chunks, OracleDetector(repo), OracleDiscriminator(), rng=rng)


@pytest.mark.parametrize("num_chunks", [64, 1024, 8192])
def test_bench_step_overhead(benchmark, num_chunks):
    sampler = make_sampler(num_chunks)

    def run_steps():
        for _ in range(50):
            sampler.step()

    benchmark.pedantic(run_steps, rounds=3, iterations=1, warmup_rounds=1)
    per_step = benchmark.stats.stats.mean / 50
    # decision cost must vanish against one detector invocation.
    assert per_step < 0.1 * DETECTOR_SECONDS, (
        f"per-step overhead {per_step * 1e3:.2f} ms at M={num_chunks} is not "
        f"negligible vs a {DETECTOR_SECONDS * 1e3:.0f} ms detector call"
    )


# ---------------------------------------------------- steps() refactor cost

FIG2_INSTANCES = 1000  # the §III-D simulation scale Fig. 2 is drawn at
FIG2_FRAMES = 120_000
FIG2_SAMPLES = 1000
FIG2_CHUNKS = 32
ROUNDS = 21  # first round is warm-up and discarded


def make_fig2_sampler(seed: int = 0) -> ExSample:
    # the Fig. 2 workload: ~1000 heavily skewed lognormal-duration
    # instances, sampled adaptively; oracle substrate so the measured
    # cost is the loop itself, not detector simulation noise.
    rng = np.random.default_rng(seed)
    instances = place_instances(
        FIG2_INSTANCES, FIG2_FRAMES, rng, mean_duration=60.0,
        skew_fraction=0.25, with_boxes=False,
    )
    repo = single_clip_repository(FIG2_FRAMES, instances)
    loop_rng = np.random.default_rng(seed + 1)
    chunks = even_count_chunks(repo.total_frames, FIG2_CHUNKS, loop_rng)
    return ExSample(chunks, OracleDetector(repo), OracleDiscriminator(), rng=loop_rng)


def _legacy_run(sampler: ExSample, max_samples: int) -> None:
    """The pre-refactor run() loop, inlined: direct step() calls with the
    stopping clauses checked in the loop header, no generator."""
    while not sampler.exhausted:
        if sampler.frames_processed >= max_samples:
            break
        sampler.step()


def _wrapped_run(sampler: ExSample, max_samples: int) -> None:
    sampler.run(max_samples=max_samples)


def test_bench_steps_refactor_overhead(benchmark):
    """The iterator-based run() must stay within 5% of the inline loop."""
    import gc
    import statistics

    times: dict[str, list[float]] = {"legacy": [], "wrapped": []}
    # interleave the variants (same seed, same workload per round) and
    # compare the median time of each arm: individual rounds on a busy
    # machine spike by 10%+, but with 20 interleaved samples per arm both
    # medians sit on the same quiet baseline.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(ROUNDS):
            for name, runner in (("legacy", _legacy_run), ("wrapped", _wrapped_run)):
                sampler = make_fig2_sampler(seed=round_index)
                start = time.perf_counter()
                runner(sampler, FIG2_SAMPLES)
                elapsed = time.perf_counter() - start
                assert sampler.frames_processed == FIG2_SAMPLES
                if round_index > 0:  # round 0 is warm-up
                    times[name].append(elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()

    legacy = statistics.median(times["legacy"])
    wrapped = statistics.median(times["wrapped"])
    benchmark.pedantic(
        lambda: _wrapped_run(make_fig2_sampler(), FIG2_SAMPLES),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["overhead_ratio"] = wrapped / legacy
    assert wrapped < legacy * 1.05, (
        f"steps() refactor costs {(wrapped / legacy - 1) * 100:.1f}% over the "
        f"pre-refactor loop on the Fig. 2 workload "
        f"(median {wrapped * 1e3:.1f} ms vs {legacy * 1e3:.1f} ms "
        f"for {FIG2_SAMPLES} samples)"
    )
