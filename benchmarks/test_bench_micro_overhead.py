"""Micro-bench: the sampler's per-decision overhead.

§III says ExSample's runtime "is roughly proportional to the number of
frames processed by the detector" — which is only true if the decision
machinery (M Gamma draws + argmax + without-replacement draw + state
update) is negligible next to a detector invocation (~50 ms at the
paper's 20 fps).  This bench measures the full non-detector iteration
cost at three chunk counts and asserts it stays below 5 ms even at
M = 8192 — two orders of magnitude under the detector's share.
"""

import numpy as np
import pytest

from repro.core.chunking import even_count_chunks
from repro.core.sampler import ExSample
from repro.detection.detector import OracleDetector
from repro.tracking.discriminator import OracleDiscriminator
from repro.video.repository import single_clip_repository

DETECTOR_SECONDS = 1.0 / 20.0  # one detector call at the paper's 20 fps


def make_sampler(num_chunks: int, seed: int = 0) -> ExSample:
    # an empty repository isolates pure decision overhead: the oracle
    # detector returns instantly, so each step is belief + bookkeeping.
    repo = single_clip_repository(num_chunks * 1000, [])
    rng = np.random.default_rng(seed)
    chunks = even_count_chunks(repo.total_frames, num_chunks, rng)
    return ExSample(chunks, OracleDetector(repo), OracleDiscriminator(), rng=rng)


@pytest.mark.parametrize("num_chunks", [64, 1024, 8192])
def test_bench_step_overhead(benchmark, num_chunks):
    sampler = make_sampler(num_chunks)

    def run_steps():
        for _ in range(50):
            sampler.step()

    benchmark.pedantic(run_steps, rounds=3, iterations=1, warmup_rounds=1)
    per_step = benchmark.stats.stats.mean / 50
    # decision cost must vanish against one detector invocation.
    assert per_step < 0.1 * DETECTOR_SECONDS, (
        f"per-step overhead {per_step * 1e3:.2f} ms at M={num_chunks} is not "
        f"negligible vs a {DETECTOR_SECONDS * 1e3:.0f} ms detector call"
    )
