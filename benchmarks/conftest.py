"""Shared benchmark fixtures.

Every benchmark regenerates one paper table/figure (or an ablation) at a
reproducible reduced scale, checks the paper's qualitative claim about it,
and writes the full paper-shaped report to ``benchmarks/output/`` so the
rows can be inspected after a ``--benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_report(report_dir):
    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        # also echo to stdout so `pytest -s` shows the rows inline
        print(f"\n{text}\n[report saved to {path}]")

    return _save
