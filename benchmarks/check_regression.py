#!/usr/bin/env python
"""Benchmark-regression gate: compare a pytest-benchmark JSON to a baseline.

Usage (what CI runs)::

    python -m pytest benchmarks/ --benchmark-json current.json
    python benchmarks/check_regression.py current.json \
        --baseline benchmarks/baseline.json --max-regression 0.25

Raw benchmark means are machine-dependent (a slower runner inflates every
number), so the gate compares each key benchmark's **calibrated ratio**:
its mean divided by the summed means of the *non-key* benchmarks present
in both files.  Dividing by a fixed calibration set cancels overall
machine speed to first order while keeping every key's denominator
independent of every key's change — a 40% regression in one key moves
that key's ratio by ~40% and no other key's at all (with a
leave-one-out fallback when no non-key benchmarks exist).  A key
benchmark fails the gate when its ratio grows by more than
``--max-regression`` (default 25%) over the committed baseline *and* it
is not trivially fast (shares below ``--min-share`` of total time carry
too much noise to judge).

Refresh the baseline after an intentional performance change::

    python -m pytest benchmarks/ --benchmark-json benchmarks/baseline.json

(Commit the result.  ``benchmarks/baseline.json`` is trimmed to the stats
the gate reads, so regenerating it produces a reviewable diff.)

Stdlib only — importable/runnable without the package installed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

# the gate's default scope: the long-running benchmarks whose shares are
# stable enough to judge (the CPU-bound ones are each >= ~5% of suite
# time) — together they exercise the sampling loop, the evaluation
# machinery, the ablation harness, and the distributed serving path.
# test_bench_distributed is latency-simulated (sleep-dominated), so its
# absolute time is machine-independent while its calibration denominator
# is not; it is sized just above the --min-share floor and its baseline
# should be refreshed alongside the others (nightly workflow_dispatch)
# if the gate's runner class changes.  Pass --key to override.  Note the
# one blind spot of share-based gating: a perfectly *uniform* slowdown
# across every benchmark is indistinguishable from a slower machine, by
# design.  test_bench_telemetry_overhead wraps its whole interleaved
# disabled/enabled comparison in one pedantic round so its recorded mean
# (the full serving workload x 2 arms x 64 pairs) clears the
# --min-share floor; its own pass/fail (the 3% overhead gate) lives in
# the benchmark itself — the key here guards the *absolute* cost of the
# instrumented serving loop.
DEFAULT_KEYS = (
    "test_bench_fig3",
    "test_bench_fig4",
    "test_bench_fig5",
    "test_bench_table1",
    "test_bench_ablation_scoring",
    "test_bench_ablation_policy",
    "test_bench_distributed",
    "test_bench_telemetry_overhead",
    "test_bench_sampler_vectorized",
    # the closed-loop network load benchmark: 256 concurrent client
    # sessions against a subprocess `repro server`; its runtime share
    # guards the whole served path (admission queue, tick loop under
    # polling load, per-session first-result latency) against creep
    "test_bench_server_load",
    # the multi-tenant cache-pressure benchmark: shared vs private cache
    # planes under eviction pressure; its runtime share guards the
    # bounded-tier and plane-lookup hot paths against creep
    "test_bench_cache_pressure",
)


def load_means(path: pathlib.Path) -> dict[str, float]:
    """Map benchmark name -> mean seconds from a pytest-benchmark JSON."""
    data = json.loads(path.read_text(encoding="utf-8"))
    means: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        means[bench["name"]] = float(bench["stats"]["mean"])
    return means


def shares(means: dict[str, float], common: list[str]) -> dict[str, float]:
    """Each benchmark's fraction of the common total (noise floor test)."""
    total = sum(means[name] for name in common)
    if total <= 0.0:
        raise SystemExit("error: benchmark means sum to zero; nothing to compare")
    return {name: means[name] / total for name in common}


def calibrated_ratios(
    means: dict[str, float], common: list[str], keys: list[str]
) -> dict[str, float]:
    """Each key benchmark's mean over the summed non-key means.

    A fixed calibration denominator cancels machine speed while keeping
    every key's ratio independent of every key's change — one key
    regressing (or speeding up 10x) cannot trip the gate for the others.
    Falls back to leave-one-out when the key set covers everything.
    """
    key_set = set(keys)
    calibration = sum(means[name] for name in common if name not in key_set)
    out = {}
    for name in keys:
        rest = calibration if calibration > 0.0 else (
            sum(means[n] for n in common) - means[name]
        )
        if rest <= 0.0:
            raise SystemExit("error: need at least two non-trivial benchmarks")
        out[name] = means[name] / rest
    return out


def trim_for_baseline(path: pathlib.Path, out: pathlib.Path) -> None:
    """Write a minimal baseline JSON (names + means only) from a full run."""
    data = json.loads(path.read_text(encoding="utf-8"))
    trimmed = {
        "machine_info": {
            "python_version": data.get("machine_info", {}).get("python_version"),
        },
        "benchmarks": [
            {"name": b["name"], "stats": {"mean": b["stats"]["mean"]}}
            for b in data.get("benchmarks", [])
        ],
    }
    out.write_text(json.dumps(trimmed, indent=2) + "\n", encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=pathlib.Path,
                        help="pytest-benchmark JSON from the run under test")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path(__file__).parent / "baseline.json")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="maximum allowed growth of a key benchmark's "
                             "runtime ratio over the non-key calibration "
                             "set (0.25 = +25%%)")
    parser.add_argument("--min-share", type=float, default=0.01,
                        help="ignore benchmarks below this share of total time")
    parser.add_argument("--key", action="append", default=None,
                        help="benchmark name to gate on (repeatable); "
                             f"default: {', '.join(DEFAULT_KEYS)}")
    parser.add_argument("--trim-baseline", type=pathlib.Path, default=None,
                        help="write a trimmed baseline JSON from CURRENT and exit")
    args = parser.parse_args(argv)

    if args.trim_baseline is not None:
        trim_for_baseline(args.current, args.trim_baseline)
        print(f"baseline written to {args.trim_baseline}")
        return 0

    current = load_means(args.current)
    baseline = load_means(args.baseline)
    common = sorted(set(current) & set(baseline))
    if not common:
        print("error: no benchmarks in common with the baseline", file=sys.stderr)
        return 1

    # a benchmark present on only one side is a rename/removal/addition,
    # not a regression: warn (so the drift is visible and the baseline
    # gets refreshed) but keep gating on what *is* comparable
    baseline_only = sorted(set(baseline) - set(current))
    current_only = sorted(set(current) - set(baseline))
    if baseline_only:
        print(
            f"warning: {len(baseline_only)} baseline benchmark(s) missing from "
            f"the current run (renamed or removed?): {', '.join(baseline_only)}; "
            "refresh benchmarks/baseline.json to drop them",
            file=sys.stderr,
        )
    if current_only:
        print(
            f"warning: {len(current_only)} benchmark(s) not in the baseline "
            f"(new?): {', '.join(current_only)}; refresh benchmarks/baseline.json "
            "to gate them",
            file=sys.stderr,
        )

    current_shares = shares(current, common)
    baseline_shares = shares(baseline, common)
    common_set = set(common)
    keys = args.key if args.key else [k for k in DEFAULT_KEYS if k in common_set]
    skipped_keys = [k for k in DEFAULT_KEYS if k not in common_set] if not args.key else []
    if skipped_keys:
        print(
            f"warning: default key benchmark(s) not in both runs, skipped: "
            f"{', '.join(skipped_keys)}",
            file=sys.stderr,
        )
    missing = [k for k in (args.key or []) if k not in common_set]
    if missing:
        # explicitly requested keys are a hard contract, unlike defaults
        print(f"error: key benchmarks not in both runs: {missing}", file=sys.stderr)
        return 1
    if not keys:
        print(
            "error: none of the key benchmarks are present in both runs; "
            "refresh benchmarks/baseline.json or pass --key",
            file=sys.stderr,
        )
        return 1
    current_ratios = calibrated_ratios(current, common, keys)
    baseline_ratios = calibrated_ratios(baseline, common, keys)

    failures = []
    width = max(len(k) for k in keys)
    print(f"{'benchmark':<{width}}  baseline  current   change  verdict")
    for name in keys:
        base, cur = baseline_ratios[name], current_ratios[name]
        change = cur / base - 1.0
        regressed = (
            change > args.max_regression
            and current_shares[name] >= args.min_share
            and baseline_shares[name] >= args.min_share
        )
        verdict = "REGRESSED" if regressed else "ok"
        if regressed:
            failures.append(name)
        print(
            f"{name:<{width}}  {base:8.4f}  {cur:8.4f}  {change:+7.1%}  {verdict}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%} vs {args.baseline}: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nok: no key benchmark regressed more than {args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
