"""Bench: shard-parallel query serving across worker processes.

Workload: the multi-tenant serving setting the distributed subsystem
exists for — one :class:`~repro.serving.service.QueryService` over a
multi-clip latency-simulated corpus, four concurrent sessions (one per
category) whose per-tick §III-F batches the service coalesces into one
batched detector call.  Two execution backends run the *same* sessions:

* **local** — the coalesced batch served in-process, frame-at-a-time,
  each call paying the full simulated per-call latency;
* **sharded** — the batch routed by a
  :class:`~repro.distributed.coordinator.ShardCoordinator` across 4
  per-shard worker processes, each paying its own frames' latency
  concurrently with the other shards.

A single query's Thompson sampler deliberately *concentrates* its batch
on hot chunks (that is the algorithm working), which pins that batch to
few shards; it is the coalesced union across tenants that spreads over
the shard plan — so serving-level throughput is the honest measure of
what sharding buys, and the one measured here.

Measured claims:

* the sharded service achieves >= 2x detector-call throughput over the
  single-process reference at 4 shards, on the same budget;
* **parity** — the backend is invisible to answers: the coordinator
  returns exactly the local per-frame detections, and every session
  lands on the identical sampled-frame sequence, results, and result
  frames as its single-process twin.
"""

import time

import numpy as np

from repro.detection.detector import SimulatedDetector
from repro.distributed.coordinator import ShardCoordinator
from repro.distributed.worker import DetectorSpec
from repro.experiments.reporting import format_table, section
from repro.serving.service import QueryService
from repro.video.instances import InstanceSet
from repro.video.repository import VideoClip, VideoRepository
from repro.video.synthetic import place_instances

NUM_CLIPS = 16
CLIP_FRAMES = 2_500
TOTAL_FRAMES = NUM_CLIPS * CLIP_FRAMES
CATEGORIES = ("car", "bus", "person", "bicycle")
INSTANCES_PER_CATEGORY = 30
LATENCY = 0.002  # 2 ms per detector call — what the shards overlap
SHARDS = 4
BATCH = 8  # per-session §III-F batch; 4 sessions coalesce to ~32/tick
FRAMES_PER_TICK = 32
# sized so the benchmark clears the regression gate's --min-share noise
# floor (~1% of suite time): a key below the floor is listed but never
# enforced, and this key exists to be enforced
BUDGET_PER_SESSION = 200  # detector-charged frames per session
SEED = 3


def _repo():
    rng = np.random.default_rng(SEED)
    boundaries = list(range(0, TOTAL_FRAMES + 1, CLIP_FRAMES))
    instances = []
    for k, category in enumerate(CATEGORIES):
        instances.extend(
            place_instances(
                INSTANCES_PER_CATEGORY, TOTAL_FRAMES, rng, mean_duration=60,
                skew_fraction=None, category=category, with_boxes=False,
                start_id=1000 * k, boundaries=boundaries,
            )
        )
    clips = [
        VideoClip(i, f"clip-{i}", i * CLIP_FRAMES, CLIP_FRAMES)
        for i in range(NUM_CLIPS)
    ]
    return VideoRepository(clips, InstanceSet(instances), name="bench-dist")


def _service(execution, shards):
    repo = _repo()
    common = dict(
        frames_per_tick=FRAMES_PER_TICK,
        batch_size=BATCH,
        detector_latency=LATENCY,
        seed=SEED,
    )
    if execution == "sharded":
        return QueryService(
            repo,
            execution="sharded",
            shards=shards,
            detector_spec=DetectorSpec(kind="simulated", seed=SEED),
            **common,
        )
    return QueryService(
        repo,
        detector_factory=lambda r: SimulatedDetector(r, seed=SEED),
        **common,
    )


def _run_service(execution, shards=1):
    service = _service(execution, shards)
    try:
        for category in CATEGORIES:
            service.submit(
                "bench-dist", category,
                max_samples=BUDGET_PER_SESSION, warm_start=False,
            )
        if execution == "sharded":
            service.shard_backend("bench-dist").warm_up()  # spawn != throughput
        start = time.perf_counter()
        service.run_until_idle()
        elapsed = time.perf_counter() - start
        outcome = {
            sid: {
                "frames": [int(f) for f in s.engine.history.frame_indices],
                "results": [int(r) for r in s.engine.history.results],
                "result_frames": s.result_frames(),
            }
            for sid, s in service.sessions.items()
        }
        return service.detector_calls, elapsed, outcome
    finally:
        service.close()


def _run():
    calls_seq, t_seq, outcome_seq = _run_service("local")
    calls_shard, t_shard, outcome_shard = _run_service("sharded", SHARDS)
    return calls_seq, t_seq, outcome_seq, calls_shard, t_shard, outcome_shard


def test_bench_distributed(benchmark, save_report):
    calls_seq, t_seq, outcome_seq, calls_shard, t_shard, outcome_shard = (
        benchmark.pedantic(_run, rounds=1, iterations=1)
    )
    seq_tput = calls_seq / t_seq
    shard_tput = calls_shard / t_shard
    speedup = shard_tput / seq_tput

    # ------- parity: the distributed backend is invisible to the answer
    # (a) every session's decision stream and results match its local twin
    assert calls_seq == calls_shard
    assert outcome_shard == outcome_seq
    # (b) the coordinator returns exactly the local per-frame detections
    repo = _repo()
    raw = SimulatedDetector(repo, seed=SEED)
    probe = outcome_seq["s1"]["frames"][:48]
    with ShardCoordinator(
        repo, SHARDS, detector_spec=DetectorSpec(kind="simulated", seed=SEED)
    ) as checker:
        assert checker.detect_many(probe) == [raw.detect(f) for f in probe]

    rows = [
        ["local (1 process)", calls_seq,
         f"{t_seq:.3f}", f"{seq_tput:.0f}",
         sum(len(o["result_frames"]) for o in outcome_seq.values())],
        [f"sharded ({SHARDS} workers)", calls_shard,
         f"{t_shard:.3f}", f"{shard_tput:.0f}",
         sum(len(o["result_frames"]) for o in outcome_shard.values())],
    ]
    report = "\n".join(
        [
            section(
                "Distributed serving — 4 coalesced sessions, shard workers vs "
                f"one process ({LATENCY * 1e3:.0f} ms simulated per-call latency)"
            ),
            format_table(
                ["mode", "detector calls", "seconds", "calls/s", "result frames"],
                rows,
            ),
            f"throughput: {speedup:.2f}x single-process "
            f"(parity: identical decision streams and results per seed)",
        ]
    )
    save_report("distributed", report)

    # every session spent its full budget; real detector calls may dip
    # below the sum when sessions collide on a frame (the shared cache
    # serving one session's detection to another — sharing working)
    assert all(
        len(o["frames"]) == BUDGET_PER_SESSION for o in outcome_seq.values()
    )
    assert calls_seq <= len(CATEGORIES) * BUDGET_PER_SESSION
    # the acceptance claim: >= 2x detector throughput at 4 shards
    assert speedup >= 2.0
