"""Bench: Fig. 6 — skew histograms and S metric for representative queries.

Paper annotations being matched: archie/car and amsterdam/boat have S near
1 (uniform spread), night-street/person is moderate, dashcam/bicycle and
bdd1k/motor are strongly skewed; savings track S.
"""

from repro.experiments.evaluation import EvalConfig
from repro.experiments.fig6 import format_fig6, run_fig6


def test_bench_fig6(benchmark, save_report):
    config = EvalConfig(scale=0.1, runs=3)
    result = benchmark.pedantic(run_fig6, args=(config,), rounds=1, iterations=1)
    save_report("fig6", format_fig6(result))

    s = {(p.skew.dataset, p.skew.category): p.skew.skew for p in result.panels}
    assert s[("archie", "car")] < 2.5  # paper: 1.1
    assert s[("dashcam", "bicycle")] > 5.0  # paper: 14
    assert s[("bdd1k", "motor")] > 5.0  # paper: 19
    assert s[("dashcam", "bicycle")] > s[("night_street", "person")] > s[("archie", "car")]
