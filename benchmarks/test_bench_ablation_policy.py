"""Ablation bench: chunk-selection policy (§III-B/III-C).

Paper claims checked here: Thompson sampling and Bayes-UCB perform the
same; the greedy point estimate is the cautionary strawman (it can lock
onto a lucky chunk); uniform chunk choice behaves like random sampling.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_policy_ablation,
)


def test_bench_ablation_policy(benchmark, save_report):
    config = AblationConfig(runs=5)
    result = benchmark.pedantic(
        run_policy_ablation, args=(config,), rounds=1, iterations=1
    )
    save_report("ablation_policy", format_ablation(result))

    by = result.by_label()
    half = config.num_instances // 2

    # Thompson and Bayes-UCB reach half recall equally fast (within 35%,
    # which is well inside run-to-run noise at this scale).
    ts = by["thompson"].samples_to(half)
    ucb = by["bayes_ucb"].samples_to(half)
    assert ts is not None and ucb is not None
    assert max(ts, ucb) <= 1.35 * min(ts, ucb)

    # Both adaptive policies beat uniform chunk choice on the skewed data.
    uni = by["uniform"].samples_to(half)
    assert uni is None or ts <= uni
    # Greedy is never *better* than Thompson here (it may be much worse).
    greedy = by["greedy"].samples_to(half)
    assert greedy is None or ts <= 1.35 * greedy
