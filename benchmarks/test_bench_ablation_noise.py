"""Ablation bench: robustness of the savings to detector noise.

The paper's only assumption about the detector is that it is a black
box; nothing in §III conditions on its accuracy.  Checked claim: the
advantage over random persists when the detector misses a quarter and
half of its detections — both methods slow down, the ordering does not
flip.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_noise_ablation,
)

MISS_RATES = (0.0, 0.25, 0.5)


def test_bench_ablation_noise(benchmark, save_report):
    config = AblationConfig(runs=5)
    result = benchmark.pedantic(
        run_noise_ablation, args=(config, MISS_RATES), rounds=1, iterations=1
    )
    save_report("ablation_noise", format_ablation(result))

    by = result.by_label()
    half = config.num_instances // 2

    for miss in MISS_RATES:
        ex = by[f"exsample@miss={miss:g}"].samples_to(half)
        rnd = by[f"random@miss={miss:g}"].samples_to(half)
        assert ex is not None
        # the ordering survives the noise at every level.
        assert rnd is None or ex <= rnd, (miss, ex, rnd)

    # and noise genuinely hurts: the clean run is fastest for ExSample.
    clean = by["exsample@miss=0"].samples_to(half)
    noisy = by["exsample@miss=0.5"].samples_to(half)
    assert clean is not None and noisy is not None
    assert clean <= noisy
