"""Bench: Fig. 2 / §III-D — estimator and belief validation.

Regenerates the (n, N1, R(n+1)) trajectory study: relative bias against
the Eq. III.2 bound, empirical variance against the Eq. III.3 bound, and
the belief's interval coverage, including the correlated-instances
robustness check.
"""

from repro.experiments.fig2 import Fig2Config, format_fig2, run_fig2


def test_bench_fig2(benchmark, save_report):
    config = Fig2Config(runs=1000)
    result = benchmark.pedantic(run_fig2, args=(config,), rounds=1, iterations=1)
    save_report("fig2", format_fig2(result))

    for cp in result.checkpoints:
        # Eq. III.2: positive bias, below the max-p bound
        assert cp.relative_bias <= cp.bias_bound_maxp + 0.02
        # Eq. III.3: empirical variance below the bound (small slack)
        assert cp.empirical_variance <= cp.variance_bound * 1.2
    # dependence inflates variance beyond the belief's accounting
    assert result.correlated_coverage_95 <= result.independent_coverage_95
