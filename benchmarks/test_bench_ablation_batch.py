"""Ablation bench: batched Thompson sampling (§III-F).

B draws per iteration delay feedback: the statistics that guide draw k of
a batch do not yet include the outcomes of draws 1..k-1.  The claim is
that this costs little — even large batches stay well ahead of random —
which is what makes the GPU-batching optimization free in practice.
"""

from repro.detection.costmodel import ThroughputModel, format_duration
from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_batch_ablation,
)
from repro.experiments.reporting import format_table

BATCH_SIZES = (1, 8, 64, 256)


def _time_table(result, config) -> str:
    """Modelled wall-clock to half recall: extra samples vs faster frames."""
    model = ThroughputModel()
    half = config.num_instances // 2
    rows = []
    for b in BATCH_SIZES:
        series = result.by_label()[f"B={b}"]
        samples = series.samples_to(half)
        if samples is None:
            continue
        rows.append(
            [
                b,
                samples,
                f"{model.batched_detect_fps(b):.0f}",
                format_duration(model.batched_detection_seconds(samples, b)),
            ]
        )
    return format_table(
        ["B", f"samples to {half}", "eff. fps", "modelled time"],
        rows,
        title="time-optimal batch size (throughput gain vs decision lag):",
    )


def test_bench_ablation_batch(benchmark, save_report):
    config = AblationConfig(runs=5)
    result = benchmark.pedantic(
        run_batch_ablation,
        args=(config, BATCH_SIZES),
        rounds=1,
        iterations=1,
    )
    save_report(
        "ablation_batch",
        format_ablation(result) + "\n\n" + _time_table(result, config),
    )

    by = result.by_label()
    half = config.num_instances // 2

    serial = by["B=1"].samples_to(half)
    assert serial is not None
    for b in BATCH_SIZES[1:]:
        batched = by[f"B={b}"].samples_to(half)
        # batching costs at most ~50% extra samples to half recall even
        # at B=256 (a 256-frame decision lag on a 5000-sample budget).
        assert batched is not None
        assert batched <= 1.5 * serial + b

    # and every batch size still beats random.
    rnd = by["random"].samples_to(half)
    largest = by[f"B={BATCH_SIZES[-1]}"].samples_to(half)
    assert rnd is None or largest <= rnd
