"""Bench: Fig. 3 — the skew x duration simulation grid (§IV-B).

Paper shape being reproduced: savings grow along the skew axis (1x with
no skew up to 84x at the paper's scale for skew 1/256), and ExSample never
loses materially to random.  Absolute factors shrink at reduced scale; the
ordering must hold.
"""

import numpy as np

from repro.experiments.fig3 import Fig3Config, format_fig3, run_fig3


def test_bench_fig3(benchmark, save_report):
    config = Fig3Config(
        total_frames=300_000,
        num_instances=400,
        runs=5,
        max_samples=5000,
    )
    result = benchmark.pedantic(run_fig3, args=(config,), rounds=1, iterations=1)
    save_report("fig3", format_fig3(result))

    mid_target = config.targets()[1]
    savings_by_skew = {}
    for skew in config.skews:
        cell_savings = [
            result.cell(d, skew).savings[mid_target]
            for d in config.mean_durations
        ]
        finite = [s for s in cell_savings if s is not None]
        savings_by_skew[skew] = float(np.median(finite)) if finite else None

    # no-skew column: parity with random (within noise)
    assert 0.6 < savings_by_skew[None] < 1.6
    # savings increase along the skew axis
    assert savings_by_skew[1 / 32] > savings_by_skew[None]
    assert savings_by_skew[1 / 256] > 1.5
