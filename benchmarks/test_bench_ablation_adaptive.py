"""Ablation bench: automated chunking (§VII future work).

AdaptiveExSample starts from 8 coarse chunks and splits chunks where
samples concentrate.  Checked claims: it beats random, and it lands
within a modest factor of the best *fixed* partition — without being told
the right chunk count the way Fig. 4's sweep requires.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_adaptive_ablation,
)


def test_bench_ablation_adaptive(benchmark, save_report):
    config = AblationConfig(runs=5)
    result = benchmark.pedantic(
        run_adaptive_ablation, args=(config,), rounds=1, iterations=1
    )
    save_report("ablation_adaptive", format_ablation(result))

    by = result.by_label()
    half = config.num_instances // 2

    adaptive = by["adaptive"].samples_to(half)
    assert adaptive is not None

    # beats random at half recall
    rnd = by["random"].samples_to(half)
    assert rnd is None or adaptive <= rnd

    # within a small factor of the best fixed partition in the sweep —
    # without having been told which M that is.
    fixed = [
        s.samples_to(half)
        for label, s in by.items()
        if label.startswith("fixed")
    ]
    best_fixed = min(t for t in fixed if t is not None)
    assert adaptive <= 2.5 * best_fixed
    # and it does not lose to the *bracketing* fixed choices a user
    # without Fig. 4's sweep might have picked.
    worst_fixed = max(t for t in fixed if t is not None)
    assert adaptive <= 1.35 * worst_fixed
