"""Bench: Table I — sampling immediately vs proxy scan overhead (§V-B).

Regenerates all 43 query rows.  The paper's headline claim is structural
and must survive the synthetic substitution: ExSample reaches 90% of
instances before a proxy pipeline would even finish its scoring scan, on
every query; 10% and 50% are reached orders of magnitude sooner.
"""

import numpy as np

from repro.detection.costmodel import parse_duration
from repro.experiments.evaluation import EvalConfig
from repro.experiments.table1 import format_table1, run_table1


def test_bench_table1(benchmark, save_report):
    config = EvalConfig(scale=0.05, runs=3)
    result = benchmark.pedantic(run_table1, args=(config,), rounds=1, iterations=1)
    save_report("table1", format_table1(result))

    assert len(result.rows) == 43
    # headline: t90 < scan for every query
    assert result.all_beat_scan()

    # t10 is far below the scan on the vast majority of queries
    early_ratios = [
        r.t10_seconds / r.scan_seconds
        for r in result.rows
        if r.t10_seconds is not None
    ]
    assert np.median(early_ratios) < 0.1

    # measured t90 tracks the paper's published magnitudes (geometric
    # mean ratio within ~2x — substrate differences, not ordering flips)
    ratios = []
    for row in result.rows:
        if row.t90_seconds is not None and row.paper_t90:
            ratios.append(row.t90_seconds / parse_duration(row.paper_t90))
    geo = float(np.exp(np.mean(np.log(ratios))))
    assert 0.5 < geo < 2.0
