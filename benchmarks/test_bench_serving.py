"""Bench: the serving subsystem's cross-lifetime detector sharing.

The multiquery bench measures sharing *within* one loop; this one measures
sharing *across query lifetimes*: three queries arrive staggered (each
submitted while its predecessor is mid-flight), share one detection cache,
and warm-start from every frame already detected.  Measured claim: the
service satisfies all limits with strictly fewer real detector calls than
running the same queries back-to-back with no shared cache — while every
query still meets its own limit.
"""


from repro.detection.cache import DetectionCache
from repro.experiments.reporting import format_table, section
from repro.serving import QueryService, ThompsonSumScheduler
from repro.video.datasets import build_dataset, scaled_chunk_frames

SCALE = 0.04
CATEGORIES = ("bicycle", "car", "person")
LIMIT = 15
STAGGER_TICKS = 4  # ticks between arrivals
FRAMES_PER_TICK = 32
SEEDS = {"bicycle": 7, "car": 8, "person": 9}


def _service(repo):
    return QueryService(
        repo,
        cache=DetectionCache(),
        scheduler=ThompsonSumScheduler(),
        frames_per_tick=FRAMES_PER_TICK,
        chunk_frames=scaled_chunk_frames("amsterdam", SCALE),
        seed=0,
    )


def _run():
    repo = build_dataset("amsterdam", categories=list(CATEGORIES), scale=SCALE, seed=0)

    # back-to-back: fresh service and fresh cache per query
    serial_calls = {}
    for category in CATEGORIES:
        solo = _service(repo)
        sid = solo.submit(repo.name, category, limit=LIMIT, seed=SEEDS[category])
        solo.run_until_idle()
        assert solo.status(sid).satisfied
        serial_calls[category] = solo.detector_calls

    # staggered: same queries, same seeds, one shared cache
    shared = _service(repo)
    sids = {}
    for category in CATEGORIES:
        sids[category] = shared.submit(
            repo.name, category, limit=LIMIT, seed=SEEDS[category]
        )
        for _ in range(STAGGER_TICKS):
            shared.tick()
    shared.run_until_idle()
    return shared, sids, serial_calls


def test_bench_serving(benchmark, save_report):
    shared, sids, serial_calls = benchmark.pedantic(_run, rounds=1, iterations=1)

    serial_total = sum(serial_calls.values())
    shared_total = shared.detector_calls
    rows = []
    for category in CATEGORIES:
        status = shared.status(sids[category])
        rows.append(
            [
                category,
                serial_calls[category],
                status.frames_processed,
                status.warm_frames_replayed,
                status.results_found,
            ]
        )
    rows.append(["total (serial)", serial_total, "-", "-", "-"])
    rows.append(["total (shared)", "-", shared_total, "-", "-"])
    report = "\n".join(
        [
            section(
                "Serving — detector calls: staggered shared cache vs back-to-back"
            ),
            format_table(
                ["query", "serial calls", "shared frames", "warm frames", "results"],
                rows,
            ),
            f"detector calls saved: {serial_total - shared_total} "
            f"({serial_total / shared_total:.2f}x fewer)",
            f"cache: {len(shared.cache)} frames, "
            f"{shared.cache.stats.hits} hits / {shared.cache.stats.misses} misses",
        ]
    )
    save_report("serving", report)

    for category in CATEGORIES:
        assert shared.status(sids[category]).satisfied
    # sharing beats back-to-back outright...
    assert shared_total < serial_total
    # ...by a sane margin for 3 overlapping queries on one corpus (>1.2x)
    assert serial_total / shared_total > 1.2
