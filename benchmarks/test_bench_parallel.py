"""Bench: the batched + parallel detection execution layer.

Workload: the Fig. 2 setting — a heavily skewed synthetic corpus whose
instances concentrate in a small fraction of the video — searched by the
ExSample loop, with detector cost simulated as a fixed per-call latency
(the dispatch/transfer overhead real GPU detectors amortize away by
batching and pipelining).  Two execution modes run the *same* sampling
policy:

* **sequential** — frame-at-a-time ``detect`` calls, each paying the
  full per-call latency (``batch_size=1``, one worker);
* **batched + parallel** — the policy emits §III-F batches which a
  :class:`~repro.detection.execution.ParallelDetector` fans out over a
  worker pool, overlapping the per-call latency.

Measured claims:

* batched+parallel achieves >= 2x detector-call throughput over the
  sequential reference on the same budget;
* **parity** — execution mode is invisible to the answer: with the same
  seed, the batch path returns identical detections for every frame and
  the query lands on identical results/recall (the score-equivalence
  contract of the execution layer).
"""

import time

import numpy as np

from repro.core.chunking import even_count_chunks
from repro.core.sampler import ExSample
from repro.detection.detector import SimulatedDetector
from repro.detection.execution import ParallelDetector
from repro.experiments.reporting import format_table, section
from repro.tracking.discriminator import OracleDiscriminator
from repro.video.repository import single_clip_repository
from repro.video.synthetic import place_instances

TOTAL_FRAMES = 40_000
INSTANCES = 120
NUM_CHUNKS = 16
LATENCY = 0.002  # 2 ms per detector call, the overhead batching hides
WORKERS = 8
BATCH = 8
BUDGET = 320  # detector-charged frames per run
SEED = 3


def _repo():
    rng = np.random.default_rng(SEED)
    instances = place_instances(
        INSTANCES, TOTAL_FRAMES, rng, mean_duration=60,
        skew_fraction=0.15, category="car", with_boxes=False,
    )
    return single_clip_repository(TOTAL_FRAMES, instances)


def _sampler(repo, detector, batch_size):
    rng = np.random.default_rng(SEED)
    chunks = even_count_chunks(repo.total_frames, NUM_CHUNKS, rng)
    return ExSample(
        chunks, detector, OracleDiscriminator(), rng=rng, batch_size=batch_size
    )


def _timed_run(repo, workers, batch_size, latency=LATENCY):
    # context-managed so the worker pool is shut down even if the run
    # raises — repeated benchmark invocations must not accumulate threads
    with ParallelDetector(
        SimulatedDetector(repo, seed=SEED), workers=workers, latency=latency
    ) as detector:
        sampler = _sampler(repo, detector, batch_size)
        start = time.perf_counter()
        sampler.run(max_samples=BUDGET)
        elapsed = time.perf_counter() - start
    return sampler, elapsed


def _run():
    repo = _repo()
    sequential, t_seq = _timed_run(repo, workers=1, batch_size=1)
    parallel, t_par = _timed_run(repo, workers=WORKERS, batch_size=BATCH)
    return repo, sequential, parallel, t_seq, t_par


def test_bench_parallel(benchmark, save_report):
    repo, sequential, parallel, t_seq, t_par = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    seq_tput = sequential.frames_processed / t_seq
    par_tput = parallel.frames_processed / t_par
    speedup = par_tput / seq_tput

    # ------- parity: same seed, same batch structure, execution-mode blind
    # (a) the parallel fan-out returns exactly the per-frame detections
    frames = [int(f) for f in parallel.history.frame_indices[:64]]
    raw = SimulatedDetector(repo, seed=SEED)
    fanned = ParallelDetector(SimulatedDetector(repo, seed=SEED), workers=WORKERS)
    assert fanned.detect_many(frames) == [raw.detect(f) for f in frames]
    fanned.close()
    # (b) the same batched plan executed sequentially lands on the same answer
    replay, _ = _timed_run(repo, workers=1, batch_size=BATCH, latency=0.0)
    np.testing.assert_array_equal(
        replay.history.frame_indices, parallel.history.frame_indices
    )
    np.testing.assert_array_equal(replay.history.results, parallel.history.results)
    assert replay.results_found == parallel.results_found
    assert (
        replay.discriminator.distinct_true_instances()
        == parallel.discriminator.distinct_true_instances()
    )

    rows = [
        ["sequential (b=1, w=1)", sequential.frames_processed,
         f"{t_seq:.3f}", f"{seq_tput:.0f}", sequential.results_found],
        [f"batched+parallel (b={BATCH}, w={WORKERS})", parallel.frames_processed,
         f"{t_par:.3f}", f"{par_tput:.0f}", parallel.results_found],
    ]
    report = "\n".join(
        [
            section(
                "Execution layer — batched+parallel vs sequential "
                f"({LATENCY * 1e3:.0f} ms simulated per-call latency)"
            ),
            format_table(
                ["mode", "frames", "seconds", "frames/s", "results"], rows
            ),
            f"throughput: {speedup:.2f}x sequential "
            f"(parity: identical detections and results per seed)",
        ]
    )
    save_report("parallel", report)

    assert sequential.frames_processed == parallel.frames_processed == BUDGET
    # the acceptance claim: >= 2x detector-call throughput
    assert speedup >= 2.0
