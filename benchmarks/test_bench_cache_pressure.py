"""Bench: multi-tenant cache pressure — shared vs private cache planes.

Workload: two tenant :class:`~repro.serving.service.QueryService`
instances (sharded, 2 workers each) subscribed to the *same* camera
corpus with the same session seeds — the overlapping-tenant setting the
shared :class:`~repro.distributed.plane.CachePlane` exists for.  Every
tenant's detection caches (the service facade tier and each worker's
local tier) are bounded to **at most 25% of the measured working set**,
so eviction pressure is real: an unbounded cache would make the private
arm look better than any deployment of it ever would.

Two arms run the identical workload:

* **shared** — both tenants borrow one ``CachePlane``: a frame the first
  tenant paid a detector call for is a plane hit for the second;
* **private** — each tenant gets its own plane: overlap across tenants
  is invisible, only within-tenant reuse saves anything.

``detector-calls-saved`` is the difference between the frames the
coordinators were asked to serve and the real detector invocations the
workers performed — the work the cache plane absorbed.

Measured claims:

* the shared plane saves >= 2x the detector calls of the private planes
  at a memory budget <= 25% of the working set;
* the shared plane's hit rate beats every private plane's;
* **parity** — sharing is invisible to answers: both arms produce
  byte-identical per-session decision streams and results.
"""

import time

import numpy as np

from repro.distributed.plane import CachePlane
from repro.distributed.worker import DetectorSpec
from repro.experiments.reporting import format_table, section
from repro.serving.service import QueryService
from repro.video.instances import InstanceSet
from repro.video.repository import VideoClip, VideoRepository
from repro.video.synthetic import place_instances

NUM_CLIPS = 8
CLIP_FRAMES = 1_000
TOTAL_FRAMES = NUM_CLIPS * CLIP_FRAMES
CATEGORIES = ("car", "bus")
INSTANCES_PER_CATEGORY = 25
LATENCY = 0.002  # 2 ms per real detector call — what sharing avoids
SHARDS = 2
FRAMES_PER_TICK = 32
BUDGET_PER_SESSION = 150  # detector-charged frames per session
# each tenant's memory tiers (service facade + per-worker caches) hold at
# most this many cached frames; asserted below to be <= 25% of the
# working set actually touched, so the bench measures pressure, not slack
TENANT_CACHE_BUDGET = 64
SEED = 7


def _repo():
    rng = np.random.default_rng(SEED)
    boundaries = list(range(0, TOTAL_FRAMES + 1, CLIP_FRAMES))
    instances = []
    for k, category in enumerate(CATEGORIES):
        instances.extend(
            place_instances(
                INSTANCES_PER_CATEGORY, TOTAL_FRAMES, rng, mean_duration=60,
                skew_fraction=None, category=category, with_boxes=False,
                start_id=1000 * k, boundaries=boundaries,
            )
        )
    clips = [
        VideoClip(i, f"clip-{i}", i * CLIP_FRAMES, CLIP_FRAMES)
        for i in range(NUM_CLIPS)
    ]
    return VideoRepository(clips, InstanceSet(instances), name="bench-cache")


def _run_tenant(plane):
    """One tenant's full run; returns its decision outcome and the
    requested/real detector-call split the plane sits between."""
    service = QueryService(
        _repo(),
        frames_per_tick=FRAMES_PER_TICK,
        detector_latency=LATENCY,
        execution="sharded",
        shards=SHARDS,
        detector_spec=DetectorSpec(kind="simulated", seed=SEED),
        seed=SEED,
        cache_budget=TENANT_CACHE_BUDGET,
        cache_plane=plane,
    )
    try:
        for category in CATEGORIES:
            service.submit(
                "bench-cache", category,
                max_samples=BUDGET_PER_SESSION, warm_start=False,
            )
        service.run_until_idle()
        coordinator = service.shard_backend("bench-cache")
        requested = coordinator.stats.frames_processed
        real = sum(
            s["detector_calls"] for s in coordinator.worker_stats().values()
        )
        outcome = {
            sid: {
                "frames": [int(f) for f in s.engine.history.frame_indices],
                "results": [int(r) for r in s.engine.history.results],
                "result_frames": s.result_frames(),
            }
            for sid, s in service.sessions.items()
        }
        return outcome, requested, real
    finally:
        service.close()


def _run_arm(shared):
    """Two tenants back to back; returns per-arm totals and hit rates."""
    if shared:
        planes = [CachePlane()] * 2  # one plane, borrowed by both
    else:
        planes = [CachePlane(), CachePlane()]
    outcomes, requested, real = [], 0, 0
    start = time.perf_counter()
    for plane in planes:
        outcome, tenant_requested, tenant_real = _run_tenant(plane)
        outcomes.append(outcome)
        requested += tenant_requested
        real += tenant_real
    elapsed = time.perf_counter() - start
    hit_rates = sorted({id(p): p.hit_rate for p in planes}.values())
    for plane in {id(p): p for p in planes}.values():
        plane.close()
    return {
        "outcomes": outcomes,
        "requested": requested,
        "real": real,
        "saved": requested - real,
        "hit_rates": hit_rates,
        "elapsed": elapsed,
    }


def _run():
    return _run_arm(shared=True), _run_arm(shared=False)


def test_bench_cache_pressure(benchmark, save_report):
    shared, private = benchmark.pedantic(_run, rounds=1, iterations=1)

    # the budget must sit far below the working set, or there is no
    # pressure and the bench measures nothing
    working_set = len(
        {
            frame
            for outcome in shared["outcomes"][0].values()
            for frame in outcome["frames"]
        }
    )
    assert TENANT_CACHE_BUDGET <= 0.25 * working_set, (
        f"budget {TENANT_CACHE_BUDGET} is not under pressure against a "
        f"working set of {working_set} frames"
    )

    # parity: sharing the plane changes costs, never answers
    assert shared["outcomes"] == private["outcomes"]
    # both arms asked the coordinators for the same work
    assert shared["requested"] == private["requested"]

    rows = [
        ["shared plane", shared["requested"], shared["real"],
         shared["saved"], f"{max(shared['hit_rates']):.2f}",
         f"{shared['elapsed']:.3f}"],
        ["private planes", private["requested"], private["real"],
         private["saved"], f"{max(private['hit_rates']):.2f}",
         f"{private['elapsed']:.3f}"],
    ]
    ratio = shared["saved"] / max(private["saved"], 1)
    report = "\n".join(
        [
            section(
                "Multi-tenant cache pressure — 2 overlapping tenants, "
                f"budget {TENANT_CACHE_BUDGET} frames "
                f"(~{100 * TENANT_CACHE_BUDGET / working_set:.0f}% of the "
                f"{working_set}-frame working set)"
            ),
            format_table(
                ["arm", "frames requested", "real detector calls",
                 "calls saved", "plane hit rate", "seconds"],
                rows,
            ),
            f"detector-calls-saved: {ratio:.1f}x private "
            "(parity: identical decision streams per tenant)",
        ]
    )
    save_report("cache_pressure", report)

    # the acceptance claim: sharing saves >= 2x the detector calls of
    # private planes on an overlapping workload under memory pressure
    assert shared["saved"] >= 2 * max(private["saved"], 1)
    # and the shared plane's hit rate beats every private plane's
    assert max(shared["hit_rates"]) > max(private["hit_rates"])
