"""Ablation bench: the random+ stratified within-chunk order (§III-F).

random+ spreads early samples across a range before revisiting any
sub-range, so with long-lived instances it wastes fewer early frames on
duplicates.  The claim is modest: random+ does not hurt, and tends to
help early — checked both inside ExSample and as a standalone baseline.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_random_plus_ablation,
)


def test_bench_ablation_randomplus(benchmark, save_report):
    # long durations make early near-duplicate sampling costly, which is
    # the regime the optimization targets.
    config = AblationConfig(mean_duration=2000.0, runs=5)
    result = benchmark.pedantic(
        run_random_plus_ablation, args=(config,), rounds=1, iterations=1
    )
    save_report("ablation_randomplus", format_ablation(result))

    by = result.by_label()
    quarter = config.num_instances // 4

    # within ExSample: the stratified order is not worse than uniform
    # within-chunk draws (allowing noise at this reduced scale).
    strat = by["exsample+random+"].samples_to(quarter)
    plain = by["exsample+uniform"].samples_to(quarter)
    assert strat is not None and plain is not None
    assert strat <= 1.35 * plain

    # standalone: random+ reaches a quarter of the instances at least as
    # fast as plain random (the §III-F motivation).
    rplus = by["random+"].samples_to(quarter)
    rnd = by["random"].samples_to(quarter)
    assert rplus is not None and rnd is not None
    assert rplus <= 1.35 * rnd
