"""Bench: Fig. 5 — per-query savings of ExSample over random.

Paper summary being matched in shape: geometric mean ~1.9x, max ~6x,
worst case ~0.75x; savings never collapse below random by a large factor.
At the benchmark's reduced scale the gains are compressed (the per-chunk
exploration cost is proportionally larger), so the assertions bound the
same statistics more loosely while preserving the ordering claims.
"""


from repro.experiments.evaluation import EvalConfig
from repro.experiments.fig5 import format_fig5, run_fig5


def test_bench_fig5(benchmark, save_report):
    config = EvalConfig(scale=0.05, runs=3)
    result = benchmark.pedantic(run_fig5, args=(config,), rounds=1, iterations=1)
    save_report("fig5", format_fig5(result))

    summary = result.summary()
    # aggregate savings over random: clearly > 1 on geometric mean
    assert summary["geometric_mean"] > 1.15
    # the best queries show multi-x savings
    assert summary["max_savings"] > 2.5
    # the known high-skew query outperforms the known no-skew query at .5
    bars = {(d, c): s for d, c, s in result.bars(0.5)}
    if ("dashcam", "bicycle") in bars and ("archie", "car") in bars:
        assert bars[("dashcam", "bicycle")] > bars[("archie", "car")]
