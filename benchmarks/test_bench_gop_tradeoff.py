"""Bench: the keyframe re-encoding trade-off behind §V-A.

The paper re-encodes its corpora with keyframes every 20 frames so that
random sampling decodes fast.  This bench regenerates the engineering
curve — expected decode work per random read and relative storage vs GOP
size — and checks the choice's structural facts: GOP 20 keeps random
access within ~10 decodes per read at well under 2x storage, while a
camera-native sparse GOP makes random reads two orders of magnitude
heavier.
"""

import numpy as np
import pytest

from repro.experiments.reporting import format_table, section
from repro.video.codec import DecodeCostModel, GopLayout, sweep_gop_sizes


def _measure():
    rows = sweep_gop_sizes((1, 5, 10, 20, 60, 300, 600))
    # empirical check of the expected-cost column with a real trace
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 1_000_000, size=5000).tolist()
    measured = {}
    for gop in (20, 600):
        model = DecodeCostModel(GopLayout(gop))
        model.charge_trace(trace)
        measured[gop] = model.mean_cost
    return rows, measured


def test_bench_gop_tradeoff(benchmark, save_report):
    rows, measured = benchmark.pedantic(_measure, rounds=1, iterations=1)

    table = format_table(
        ["gop", "E[decodes/read]", "read latency", "storage vs GOP600"],
        [
            [
                r["gop_size"],
                r["expected_decodes_per_read"],
                f"{r['read_latency_seconds'] * 1e3:.0f}ms",
                f"{r['storage_overhead']:.2f}x",
            ]
            for r in rows
        ],
    )
    save_report(
        "gop_tradeoff",
        "\n".join(
            [
                section("GOP size vs random-access decode cost (§V-A re-encode)"),
                table,
                f"measured on a random trace: GOP20 {measured[20]:.1f} decodes/read, "
                f"GOP600 {measured[600]:.1f} decodes/read",
            ]
        ),
    )

    by_gop = {r["gop_size"]: r for r in rows}
    # the paper's choice: cheap random access at acceptable storage.
    assert by_gop[20]["expected_decodes_per_read"] <= 11
    assert by_gop[20]["storage_overhead"] < 2.0
    # a native sparse encode makes random sampling ~30x heavier per read.
    assert (
        by_gop[600]["expected_decodes_per_read"]
        > 25 * by_gop[20]["expected_decodes_per_read"]
    )
    # the analytic expectation matches the measured trace within 10%.
    assert measured[20] == pytest.approx(
        by_gop[20]["expected_decodes_per_read"], rel=0.1
    )
