"""Ablation bench: footnote-1 cross-chunk N1 adjustment.

When an instance spans a chunk boundary, Algorithm 1 as printed charges
the d1 decrement to whichever chunk happened to re-see it; the adjusted
update retires the singleton from the chunk that *first* found it.  The
claim is parity-or-better: a refinement of the estimator's bookkeeping,
never a regression.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_crosschunk_ablation,
)


def test_bench_ablation_crosschunk(benchmark, save_report):
    # long durations on a fine partition put many instances across
    # boundaries — the regime the adjustment addresses.
    config = AblationConfig(mean_duration=2000.0, num_chunks=128, runs=5)
    result = benchmark.pedantic(
        run_crosschunk_ablation, args=(config,), rounds=1, iterations=1
    )
    save_report("ablation_crosschunk", format_ablation(result))

    by = result.by_label()
    half = config.num_instances // 2

    plain = by["algorithm-1"].samples_to(half)
    adjusted = by["cross-chunk"].samples_to(half)
    assert plain is not None and adjusted is not None
    # parity-or-better within noise.
    assert adjusted <= 1.35 * plain

    rnd = by["random"].samples_to(half)
    assert rnd is None or adjusted <= rnd
