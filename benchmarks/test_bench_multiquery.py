"""Bench: shared-detector multi-query execution (extension).

A detector emits boxes for all categories at the cost of one invocation,
so concurrent queries should share sampled frames.  Measured claim: the
shared loop satisfies all limits in fewer total detector frames than
running the same queries back-to-back, on a realistic dataset profile.
"""

import numpy as np

from repro.core.chunking import even_count_chunks
from repro.core.multiquery import MultiQueryExSample
from repro.detection.detector import OracleDetector
from repro.experiments.reporting import format_table, section
from repro.tracking.discriminator import OracleDiscriminator
from repro.video.datasets import build_dataset, scaled_chunk_frames

SCALE = 0.04
CATEGORIES = ("bicycle", "car", "person")
LIMIT = 15


def _engine(repo, limits, seed):
    rng = np.random.default_rng(seed)
    chunk_frames = scaled_chunk_frames("amsterdam", SCALE)
    num_chunks = max(2, repo.total_frames // chunk_frames)
    chunks = even_count_chunks(repo.total_frames, num_chunks, rng)
    return MultiQueryExSample(
        chunks,
        OracleDetector(repo),
        limits,
        discriminator_factory=lambda _c: OracleDiscriminator(),
        rng=rng,
    )


def _run(seed=0):
    repo = build_dataset("amsterdam", categories=list(CATEGORIES), scale=SCALE, seed=seed)
    limits = {c: LIMIT for c in CATEGORIES}

    shared = _engine(repo, limits, seed)
    shared.run(max_samples=repo.total_frames)

    serial_frames = {}
    for category in CATEGORIES:
        single = _engine(repo, {category: LIMIT}, seed)
        single.run(max_samples=repo.total_frames)
        serial_frames[category] = single.frames_processed
    return shared, serial_frames


def test_bench_multiquery(benchmark, save_report):
    shared, serial_frames = benchmark.pedantic(_run, rounds=1, iterations=1)

    serial_total = sum(serial_frames.values())
    rows = [[c, serial_frames[c]] for c in CATEGORIES]
    rows.append(["serial total", serial_total])
    rows.append(["shared", shared.frames_processed])
    report = "\n".join(
        [
            section("Multi-query sharing — detector frames to satisfy all limits"),
            format_table(["query", "frames"], rows),
            f"sharing factor: {serial_total / shared.frames_processed:.2f}x",
        ]
    )
    save_report("multiquery", report)

    assert shared.all_satisfied
    # sharing beats back-to-back execution outright...
    assert shared.frames_processed < serial_total
    # ...and by a sane margin given 3 overlapping queries (>1.2x).
    assert serial_total / shared.frames_processed > 1.2
