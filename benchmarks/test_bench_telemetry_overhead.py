"""Bench: the telemetry subsystem's enabled-path tick overhead.

The telemetry design promise is that observation is near free: the
module-level default is an allocation-free no-op, and the *enabled*
pipeline (live counters, per-stage spans, per-session gauges) must not
tax the serving tick loop it instruments.  This bench runs the same
fixed serving workload — staggered sessions over one synthetic corpus,
ticked to completion — under both pipelines and holds the enabled arm
within 3% of the disabled arm.

Noise discipline.  Machine noise on a shared box is *additive* (a busy
neighbour can only ever make a run slower, never faster) and it comes
in bursts that last seconds, so no single estimator over the whole run
survives it.  The protocol instead:

* interleaves the two arms pair by pair, alternating which arm goes
  first (position within a pair is itself a bias — the second workload
  of a pair tends to run measurably slower under frequency scaling);
* slices the pairs into consecutive *blocks* (a few seconds each) and
  computes, per block, the ratio of per-arm **minima** — both arms do
  bit-identical deterministic work, so each arm has one true cost and
  the minimum over a quiet block converges on it from above;
* gates on the **best block**: a noise burst contaminates the blocks
  it lands in, but any one quiet window suffices to demonstrate the
  enabled arm's true floor relative to the disabled arm's.

The whole comparison runs inside ``benchmark.pedantic`` so the recorded
mean covers every pair — this benchmark is a key in the regression gate
(``check_regression.py``), so its share of suite time must clear the
gate's ``--min-share`` noise floor.
"""

import time

from repro import telemetry
from repro.detection.cache import DetectionCache
from repro.experiments.reporting import format_table, section
from repro.serving import QueryService, ThompsonSumScheduler
from repro.video.datasets import build_dataset, scaled_chunk_frames

SCALE = 0.04
CATEGORIES = ("bicycle", "car", "person")
MAX_SAMPLES = 120           # per session; bounds the work per run exactly
STAGGER_TICKS = 3
FRAMES_PER_TICK = 32
SEEDS = {"bicycle": 7, "car": 8, "person": 9}
PAIRS = 64                  # measured disabled/enabled pairs
BLOCK = 8                   # pairs per measurement window
WARMUP = 2                  # unmeasured full pairs before the clock starts
GATE = 1.03                 # enabled within 3% of disabled, best block


def _workload(repo) -> int:
    """One full serving run; returns ticks executed (work fingerprint)."""
    service = QueryService(
        repo,
        cache=DetectionCache(),
        scheduler=ThompsonSumScheduler(),
        frames_per_tick=FRAMES_PER_TICK,
        chunk_frames=scaled_chunk_frames("amsterdam", SCALE),
        seed=0,
    )
    try:
        for category in CATEGORIES:
            service.submit(
                repo.name, category, max_samples=MAX_SAMPLES, seed=SEEDS[category]
            )
            for _ in range(STAGGER_TICKS):
                service.tick()
        service.run_until_idle(max_ticks=200)
        return service.ticks
    finally:
        service.close()


def _compare() -> dict[str, list[float]]:
    import gc

    repo = build_dataset(
        "amsterdam", categories=list(CATEGORIES), scale=SCALE, seed=0
    )
    times: dict[str, list[float]] = {"disabled": [], "enabled": []}
    ticks: dict[str, set[int]] = {"disabled": set(), "enabled": set()}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for pair in range(-WARMUP, PAIRS):
            order = (
                ("disabled", "enabled")
                if pair % 2 == 0
                else ("enabled", "disabled")
            )
            for arm in order:
                if arm == "enabled":
                    telemetry.enable()
                else:
                    telemetry.disable()
                start = time.perf_counter()
                ticks[arm].add(_workload(repo))
                elapsed = time.perf_counter() - start
                if pair >= 0:
                    times[arm].append(elapsed)
    finally:
        telemetry.disable()
        if gc_was_enabled:
            gc.enable()
    # both arms must have done bit-identical scheduling work, or the
    # timing comparison is meaningless
    assert ticks["disabled"] == ticks["enabled"] and len(ticks["disabled"]) == 1
    return times


def _block_ratios(times: dict[str, list[float]]) -> list[float]:
    """Per-window enabled/disabled ratios of per-arm minima."""
    ratios = []
    for start in range(0, PAIRS, BLOCK):
        disabled = min(times["disabled"][start:start + BLOCK])
        enabled = min(times["enabled"][start:start + BLOCK])
        ratios.append(enabled / disabled)
    return ratios


def test_bench_telemetry_overhead(benchmark, save_report):
    times = benchmark.pedantic(_compare, rounds=1, iterations=1)
    ratios = _block_ratios(times)
    best = min(ratios)
    benchmark.extra_info["overhead_ratio"] = best

    report = "\n".join(
        [
            section("Telemetry — enabled-path overhead on the serving tick loop"),
            format_table(
                ["pipeline", "best/run", "samples"],
                [
                    ["disabled (no-op default)",
                     f"{min(times['disabled']) * 1e3:.2f} ms",
                     len(times["disabled"])],
                    ["enabled (live registry + spans)",
                     f"{min(times['enabled']) * 1e3:.2f} ms",
                     len(times["enabled"])],
                ],
            ),
            "block overheads: "
            + "  ".join(f"{(r - 1) * 100:+.2f}%" for r in ratios),
            f"overhead (best block): {(best - 1) * 100:+.2f}% "
            f"(gate: <{(GATE - 1) * 100:.0f}%)",
        ]
    )
    save_report("telemetry_overhead", report)

    assert best < GATE, (
        f"enabled telemetry costs {(best - 1) * 100:.2f}% over the no-op "
        f"pipeline on the serving workload even in the quietest "
        f"{BLOCK}-pair window (block overheads: "
        + ", ".join(f"{(r - 1) * 100:+.2f}%" for r in ratios)
        + ")"
    )
