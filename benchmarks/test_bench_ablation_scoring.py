"""Ablation bench: scan-free predictive scoring (§VII future work).

Score-guided within-chunk sampling replaces line 7 of Algorithm 1 while
the chunk-level Thompson machinery stays untouched.  Checked claims: an
informative scorer (the oracle occupancy ceiling) helps and never pays a
scan; the feedback-driven proximity scorer does not hurt relative to the
paper's stratified random+ order.
"""

from repro.experiments.ablations import (
    AblationConfig,
    format_ablation,
    run_scoring_ablation,
)


def test_bench_ablation_scoring(benchmark, save_report):
    config = AblationConfig(runs=5)
    result = benchmark.pedantic(
        run_scoring_ablation, args=(config,), rounds=1, iterations=1
    )
    save_report("ablation_scoring", format_ablation(result))

    by = result.by_label()
    half = config.num_instances // 2

    base = by["random+"].samples_to(half)
    oracle = by["oracle-score"].samples_to(half)
    proximity = by["proximity"].samples_to(half)
    assert base is not None and oracle is not None and proximity is not None

    # the oracle ceiling is at least as fast as the stratified order
    # (equality is possible once chunk adaptation dominates).
    assert oracle <= 1.2 * base
    # the practical proximity scorer does not hurt materially.
    assert proximity <= 1.35 * base
