"""Synthetic video repository substrate.

Stands in for the paper's video corpora: frame index space, clips,
ground-truth object instances with box trajectories, and calibrated
profiles of the six evaluation datasets.
"""

from .geometry import Box, Trajectory, iou, iou_matrix
from .instances import InstanceSet, ObjectInstance
from .repository import (
    DecodeStats,
    Frame,
    VideoClip,
    VideoRepository,
    single_clip_repository,
)
from .synthetic import (
    OccupancySchedule,
    first_second_appearance,
    lognormal_durations,
    lognormal_probabilities,
    place_instances,
    skew_fraction_to_std,
)
from .datasets import (
    DATASETS,
    CategoryProfile,
    DatasetProfile,
    all_queries,
    build_dataset,
    dataset_names,
    get_profile,
    scaled_chunk_frames,
)

__all__ = [
    "Box",
    "Trajectory",
    "iou",
    "iou_matrix",
    "InstanceSet",
    "ObjectInstance",
    "DecodeStats",
    "Frame",
    "VideoClip",
    "VideoRepository",
    "single_clip_repository",
    "OccupancySchedule",
    "first_second_appearance",
    "lognormal_durations",
    "lognormal_probabilities",
    "place_instances",
    "skew_fraction_to_std",
    "DATASETS",
    "CategoryProfile",
    "DatasetProfile",
    "all_queries",
    "build_dataset",
    "dataset_names",
    "get_profile",
    "scaled_chunk_frames",
]
