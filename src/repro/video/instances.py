"""Object instances: the ground-truth unit of a distinct object query.

The paper's queries count *distinct object instances*, not detections.  An
:class:`ObjectInstance` records everything the substrate knows about one
physical object: its class label, the frames where it is visible, and its
box trajectory.  The per-instance sampling probability ``p_i`` of §III-A is
simply its visible duration divided by the number of frames in scope.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterable, Iterator

from ..core import backend
from .geometry import Box, Trajectory

__all__ = ["ObjectInstance", "InstanceSet"]


@dataclass(frozen=True)
class ObjectInstance:
    """One distinct object with a single contiguous visibility interval.

    The evaluation datasets in the paper overwhelmingly feature objects with
    one contiguous appearance (a traffic light passed once, a parked car).
    Objects that reappear are modelled as separate instances with a shared
    ``group_id``, mirroring how the paper's ground truth (IoU tracking) would
    also split them.
    """

    instance_id: int
    category: str
    trajectory: Trajectory
    group_id: int | None = None

    @property
    def start_frame(self) -> int:
        return self.trajectory.start_frame

    @property
    def end_frame(self) -> int:
        return self.trajectory.end_frame

    @property
    def duration(self) -> int:
        return self.trajectory.duration

    def visible_at(self, frame: int) -> bool:
        return self.trajectory.covers(frame)

    def box_at(self, frame: int) -> Box:
        return self.trajectory.box_at(frame)

    def probability(self, total_frames: int) -> float:
        """The ``p_i`` of §III-A relative to a scope of ``total_frames``."""
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        return self.duration / total_frames


class InstanceSet:
    """An indexed collection of instances supporting fast frame lookup.

    ``visible_in(frame)`` is the hot path: the simulated detector calls it
    once per sampled frame.  We build an interval index (sorted starts plus a
    running maximum of ends) so lookup cost is ``O(log N + K)`` for K visible
    instances rather than a scan of all N.
    """

    def __init__(self, instances: Iterable[ObjectInstance]):
        self._instances: list[ObjectInstance] = sorted(
            instances, key=lambda inst: (inst.start_frame, inst.instance_id)
        )
        ids = [inst.instance_id for inst in self._instances]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate instance ids")
        self._by_id = {inst.instance_id: inst for inst in self._instances}
        self._starts = [inst.start_frame for inst in self._instances]
        ends = [inst.end_frame for inst in self._instances]
        # prefix maximum of end frames enables pruning the backward scan:
        # all instances before index k have ended once max_end[:k] <= frame.
        self._prefix_max_end = list(accumulate(ends, max))

    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[ObjectInstance]:
        return iter(self._instances)

    def __getitem__(self, instance_id: int) -> ObjectInstance:
        return self._by_id[instance_id]

    def __contains__(self, instance_id: int) -> bool:
        return instance_id in self._by_id

    @property
    def categories(self) -> list[str]:
        """Sorted unique category labels present in the set."""
        return sorted({inst.category for inst in self._instances})

    def of_category(self, category: str) -> "InstanceSet":
        return InstanceSet(inst for inst in self._instances if inst.category == category)

    def visible_in(self, frame: int, category: str | None = None) -> list[ObjectInstance]:
        """All instances visible in ``frame``, optionally of one category."""
        if not self._instances:
            return []
        # candidates: instances starting at or before `frame`
        hi = bisect.bisect_right(self._starts, frame)
        visible = []
        for idx in range(hi - 1, -1, -1):
            if self._prefix_max_end[idx] <= frame:
                break  # nothing earlier can still be live
            inst = self._instances[idx]
            if inst.end_frame > frame:
                if category is None or inst.category == category:
                    visible.append(inst)
        visible.reverse()
        return visible

    def durations(self):
        """Per-instance visible durations — ndarray under numpy, else a list."""
        values = [inst.duration for inst in self._instances]
        if backend.use_numpy():
            return backend.np.asarray(values, dtype=backend.np.int64)
        return values

    def probabilities(self, total_frames: int):
        """Vector of ``p_i`` for all instances relative to ``total_frames``."""
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        durations = self.durations()
        if backend.use_numpy():
            return durations / float(total_frames)
        return [d / float(total_frames) for d in durations]

    def count_in_range(self, start: int, end: int) -> int:
        """Instances whose midpoint falls in ``[start, end)``.

        Midpoint assignment gives each instance exactly one home chunk,
        which is how Fig. 6 histograms assign instances to chunks.
        """
        count = 0
        for inst in self._instances:
            mid = (inst.start_frame + inst.end_frame) // 2
            if start <= mid < end:
                count += 1
        return count

    def ids(self) -> list[int]:
        return [inst.instance_id for inst in self._instances]
