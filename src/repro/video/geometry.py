"""Bounding-box geometry for the synthetic video substrate.

The paper treats object detections as axis-aligned boxes and matches them
with Intersection-over-Union (IoU), following SORT [Bewley et al. 2016].
This module provides the box algebra everything else builds on: a small
immutable :class:`Box` value type, vectorized IoU over numpy arrays, and
:class:`Trajectory`, a piecewise-linear motion model that yields a box for
every frame in which an object instance is visible.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from ..core import backend

__all__ = [
    "Box",
    "iou",
    "iou_matrix",
    "Trajectory",
]


@dataclass(frozen=True, slots=True)
class Box:
    """An axis-aligned bounding box in pixel coordinates.

    Uses the ``(x1, y1, x2, y2)`` corner convention with ``x1 <= x2`` and
    ``y1 <= y2``.  Degenerate (zero-area) boxes are allowed; they arise
    naturally when an object is about to leave the frame.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"box corners out of order: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def intersection(self, other: "Box") -> float:
        """Area of overlap with ``other`` (zero when disjoint)."""
        iw = min(self.x2, other.x2) - max(self.x1, other.x1)
        ih = min(self.y2, other.y2) - max(self.y1, other.y1)
        if iw <= 0.0 or ih <= 0.0:
            return 0.0
        return iw * ih

    def union(self, other: "Box") -> float:
        """Area of the set union with ``other``."""
        return self.area + other.area - self.intersection(other)

    def iou(self, other: "Box") -> float:
        """Intersection over union with ``other``, in [0, 1]."""
        inter = self.intersection(other)
        if inter == 0.0:
            return 0.0
        return inter / (self.area + other.area - inter)

    def translate(self, dx: float, dy: float) -> "Box":
        return Box(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scale(self, factor: float) -> "Box":
        """Scale about the box center, keeping the center fixed."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        cx, cy = self.center
        hw = self.width * factor / 2.0
        hh = self.height * factor / 2.0
        return Box(cx - hw, cy - hh, cx + hw, cy + hh)

    def clip(self, width: float, height: float) -> "Box":
        """Clip to an image of the given dimensions."""
        x1 = min(max(self.x1, 0.0), width)
        y1 = min(max(self.y1, 0.0), height)
        x2 = min(max(self.x2, 0.0), width)
        y2 = min(max(self.y2, 0.0), height)
        return Box(x1, y1, x2, y2)

    def contains_point(self, x: float, y: float) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def to_tuple(self) -> tuple[float, float, float, float]:
        return (self.x1, self.y1, self.x2, self.y2)

    def to_array(self):
        backend.require_numpy("Box.to_array")
        np = backend.np
        return np.array([self.x1, self.y1, self.x2, self.y2], dtype=np.float64)

    @staticmethod
    def from_array(arr: Sequence[float]) -> "Box":
        if len(arr) != 4:
            raise ValueError("expected 4 coordinates")
        return Box(float(arr[0]), float(arr[1]), float(arr[2]), float(arr[3]))

    @staticmethod
    def from_center(cx: float, cy: float, width: float, height: float) -> "Box":
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return Box(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)


def iou(a: Box, b: Box) -> float:
    """Convenience wrapper over :meth:`Box.iou`."""
    return a.iou(b)


def iou_matrix(boxes_a, boxes_b):
    """Pairwise IoU between two box collections.

    Accepts sequences of :class:`Box` (or ``(N, 4)`` float arrays, numpy
    only) in corner convention.  Returns an ``(len(a), len(b))`` matrix —
    an ndarray under numpy, a list of row lists on the fallback.  The two
    layouts carry bit-identical values: both compute the same max/min/
    multiply/divide per cell.  Empty inputs yield empty matrices, which
    keeps tracker code branch-free.
    """
    if backend.use_numpy():
        np = backend.np
        a = _as_box_array(boxes_a)
        b = _as_box_array(boxes_b)
        if a.shape[0] == 0 or b.shape[0] == 0:
            return np.zeros((a.shape[0], b.shape[0]), dtype=np.float64)

        ix1 = np.maximum(a[:, None, 0], b[None, :, 0])
        iy1 = np.maximum(a[:, None, 1], b[None, :, 1])
        ix2 = np.minimum(a[:, None, 2], b[None, :, 2])
        iy2 = np.minimum(a[:, None, 3], b[None, :, 3])
        iw = np.clip(ix2 - ix1, 0.0, None)
        ih = np.clip(iy2 - iy1, 0.0, None)
        inter = iw * ih

        area_a = (a[:, 2] - a[:, 0]) * (a[:, 3] - a[:, 1])
        area_b = (b[:, 2] - b[:, 0]) * (b[:, 3] - b[:, 1])
        union = area_a[:, None] + area_b[None, :] - inter
        with np.errstate(divide="ignore", invalid="ignore"):
            result = np.where(union > 0.0, inter / union, 0.0)
        return result
    a = _as_box_rows(boxes_a)
    b = _as_box_rows(boxes_b)
    out = []
    for ax1, ay1, ax2, ay2 in a:
        area_a = (ax2 - ax1) * (ay2 - ay1)
        row = []
        for bx1, by1, bx2, by2 in b:
            iw = min(ax2, bx2) - max(ax1, bx1)
            if iw < 0.0:
                iw = 0.0
            ih = min(ay2, by2) - max(ay1, by1)
            if ih < 0.0:
                ih = 0.0
            inter = iw * ih
            area_b = (bx2 - bx1) * (by2 - by1)
            union = area_a + area_b - inter
            row.append(inter / union if union > 0.0 else 0.0)
        out.append(row)
    return out


def _as_box_array(boxes):
    np = backend.np
    if isinstance(boxes, np.ndarray):
        if boxes.ndim != 2 or boxes.shape[1] != 4:
            raise ValueError("box array must have shape (N, 4)")
        return boxes.astype(np.float64, copy=False)
    return np.array(
        [(b.x1, b.y1, b.x2, b.y2) for b in boxes], dtype=np.float64
    ).reshape(-1, 4)


def _as_box_rows(boxes) -> list[tuple[float, float, float, float]]:
    rows = []
    for b in boxes:
        if isinstance(b, Box):
            rows.append((b.x1, b.y1, b.x2, b.y2))
            continue
        if len(b) != 4:
            raise ValueError("box rows must have exactly 4 coordinates")
        rows.append((float(b[0]), float(b[1]), float(b[2]), float(b[3])))
    return rows


class Trajectory:
    """A piecewise-linear box trajectory over a frame interval.

    An instance visible from ``start_frame`` (inclusive) to ``end_frame``
    (exclusive) is described by keyframe boxes; boxes for in-between frames
    are linearly interpolated.  This is how the synthetic substrate gives the
    SORT-like discriminator realistic, smoothly-moving detections to match.
    """

    def __init__(self, keyframes: Sequence[tuple[int, Box]]):
        if not keyframes:
            raise ValueError("trajectory needs at least one keyframe")
        ordered = sorted(keyframes, key=lambda kv: kv[0])
        frames = [f for f, _ in ordered]
        if len(set(frames)) != len(frames):
            raise ValueError("duplicate keyframe frame indices")
        # plain lists/tuples: per-frame interpolation over 4 floats gains
        # nothing from vectorization, and this keeps the motion model (and
        # everything downstream of it) backend-independent.
        self._frames = frames
        self._coords = [(b.x1, b.y1, b.x2, b.y2) for _, b in ordered]

    @property
    def start_frame(self) -> int:
        """First frame (inclusive) covered by the trajectory."""
        return self._frames[0]

    @property
    def end_frame(self) -> int:
        """One past the last keyframe, so the span is ``[start, end)``."""
        return self._frames[-1] + 1

    @property
    def duration(self) -> int:
        """Number of frames in which the object is visible."""
        return self.end_frame - self.start_frame

    def covers(self, frame: int) -> bool:
        return self.start_frame <= frame < self.end_frame

    def box_at(self, frame: int) -> Box:
        """Interpolated box at ``frame``; raises if outside the span."""
        if not self.covers(frame):
            raise ValueError(
                f"frame {frame} outside trajectory span [{self.start_frame}, {self.end_frame})"
            )
        idx = bisect.bisect_right(self._frames, frame) - 1
        f0 = self._frames[idx]
        if f0 == frame or idx == len(self._frames) - 1:
            return Box.from_array(self._coords[idx])
        f1 = self._frames[idx + 1]
        t = (frame - f0) / (f1 - f0)
        c0 = self._coords[idx]
        c1 = self._coords[idx + 1]
        coords = tuple((1.0 - t) * p0 + t * p1 for p0, p1 in zip(c0, c1))
        return Box.from_array(coords)

    @staticmethod
    def linear(start_frame: int, duration: int, start_box: Box, end_box: Box) -> "Trajectory":
        """Straight-line motion from ``start_box`` to ``end_box``.

        ``duration`` counts frames; a duration of 1 produces a single
        stationary keyframe.
        """
        if duration < 1:
            raise ValueError("duration must be >= 1")
        if duration == 1:
            return Trajectory([(start_frame, start_box)])
        return Trajectory([(start_frame, start_box), (start_frame + duration - 1, end_box)])

    @staticmethod
    def stationary(start_frame: int, duration: int, box: Box) -> "Trajectory":
        """An object that does not move (static-camera parked car, etc.)."""
        return Trajectory.linear(start_frame, duration, box, box)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trajectory(span=[{self.start_frame}, {self.end_frame}), "
            f"keyframes={len(self._frames)})"
        )
