"""The video repository substrate.

The paper's system reads frames by random access from re-encoded video
files (keyframes every 20 frames, via the Hwang/Scanner library).  Here a
:class:`VideoRepository` models the same interface over synthetic data: a
global frame-index space split into clips, a ground-truth
:class:`~repro.video.instances.InstanceSet`, and decode-cost accounting.
Pixels are never materialized — the simulated detector consults ground
truth directly — but every read is *charged* so experiments can report
realistic time costs (§V-B's 20 fps detect / 100 fps scan split).

Repositories are **appendable**: real camera deployments keep recording
while queries run, so :meth:`VideoRepository.append_clip` admits new
footage at the end of the frame space.  The frame-index space grows
monotonically — existing frame indices, clip boundaries, and therefore
detection-cache keys never change — and each append bumps
:attr:`VideoRepository.version` so downstream consumers (simulated
detectors, chunkers, serving sessions) can notice growth cheaply.  A
repository may start *empty* (zero clips) and receive all of its footage
through appends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import bisect

from .instances import InstanceSet, ObjectInstance

__all__ = [
    "VideoClip",
    "Frame",
    "DecodeStats",
    "VideoRepository",
    "single_clip_repository",
    "empty_repository",
]


@dataclass(frozen=True)
class VideoClip:
    """A contiguous recording (one dashcam drive, one BDD clip, ...)."""

    clip_id: int
    name: str
    start_frame: int  # inclusive, in repository-global frame index space
    num_frames: int
    fps: float = 30.0

    def __post_init__(self) -> None:
        if self.num_frames <= 0:
            raise ValueError("clip must contain at least one frame")
        if self.start_frame < 0:
            raise ValueError("start_frame must be non-negative")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    @property
    def end_frame(self) -> int:
        return self.start_frame + self.num_frames

    @property
    def duration_seconds(self) -> float:
        return self.num_frames / self.fps

    def contains(self, frame: int) -> bool:
        return self.start_frame <= frame < self.end_frame


@dataclass(frozen=True)
class Frame:
    """A decoded frame handle: global index plus the clip it came from.

    Real systems would attach pixel data here; the simulation attaches
    nothing, because the detector resolves content from ground truth.
    """

    index: int
    clip: VideoClip

    @property
    def clip_local_index(self) -> int:
        return self.index - self.clip.start_frame


@dataclass
class DecodeStats:
    """Counters for decode work, the paper's secondary cost (§III-E)."""

    frames_decoded: int = 0
    random_seeks: int = 0
    _last_frame: int | None = field(default=None, repr=False)

    def record(self, frame_index: int) -> None:
        self.frames_decoded += 1
        if self._last_frame is None or frame_index != self._last_frame + 1:
            self.random_seeks += 1
        self._last_frame = frame_index

    def reset(self) -> None:
        self.frames_decoded = 0
        self.random_seeks = 0
        self._last_frame = None


class VideoRepository:
    """A searchable collection of clips with ground-truth instances.

    This is the object queries run against.  It exposes:

    * the global frame-index space (``total_frames``, ``read``),
    * clip structure (used by chunking policies that align chunks to files,
      as the paper does for BDD where each sub-minute clip is one chunk),
    * the ground-truth :class:`InstanceSet` (consumed *only* by the
      simulated detector and by evaluation metrics — the sampling algorithms
      never touch it).
    """

    def __init__(
        self,
        clips: Sequence[VideoClip],
        instances: InstanceSet | Iterable[ObjectInstance],
        name: str = "synthetic",
    ):
        # zero clips is legal: a live repository may start empty and
        # receive all of its footage through append_clip()
        ordered = sorted(clips, key=lambda c: c.start_frame)
        expected = 0
        for clip in ordered:
            if clip.start_frame != expected:
                raise ValueError(
                    f"clip {clip.name!r} starts at {clip.start_frame}, expected {expected}: "
                    "clips must tile the frame space contiguously"
                )
            expected = clip.end_frame
        self._clips = list(ordered)
        self._clip_starts = [c.start_frame for c in self._clips]
        self._total_frames = expected
        self._instances = (
            instances if isinstance(instances, InstanceSet) else InstanceSet(instances)
        )
        for inst in self._instances:
            if inst.end_frame > self._total_frames:
                raise ValueError(
                    f"instance {inst.instance_id} extends past the last frame "
                    f"({inst.end_frame} > {self._total_frames})"
                )
        self.name = name
        self.decode_stats = DecodeStats()
        self._version = 0

    # ---------------------------------------------------------------- frames

    @property
    def total_frames(self) -> int:
        return self._total_frames

    @property
    def horizon(self) -> int:
        """The exclusive upper bound of the frame space — an alias of
        :attr:`total_frames` named for the live-ingestion contract: the
        horizon only ever moves forward, and frames below it are
        immutable (so caches keyed by frame index stay valid forever)."""
        return self._total_frames

    @property
    def version(self) -> int:
        """Monotonic ingestion counter: bumped once per appended clip.

        Consumers that precompute indexes over the ground truth (the
        simulated detectors' occupancy schedules, the serving layer's
        chunk feeds) compare versions to detect growth in O(1).
        """
        return self._version

    def read(self, frame_index: int) -> Frame:
        """Decode one frame by global index, charging decode cost."""
        clip = self.clip_for_frame(frame_index)
        self.decode_stats.record(frame_index)
        return Frame(index=frame_index, clip=clip)

    # ----------------------------------------------------------------- clips

    @property
    def clips(self) -> list[VideoClip]:
        return list(self._clips)

    @property
    def num_clips(self) -> int:
        return len(self._clips)

    def clip_for_frame(self, frame_index: int) -> VideoClip:
        if not 0 <= frame_index < self._total_frames:
            raise IndexError(
                f"frame {frame_index} out of range [0, {self._total_frames})"
            )
        pos = bisect.bisect_right(self._clip_starts, frame_index) - 1
        return self._clips[pos]

    # ------------------------------------------------------------- ingestion

    def append_clip(
        self,
        num_frames: int,
        instances: Iterable[ObjectInstance] = (),
        name: str | None = None,
        fps: float | None = None,
    ) -> VideoClip:
        """Append a newly recorded clip at the end of the frame space.

        The clip starts exactly at the current horizon (frame indices are
        assigned, not chosen), so every existing frame index — and every
        detection-cache entry keyed by one — remains valid.  ``instances``
        is the clip's ground truth; each instance must lie entirely inside
        the new clip's span (clips are independent recordings, the same
        invariant :func:`~repro.video.synthetic.place_instances` enforces
        with ``boundaries``).  Returns the new :class:`VideoClip`.
        """
        if num_frames <= 0:
            raise ValueError("appended clip must contain at least one frame")
        if fps is None:
            fps = self._clips[-1].fps if self._clips else 30.0
        clip_id = len(self._clips)
        clip = VideoClip(
            clip_id=clip_id,
            name=name if name is not None else f"{self.name}-{clip_id:04d}",
            start_frame=self._total_frames,
            num_frames=num_frames,
            fps=fps,
        )
        new_instances = list(instances)
        for inst in new_instances:
            if inst.start_frame < clip.start_frame or inst.end_frame > clip.end_frame:
                raise ValueError(
                    f"instance {inst.instance_id} [{inst.start_frame}, {inst.end_frame}) "
                    f"lies outside the appended clip [{clip.start_frame}, {clip.end_frame})"
                )
        self._clips.append(clip)
        self._clip_starts.append(clip.start_frame)
        self._total_frames = clip.end_frame
        if new_instances:
            self._instances = InstanceSet(list(self._instances) + new_instances)
        self._version += 1
        return clip

    # ----------------------------------------------------------- ground truth

    @property
    def instances(self) -> InstanceSet:
        """Ground truth; used by the detector simulation and metrics only."""
        return self._instances

    def instances_of(self, category: str) -> InstanceSet:
        return self._instances.of_category(category)

    def categories(self) -> list[str]:
        return self._instances.categories

    # ------------------------------------------------------------- utilities

    def duration_seconds(self) -> float:
        return sum(c.duration_seconds for c in self._clips)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VideoRepository(name={self.name!r}, clips={self.num_clips}, "
            f"frames={self._total_frames}, instances={len(self._instances)})"
        )


def empty_repository(name: str = "live") -> VideoRepository:
    """A repository with no footage yet — the live-ingestion starting
    point: all content arrives through :meth:`VideoRepository.append_clip`."""
    return VideoRepository([], InstanceSet([]), name=name)


def single_clip_repository(
    total_frames: int,
    instances: Iterable[ObjectInstance],
    name: str = "synthetic",
    fps: float = 30.0,
) -> VideoRepository:
    """Convenience constructor: one clip spanning the whole frame space."""
    clip = VideoClip(clip_id=0, name=f"{name}-0", start_frame=0, num_frames=total_frames, fps=fps)
    return VideoRepository([clip], instances, name=name)
