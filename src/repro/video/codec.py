"""GOP-aware decode cost: the keyframe trade-off of §V-A.

Compressed video only supports random access at *keyframes* (I-frames);
decoding an arbitrary frame means seeking to the previous keyframe and
decoding forward through the intervening predicted frames.  The paper
works around this by re-encoding its corpora "to insert keyframes every
20 frames" (via the Hwang library from Scanner), trading storage for
random-access decode speed.

This module models that trade-off so experiments can quantify it:

* :class:`GopLayout` — keyframe positions for a given GOP (group of
  pictures) size, and the decode work for any access pattern: a random
  read of frame f costs ``1 + (f - keyframe_before(f))`` frame decodes,
  while a sequential read after frame f-1 costs 1;
* :class:`CodecModel` — converts decode work into seconds and bytes:
  storage grows as keyframes densify (I-frames are ~R× larger than
  P-frames), decode latency shrinks;
* :func:`sweep_gop_sizes` — the engineering curve behind the paper's
  "every 20 frames" choice: expected random-access cost and relative
  storage vs GOP size.

The repository's :class:`~repro.video.repository.DecodeStats` counts
frames and seeks; attach a :class:`GopLayout` via
:meth:`DecodeCostModel.charge` to turn a frame-access trace into
GOP-aware decode work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["GopLayout", "CodecModel", "DecodeCostModel", "sweep_gop_sizes"]


@dataclass(frozen=True)
class GopLayout:
    """Keyframe placement: one I-frame every ``gop_size`` frames.

    Frame 0 of every clip is always a keyframe; the layout works in
    clip-local indices (pass global indices through
    ``frame - clip.start_frame`` when clips matter).
    """

    gop_size: int

    def __post_init__(self) -> None:
        if self.gop_size <= 0:
            raise ValueError("gop_size must be positive")

    def keyframe_before(self, frame_index: int) -> int:
        """The nearest keyframe at or before ``frame_index``."""
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        return (frame_index // self.gop_size) * self.gop_size

    def is_keyframe(self, frame_index: int) -> bool:
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        return frame_index % self.gop_size == 0

    def random_access_cost(self, frame_index: int) -> int:
        """Frame decodes for a cold random read: keyframe + P-frames up
        to and including the target."""
        return frame_index - self.keyframe_before(frame_index) + 1

    def expected_random_cost(self) -> float:
        """Mean decodes per uniformly random access: (gop + 1) / 2."""
        return (self.gop_size + 1) / 2.0

    def keyframes_in(self, num_frames: int) -> int:
        """Number of I-frames a ``num_frames``-long clip carries."""
        if num_frames < 0:
            raise ValueError("num_frames must be non-negative")
        if num_frames == 0:
            return 0
        return (num_frames - 1) // self.gop_size + 1


@dataclass(frozen=True)
class CodecModel:
    """Size and speed constants for one encode configuration.

    ``iframe_bytes`` / ``pframe_bytes``: average encoded sizes (the
    ~10:1 default ratio is typical of 1080p H.264 at the paper's
    quality); ``decode_fps``: how many frames per second the decoder
    sustains once it is reading (the 100 fps scan rate of §V-B is
    decode-bound, so that is the default).
    """

    iframe_bytes: int = 150_000
    pframe_bytes: int = 15_000
    decode_fps: float = 100.0

    def __post_init__(self) -> None:
        if self.iframe_bytes <= 0 or self.pframe_bytes <= 0:
            raise ValueError("frame sizes must be positive")
        if self.decode_fps <= 0:
            raise ValueError("decode_fps must be positive")

    def storage_bytes(self, num_frames: int, layout: GopLayout) -> int:
        """Encoded size of a clip under ``layout``."""
        if num_frames < 0:
            raise ValueError("num_frames must be non-negative")
        keyframes = layout.keyframes_in(num_frames)
        return keyframes * self.iframe_bytes + (num_frames - keyframes) * self.pframe_bytes

    def storage_overhead(self, layout: GopLayout, baseline_gop: int = 600) -> float:
        """Relative storage vs a sparse-keyframe encode (default: one
        I-frame per 600 frames ≈ 20 s at 30 fps, a typical camera GOP)."""
        frames = 60_000  # large enough that edge effects vanish
        dense = self.storage_bytes(frames, layout)
        sparse = self.storage_bytes(frames, GopLayout(baseline_gop))
        return dense / sparse

    def decode_seconds(self, frame_decodes: int) -> float:
        """Wall-clock seconds for ``frame_decodes`` frames of decode work."""
        if frame_decodes < 0:
            raise ValueError("frame_decodes must be non-negative")
        return frame_decodes / self.decode_fps


class DecodeCostModel:
    """Charges a frame-access trace with GOP-aware decode work.

    Sequential reads ride the decoder state (cost 1); any other access
    restarts from the previous keyframe.  This refines the flat
    per-frame charge of :class:`~repro.video.repository.DecodeStats`
    and quantifies why random sampling is I/O-heavier per frame than a
    sequential scan — and why the paper re-encodes to GOP 20.
    """

    def __init__(self, layout: GopLayout, codec: CodecModel | None = None):
        self._layout = layout
        self._codec = codec if codec is not None else CodecModel()
        self._last_frame: int | None = None
        self.frame_decodes = 0
        self.accesses = 0

    @property
    def layout(self) -> GopLayout:
        return self._layout

    def charge(self, frame_index: int) -> int:
        """Record one read; returns the decode work it cost."""
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        if self._last_frame is not None and frame_index == self._last_frame + 1:
            cost = 1  # decoder state carries over
        else:
            cost = self._layout.random_access_cost(frame_index)
        self._last_frame = frame_index
        self.frame_decodes += cost
        self.accesses += 1
        return cost

    def charge_trace(self, frames: Iterable[int]) -> int:
        """Charge a whole access trace; returns total decode work."""
        return sum(self.charge(f) for f in frames)

    @property
    def mean_cost(self) -> float:
        """Average decode work per access so far."""
        if self.accesses == 0:
            return 0.0
        return self.frame_decodes / self.accesses

    def seconds(self) -> float:
        return self._codec.decode_seconds(self.frame_decodes)

    def reset(self) -> None:
        self._last_frame = None
        self.frame_decodes = 0
        self.accesses = 0


def sweep_gop_sizes(
    gop_sizes: Sequence[int] = (1, 5, 10, 20, 60, 300, 600),
    codec: CodecModel | None = None,
) -> list[dict]:
    """The re-encoding trade-off curve behind the paper's GOP-20 choice.

    Returns one row per GOP size with the expected random-access decode
    cost (frames), the modelled per-read latency, and the storage
    relative to a sparse GOP-600 encode.
    """
    codec = codec if codec is not None else CodecModel()
    rows = []
    for gop in gop_sizes:
        layout = GopLayout(gop)
        expected = layout.expected_random_cost()
        rows.append(
            {
                "gop_size": gop,
                "expected_decodes_per_read": expected,
                "read_latency_seconds": codec.decode_seconds(int(round(expected))),
                "storage_overhead": codec.storage_overhead(layout),
            }
        )
    return rows
