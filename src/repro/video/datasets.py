"""Profiles of the paper's six evaluation datasets (§V-A), synthesized.

The paper evaluates on dashcam, BDD-1k, BDD-MOT, amsterdam, archie and
night-street.  None of these corpora can be shipped here, so each is
replaced by a calibrated synthetic profile:

* **Frame counts** are derived from the published proxy scan times in
  Table I at the measured 100 fps scoring throughput (e.g. BDD-MOT: 53 min
  → ≈318 k frames, which matches the stated 1600 clips × ≈200 frames).
* **Clip/chunk structure** follows §V-A: 20-minute chunks for dashcam and
  the static cameras (≈30 and ≈60 chunks respectively), one chunk per clip
  for the BDD datasets (1000 and 1600 chunks).
* **Per-category mean durations** are calibrated from each query's
  90%-recall time in Table I under the random-sampling relation
  ``n_90 ≈ ln(10)/p_i``: longer-lived objects are found sooner.
* **Instance counts** use the values the paper publishes in Fig. 6 where
  available (dashcam/bicycle N=249, bdd1k/motor N=509, night-street/person
  N=2078, archie/car N=33546, amsterdam/boat N=588) and class-commonness
  estimates elsewhere.
* **Skew fractions** encode Fig. 6's skew metric S via
  ``S ≈ 1.45 / skew_fraction`` (half the normal mass lies within ±0.674σ).

Everything downstream (Table I, Figs. 5–6 benches) consumes these profiles
through :func:`build_dataset`, which materializes a
:class:`~repro.video.repository.VideoRepository` with ground truth.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from itertools import accumulate
from typing import Sequence

from ..core import backend
from .instances import InstanceSet, ObjectInstance
from .repository import VideoClip, VideoRepository
from .synthetic import place_instances

__all__ = [
    "CategoryProfile",
    "DatasetProfile",
    "DATASETS",
    "dataset_names",
    "get_profile",
    "build_dataset",
    "all_queries",
]


@dataclass(frozen=True)
class CategoryProfile:
    """Calibrated generation parameters for one (dataset, category) query."""

    category: str
    num_instances: int
    mean_duration: float  # frames
    skew_fraction: float | None  # None = uniform placement ("no skew")
    duration_sigma_log: float = 0.8


@dataclass(frozen=True)
class DatasetProfile:
    """Structure and content of one synthetic evaluation dataset."""

    name: str
    fps: float
    clip_frames: tuple[int, ...]  # frame count per clip, in order
    chunk_frames: int | None  # fixed chunk size; None = one chunk per clip
    categories: tuple[CategoryProfile, ...]

    @property
    def total_frames(self) -> int:
        return sum(self.clip_frames)

    @property
    def num_clips(self) -> int:
        return len(self.clip_frames)

    @property
    def num_chunks(self) -> int:
        if self.chunk_frames is None:
            return self.num_clips
        # ceil division: a trailing partial chunk still counts
        return -(-self.total_frames // self.chunk_frames)

    def category_names(self) -> list[str]:
        return [c.category for c in self.categories]

    def category(self, name: str) -> CategoryProfile:
        for prof in self.categories:
            if prof.category == name:
                return prof
        raise KeyError(f"{self.name} has no category {name!r}")


def _uniform_clips(num_clips: int, frames_per_clip: int) -> tuple[int, ...]:
    return tuple([frames_per_clip] * num_clips)


# --------------------------------------------------------------------------
# The six profiles.  See the module docstring for the calibration recipe.
# --------------------------------------------------------------------------

_DASHCAM = DatasetProfile(
    name="dashcam",
    fps=29.0,
    # Eight drives (20 min – 3 h) totalling 10 h / 1.044 M frames, split into
    # 20-minute chunks (34 800 frames) downstream => 30 chunks.
    clip_frames=(313200, 208800, 156600, 104400, 104400, 69600, 52200, 34800),
    chunk_frames=34800,
    categories=(
        CategoryProfile("bicycle", 249, 33.0, 0.10),
        CategoryProfile("bus", 400, 18.0, 0.30),
        CategoryProfile("fire hydrant", 300, 27.0, 0.25),
        CategoryProfile("person", 1500, 30.0, 0.30),
        CategoryProfile("stop sign", 600, 14.0, 0.25),
        CategoryProfile("traffic light", 2000, 25.0, 0.30),
        CategoryProfile("truck", 1800, 17.0, 0.40),
    ),
)

_BDD1K = DatasetProfile(
    name="bdd1k",
    fps=30.0,
    # 1000 sub-minute clips; each clip is its own chunk (§V-A), a stress
    # case for ExSample per §IV-C.
    clip_frames=_uniform_clips(1000, 324),
    chunk_frames=None,
    categories=(
        CategoryProfile("bike", 800, 15.0, 0.25),
        CategoryProfile("bus", 1200, 28.0, 0.25),
        CategoryProfile("motor", 509, 13.0, 0.08),
        CategoryProfile("person", 8000, 17.0, 0.30),
        CategoryProfile("rider", 700, 14.0, 0.20),
        CategoryProfile("traffic light", 4000, 12.0, 0.30),
        CategoryProfile("traffic sign", 6000, 11.0, 0.35),
        CategoryProfile("truck", 3000, 12.0, 0.30),
    ),
)

_BDD_MOT = DatasetProfile(
    name="bdd_mot",
    fps=30.0,
    clip_frames=_uniform_clips(1600, 199),
    chunk_frames=None,
    categories=(
        CategoryProfile("bicycle", 600, 34.0, 0.25),
        CategoryProfile("bus", 800, 29.0, 0.25),
        CategoryProfile("car", 20000, 20.0, 0.45),
        CategoryProfile("motorcycle", 300, 52.0, 0.15),
        CategoryProfile("pedestrian", 8000, 26.0, 0.30),
        CategoryProfile("rider", 500, 19.0, 0.20),
        CategoryProfile("trailer", 100, 42.0, 0.15),
        CategoryProfile("train", 40, 30.0, 0.15),
        CategoryProfile("truck", 3000, 30.0, 0.35),
    ),
)

_AMSTERDAM = DatasetProfile(
    name="amsterdam",
    fps=49.2,
    # 20 hours from one fixed camera; 20 one-hour files, 60 20-min chunks.
    clip_frames=_uniform_clips(20, 177000),
    chunk_frames=59000,
    categories=(
        CategoryProfile("bicycle", 8000, 174.0, 0.35),
        CategoryProfile("boat", 588, 2700.0, None),
        CategoryProfile("car", 10000, 288.0, 0.50),
        CategoryProfile("dog", 400, 62.0, 0.15),
        CategoryProfile("motorcycle", 500, 49.0, 0.20),
        CategoryProfile("person", 15000, 314.0, 0.40),
        CategoryProfile("truck", 2000, 174.0, 0.35),
    ),
)

_ARCHIE = DatasetProfile(
    name="archie",
    fps=49.1,
    clip_frames=_uniform_clips(20, 176700),
    chunk_frames=58900,
    categories=(
        CategoryProfile("bicycle", 3000, 158.0, 0.25),
        CategoryProfile("bus", 1500, 117.0, 0.25),
        CategoryProfile("car", 33546, 641.0, None),
        CategoryProfile("motorcycle", 600, 58.0, 0.20),
        CategoryProfile("person", 20000, 136.0, 0.35),
        CategoryProfile("truck", 4000, 84.0, 0.25),
    ),
)

_NIGHT_STREET = DatasetProfile(
    name="night_street",
    fps=40.0,
    clip_frames=_uniform_clips(20, 144000),
    chunk_frames=48000,
    categories=(
        CategoryProfile("bus", 800, 106.0, 0.35),
        CategoryProfile("car", 15000, 502.0, 0.50),
        CategoryProfile("dog", 150, 85.0, 0.20),
        CategoryProfile("motorcycle", 200, 28.0, 0.20),
        CategoryProfile("person", 2078, 368.0, 0.32),
        CategoryProfile("truck", 2500, 86.0, 0.40),
    ),
)

DATASETS: dict[str, DatasetProfile] = {
    profile.name: profile
    for profile in (_DASHCAM, _BDD1K, _BDD_MOT, _AMSTERDAM, _ARCHIE, _NIGHT_STREET)
}


def dataset_names() -> list[str]:
    return sorted(DATASETS)


def get_profile(name: str) -> DatasetProfile:
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; options: {dataset_names()}") from None


def all_queries() -> list[tuple[str, str]]:
    """All (dataset, category) pairs of the evaluation — Table I's rows."""
    return [
        (profile.name, cat.category)
        for profile in DATASETS.values()
        for cat in profile.categories
    ]


def build_dataset(
    name: str,
    categories: Sequence[str] | None = None,
    seed: int = 0,
    scale: float = 1.0,
    with_boxes: bool = False,
) -> VideoRepository:
    """Materialize a profile into a ground-truth-bearing repository.

    ``scale`` shrinks the dataset proportionally (frames and instance
    counts scale together; durations do not), preserving per-instance
    probabilities up to the 1/scale factor and therefore the relative
    comparisons between methods.  For datasets chunked per clip (the BDD
    profiles) the *number of clips* scales and clip lengths stay fixed, so
    the duration-to-clip ratio — which drives the discriminator — is
    untouched; for span-chunked datasets the clip lengths scale.  Tests
    and benchmarks use ``scale`` ≈ 0.02–0.1 to stay fast; the CLI can run
    at 1.0.

    ``with_boxes=False`` (the default) builds interval-only trajectories
    for use with the oracle discriminator; pass True for the full IoU
    tracking pipeline (slower to generate for the biggest categories).
    """
    profile = get_profile(name)
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must lie in (0, 1]")
    wanted = list(categories) if categories is not None else profile.category_names()
    for cat in wanted:
        profile.category(cat)  # raises on typos before any work happens

    if profile.chunk_frames is None:
        keep = max(2, int(round(profile.num_clips * scale)))
        clip_frames = list(profile.clip_frames[:keep])
    else:
        clip_frames = [max(2, int(round(f * scale))) for f in profile.clip_frames]
    offsets = [0, *accumulate(clip_frames)]
    total = int(offsets[-1])
    clips = [
        VideoClip(
            clip_id=k,
            name=f"{name}-{k:04d}",
            start_frame=int(offsets[k]),
            num_frames=clip_frames[k],
            fps=profile.fps,
        )
        for k in range(len(clip_frames))
    ]

    instances: list[ObjectInstance] = []
    next_id = 0
    for cat in profile.categories:
        if cat.category not in wanted:
            continue
        count = max(4, int(round(cat.num_instances * scale)))
        # calibrated profiles keep their historical numpy streams so the
        # published per-seed ground truth is unchanged.
        backend.require_numpy("calibrated dataset synthesis")
        rng = backend.np.random.default_rng(_category_seed(seed, name, cat.category))
        placed = place_instances(
            count,
            total,
            rng,
            mean_duration=min(cat.mean_duration, total / 2),
            skew_fraction=cat.skew_fraction,
            category=cat.category,
            duration_sigma_log=cat.duration_sigma_log,
            start_id=next_id,
            with_boxes=with_boxes,
            boundaries=list(offsets),
        )
        instances.extend(placed)
        next_id += count

    return VideoRepository(clips, InstanceSet(instances), name=name)


def scaled_chunk_frames(name: str, scale: float) -> int | None:
    """The chunk size (frames) matching :func:`build_dataset` at ``scale``.

    Returns ``None`` for datasets chunked per clip (the BDD profiles).
    """
    profile = get_profile(name)
    if profile.chunk_frames is None:
        return None
    return max(2, int(round(profile.chunk_frames * scale)))


def _category_seed(seed: int, dataset: str, category: str) -> int:
    """Stable per-(dataset, category) substream so queries are reproducible
    independently of which other categories get built.

    Uses CRC32 rather than ``hash()`` because the latter is salted per
    process and would break run-to-run reproducibility.
    """
    mix = zlib.crc32(f"{dataset}/{category}".encode("utf-8")) & 0x7FFFFFFF
    return (seed * 1_000_003 + mix) & 0x7FFFFFFF
