"""Generative models for synthetic video workloads.

The paper evaluates ExSample both on simulations (§III-D, §IV) and on six
real video corpora (§V).  Neither the corpora nor a GPU detector are
available here, so this module provides the generative machinery that stands
in for them:

* :func:`lognormal_probabilities` — the heavy-tailed per-instance frame
  probabilities ``p_i`` used in the §III-D estimator validation.
* :func:`lognormal_durations` — skewed instance durations with a target
  mean, as in §IV-B ("LogNormal distribution with a target mean of 700
  frames ... shortest around 50 frames, longest around 5000").
* :func:`place_instances` — drops N instances into a frame range with
  controllable *instance skew*: positions are normal-distributed so that
  95% of instances fall inside a chosen central fraction of the data
  (§IV-B's "skewed toward 1/4, 1/32, 1/256 of dataset").
* :class:`OccupancySchedule` — a fast interval index answering "which
  instances are visible in frame f", the only question the simulated
  detector ever asks.
* :func:`first_second_appearance` — exact sampling of the first and second
  appearance times of every instance under independent-presence sampling,
  which reproduces the §III-D histograms (Fig. 2) without simulating every
  frame draw.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Sequence

from ..core import backend
from ..core.rng import DecisionRng
from .geometry import Box, Trajectory
from .instances import InstanceSet, ObjectInstance

__all__ = [
    "lognormal_probabilities",
    "lognormal_durations",
    "skew_fraction_to_std",
    "place_instances",
    "OccupancySchedule",
    "first_second_appearance",
    "FRAME_WIDTH",
    "FRAME_HEIGHT",
]

# Synthetic image plane dimensions (1080p, matching the paper's footage).
FRAME_WIDTH = 1920
FRAME_HEIGHT = 1080


def lognormal_probabilities(
    num_instances: int,
    rng,
    mean_p: float = 3e-3,
    sigma_log: float = 1.75,
    max_p: float = 0.5,
):
    """Heavy-tailed per-instance presence probabilities ``p_i``.

    Defaults reproduce the §III-D simulation scale: with 1000 instances the
    paper reports min ``p`` ≈ 3e-6, max ``p`` ≈ 0.15, µ_p ≈ 3e-3 and
    σ_p ≈ 8e-3.  The lognormal ``mu`` parameter is solved from the target
    mean so ``E[p] = mean_p`` regardless of ``sigma_log``.
    """
    if num_instances <= 0:
        raise ValueError("num_instances must be positive")
    if not 0.0 < mean_p < 1.0:
        raise ValueError("mean_p must lie in (0, 1)")
    mu = math.log(mean_p) - sigma_log**2 / 2.0
    if isinstance(rng, DecisionRng):
        return [
            min(max(rng.lognormal(mu, sigma_log), 1e-12), max_p)
            for _ in range(num_instances)
        ]
    np = backend.np
    p = rng.lognormal(mean=mu, sigma=sigma_log, size=num_instances)
    return np.clip(p, 1e-12, max_p)


def lognormal_durations(
    num_instances: int,
    mean_duration: float,
    rng,
    sigma_log: float = 0.8,
    min_duration: int = 1,
):
    """Instance durations (frames) with a target mean and lognormal skew.

    With the default shape the ratio max/min over ~2000 draws is roughly
    100x, matching §IV-B's 50..5000-frame range around a mean of 700.
    """
    if mean_duration <= 0:
        raise ValueError("mean_duration must be positive")
    mu = math.log(mean_duration) - sigma_log**2 / 2.0
    if isinstance(rng, DecisionRng):
        return [
            max(round(rng.lognormal(mu, sigma_log)), min_duration)
            for _ in range(num_instances)
        ]
    np = backend.np
    durations = rng.lognormal(mean=mu, sigma=sigma_log, size=num_instances)
    return np.maximum(np.round(durations).astype(np.int64), min_duration)


def skew_fraction_to_std(total_frames: int, skew_fraction: float | None) -> float | None:
    """Convert the paper's skew notion into a placement standard deviation.

    ``skew_fraction = 1/32`` means 95% of instances land in the central
    1/32 of the dataset; a two-sided 95% normal interval spans ±1.96σ, so
    σ = (fraction · F) / (2 · 1.96).  ``None`` requests uniform placement.
    """
    if skew_fraction is None:
        return None
    if not 0.0 < skew_fraction <= 1.0:
        raise ValueError("skew_fraction must lie in (0, 1]")
    return skew_fraction * total_frames / (2.0 * 1.959963984540054)


@dataclass(frozen=True)
class _PlacementSpec:
    """Internal record of how a batch of instances was placed."""

    total_frames: int
    skew_fraction: float | None
    mean_duration: float


def place_instances(
    num_instances: int,
    total_frames: int,
    rng,
    mean_duration: float = 700.0,
    skew_fraction: float | None = None,
    category: str = "object",
    duration_sigma_log: float = 0.8,
    start_id: int = 0,
    center_fraction: float = 0.5,
    with_boxes: bool = True,
    boundaries: Sequence[int] | None = None,
    frame_offset: int = 0,
) -> list[ObjectInstance]:
    """Place instances into ``[0, total_frames)`` with optional skew.

    Positions follow §IV-B: a normal distribution centered at
    ``center_fraction · total_frames`` whose standard deviation puts 95% of
    instances inside the central ``skew_fraction`` of the data; ``None``
    gives uniform placement ("no instance skew").  Durations are lognormal
    around ``mean_duration``.  Intervals are clipped to the dataset bounds.

    When ``with_boxes`` is false, trajectories degenerate to a unit
    stationary box — cheaper, and sufficient for interval-level simulations
    that use the oracle discriminator.

    ``boundaries``, when given, is a sorted sequence of segment edges
    (starting at 0 and ending at ``total_frames``).  Instances are clamped
    to the segment containing their midpoint: an object in one dashcam
    drive or one BDD clip cannot spill into the next file.

    ``frame_offset`` shifts every placed interval by a constant after
    placement (skew and boundaries are interpreted in the local
    ``[0, total_frames)`` coordinates first) — how live ingestion drops a
    freshly synthesized clip's ground truth at the repository's current
    horizon instead of at frame zero.
    """
    if num_instances <= 0:
        raise ValueError("num_instances must be positive")
    if total_frames <= 0:
        raise ValueError("total_frames must be positive")
    if frame_offset < 0:
        raise ValueError("frame_offset must be non-negative")

    durations = lognormal_durations(
        num_instances, mean_duration, rng, sigma_log=duration_sigma_log
    )
    std = skew_fraction_to_std(total_frames, skew_fraction)
    center = center_fraction * total_frames

    if isinstance(rng, DecisionRng):
        # scalar path, identical with and without numpy by construction:
        # same block draw order as the vectorized path (all durations,
        # then all midpoints, then per-instance trajectories).
        durations = [min(d, total_frames) for d in durations]
        if std is None:
            midpoints = [rng.uniform(0, total_frames) for _ in range(num_instances)]
        else:
            midpoints = [
                min(max(rng.normal(center, std), 0.0), float(total_frames - 1))
                for _ in range(num_instances)
            ]
        starts = [
            max(round(m - d / 2.0), 0) for m, d in zip(midpoints, durations)
        ]
        ends = [min(s + d, total_frames) for s, d in zip(starts, durations)]
        starts = [min(s, e - 1) for s, e in zip(starts, ends)]

        if boundaries is not None:
            edges = sorted(int(e) for e in boundaries)
            if edges[0] != 0 or edges[-1] != total_frames:
                raise ValueError("boundaries must start at 0 and end at total_frames")
            for k in range(num_instances):
                mid = (starts[k] + ends[k]) // 2
                seg = min(max(bisect.bisect_right(edges, mid) - 1, 0), len(edges) - 2)
                starts[k] = max(starts[k], edges[seg])
                ends[k] = min(ends[k], edges[seg + 1])
                starts[k] = min(starts[k], ends[k] - 1)

        if frame_offset:
            starts = [s + frame_offset for s in starts]
            ends = [e + frame_offset for e in ends]
    else:
        np = backend.np
        durations = np.minimum(durations, total_frames)
        if std is None:
            midpoints = rng.uniform(0, total_frames, size=num_instances)
        else:
            midpoints = rng.normal(loc=center, scale=std, size=num_instances)
            midpoints = np.clip(midpoints, 0, total_frames - 1)

        starts = np.clip(
            np.round(midpoints - durations / 2.0).astype(np.int64),
            0,
            None,
        )
        ends = np.minimum(starts + durations, total_frames)
        starts = np.minimum(starts, ends - 1)  # keep at least one frame

        if boundaries is not None:
            edges = np.asarray(sorted(boundaries), dtype=np.int64)
            if edges[0] != 0 or edges[-1] != total_frames:
                raise ValueError("boundaries must start at 0 and end at total_frames")
            mids = ((starts + ends) // 2).astype(np.int64)
            seg = np.clip(
                np.searchsorted(edges, mids, side="right") - 1, 0, len(edges) - 2
            )
            starts = np.maximum(starts, edges[seg])
            ends = np.minimum(ends, edges[seg + 1])
            starts = np.minimum(starts, ends - 1)

        if frame_offset:
            starts = starts + frame_offset
            ends = ends + frame_offset

    instances = []
    for k in range(num_instances):
        duration = int(ends[k] - starts[k])
        if with_boxes:
            trajectory = _random_trajectory(int(starts[k]), duration, rng)
        else:
            unit = Box(0.0, 0.0, 1.0, 1.0)
            trajectory = Trajectory.stationary(int(starts[k]), duration, unit)
        instances.append(
            ObjectInstance(
                instance_id=start_id + k,
                category=category,
                trajectory=trajectory,
            )
        )
    return instances


def _random_trajectory(start_frame: int, duration: int, rng) -> Trajectory:
    """A plausible straight-line object track inside the image plane.

    Box sizes are drawn from a wide range (distant pedestrian to close
    truck) and motion is a random linear drift; enough structure for the
    IoU discriminator to behave as it would on real detections.
    """
    w = float(rng.uniform(30, 400))
    h = float(rng.uniform(30, 300))
    cx = float(rng.uniform(w / 2, FRAME_WIDTH - w / 2))
    cy = float(rng.uniform(h / 2, FRAME_HEIGHT - h / 2))
    start_box = Box.from_center(cx, cy, w, h)
    # drift at most ~1/4 of the frame over the whole visibility window so
    # adjacent-frame IoU stays high, as it does for real video objects.
    dx = float(rng.uniform(-FRAME_WIDTH / 4, FRAME_WIDTH / 4))
    dy = float(rng.uniform(-FRAME_HEIGHT / 8, FRAME_HEIGHT / 8))
    end_box = start_box.translate(dx, dy).clip(FRAME_WIDTH, FRAME_HEIGHT)
    if end_box.area <= 0.0:
        end_box = start_box
    return Trajectory.linear(start_frame, duration, start_box, end_box)


class OccupancySchedule:
    """Time-bucketed interval index: which instances cover frame ``f``?

    This is the hot path of every simulation — the detector asks it once
    per sampled frame.  Instances register in every fixed-width time
    bucket their interval touches, so a query inspects only its own
    bucket's (short) candidate list: O(1) expected per lookup even at the
    16-million-frame scale of §IV's simulations, at the cost of
    ~(duration / bucket_width + 1) index entries per instance.
    """

    def __init__(
        self,
        instances: Sequence[ObjectInstance] | InstanceSet,
        bucket_frames: int | None = None,
    ):
        insts = sorted(instances, key=lambda i: (i.start_frame, i.instance_id))
        self._instances = insts
        if bucket_frames is None:
            span = max((i.end_frame for i in insts), default=1)
            # ~16k buckets balances entry count against candidate-list size
            bucket_frames = max(64, span // 16384)
        if bucket_frames <= 0:
            raise ValueError("bucket_frames must be positive")
        self._bucket_frames = bucket_frames
        self._buckets: dict[int, list[ObjectInstance]] = {}
        for inst in insts:
            first = inst.start_frame // bucket_frames
            last = (inst.end_frame - 1) // bucket_frames
            for bucket in range(first, last + 1):
                self._buckets.setdefault(bucket, []).append(inst)

    def __len__(self) -> int:
        return len(self._instances)

    def visible_ids(self, frame: int) -> list[int]:
        """Instance ids visible at ``frame``, in start order."""
        return [inst.instance_id for inst in self.visible(frame)]

    def visible(self, frame: int) -> list[ObjectInstance]:
        bucket = self._buckets.get(frame // self._bucket_frames)
        if not bucket:
            return []
        return [
            inst
            for inst in bucket
            if inst.start_frame <= frame < inst.end_frame
        ]

    def count_visible(self, frame: int) -> int:
        return len(self.visible(frame))


def first_second_appearance(p, rng):
    """First and second appearance sample-counts under independent presence.

    Under the §III-D model a random frame shows instance *i* independently
    with probability ``p_i``, so the sample index of its first appearance is
    Geometric(``p_i``) and the gap until the second is an independent
    Geometric(``p_i``).  Returning ``(t1, t2)`` lets callers reconstruct the
    exact ``N1(n)`` and ``R(n+1)`` trajectories in O(N) per run:

    * ``N1(n)   = #{i : t1_i <= n < t2_i}``
    * ``R(n+1)  = Σ_i p_i · [t1_i > n]``

    This is equivalent to (but ~1000x cheaper than) tossing every coin for
    every sampled frame as the paper's simulation describes.
    """
    backend.require_numpy("the closed-form appearance-time sampler")
    np = backend.np
    p = np.asarray(p, dtype=np.float64)
    if np.any((p <= 0) | (p > 1)):
        raise ValueError("probabilities must lie in (0, 1]")
    t1 = rng.geometric(p).astype(np.int64)
    gap = rng.geometric(p).astype(np.int64)
    return t1, t1 + gap
