"""User-facing command line: run queries against the dataset profiles.

This is the "downstream user" surface, distinct from the experiment CLI
(``python -m repro.experiments``) which regenerates the paper:

    python -m repro datasets
    python -m repro query dashcam bicycle --limit 20
    python -m repro query amsterdam boat --recall 0.5 --compare
    python -m repro query bdd1k motor --limit 25 --method random --scale 0.1
    python -m repro query dashcam bicycle --limit 20 --json

The serving subsystem (:mod:`repro.serving`) is driven through two more
subcommands.  ``submit`` appends a query to a state directory without
doing any work; ``serve`` loads the directory (sessions + shared
detection cache), runs the budget scheduler, and persists everything
back — or executes a scripted session transcript:

    python -m repro submit dashcam bicycle --limit 10 --state-dir ./state
    python -m repro submit dashcam bus --limit 10 --state-dir ./state
    python -m repro serve --state-dir ./state
    python -m repro serve --script session.txt --scale 0.05 --json

Execution-layer flags (see :mod:`repro.detection.execution`): both
``query`` and ``serve`` take ``--batch-size`` (frames the sampling
policy chooses per iteration, issued to the detector as one batched
call) and ``--workers`` / ``--detector-latency`` (service batches over
a worker pool, overlapping simulated per-call detector overhead).
Workers never change a query's answer; batch size changes only which
frames the policy picks, deterministically per seed:

    python -m repro query dashcam bicycle --limit 20 \
        --batch-size 8 --workers 8 --detector-latency 0.002
    python -m repro serve --state-dir ./state --batch-size 8 --workers 8
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .core.query import METHODS, DistinctObjectQuery, QueryEngine, QueryResult
from .detection.cache import DetectionCache, SqliteBackend
from .detection.costmodel import format_duration
from .experiments.persistence import to_jsonable
from .experiments.reporting import format_table
from .serving import (
    PriorityScheduler,
    QueryService,
    RoundRobinScheduler,
    SessionSnapshot,
    SessionSpec,
    SessionState,
    ThompsonSumScheduler,
    derive_session_seed,
)
from .serving import script as serving_script
from .serving import state as serving_state
from .video.datasets import (
    build_dataset,
    dataset_names,
    get_profile,
    scaled_chunk_frames,
)

__all__ = ["main"]

SCHEDULERS = ("round-robin", "priority", "thompson")


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        profile = get_profile(name)
        rows.append(
            [
                name,
                profile.total_frames,
                profile.num_clips,
                profile.num_chunks,
                ", ".join(profile.category_names()),
            ]
        )
    print(
        format_table(
            ["dataset", "frames", "clips", "chunks", "categories"],
            rows,
            title="available dataset profiles (synthetic, paper-calibrated):",
        )
    )
    return 0


# ------------------------------------------------------------------- query

def _result_payload(result: QueryResult) -> dict:
    """Machine-readable results/cost summary shared by ``query --json``
    and the serving CLI path."""
    return {
        "method": result.method,
        "results_returned": result.results_returned,
        "recall": result.recall,
        "frames_processed": result.frames_processed,
        "scan_frames_charged": result.scan_frames_charged,
        "detector_seconds": result.detector_seconds,
        "scan_seconds": result.scan_seconds,
        "total_seconds": result.total_seconds,
        "satisfied": result.satisfied,
        "distinct_instances_found": result.distinct_instances_found,
        "ground_truth_instances": result.ground_truth_instances,
    }


def _cmd_query(args: argparse.Namespace) -> int:
    profile = get_profile(args.dataset)
    if args.category not in profile.category_names():
        print(
            f"error: {args.dataset!r} has no category {args.category!r}; "
            f"options: {profile.category_names()}",
            file=sys.stderr,
        )
        return 2
    if (args.limit is None) == (args.recall is None):
        print("error: pass exactly one of --limit / --recall", file=sys.stderr)
        return 2
    error = _validate_execution_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    repo = build_dataset(
        args.dataset, categories=[args.category], scale=args.scale, seed=args.seed
    )
    engine = QueryEngine(
        repo,
        category=args.category,
        chunk_frames=scaled_chunk_frames(args.dataset, args.scale),
        batch_size=args.batch_size,
        workers=args.workers,
        detector_latency=args.detector_latency,
        seed=args.seed,
    )
    query = DistinctObjectQuery(
        args.category,
        limit=args.limit,
        recall_target=args.recall,
        max_samples=args.max_samples,
    )
    methods = list(METHODS) if args.compare else [args.method]
    results = [engine.execute(query, method=method) for method in methods]

    if args.json:
        payload = {
            "dataset": repo.name,
            "category": args.category,
            "scale": args.scale,
            "seed": args.seed,
            "limit": args.limit,
            "recall_target": args.recall,
            "max_samples": args.max_samples,
            "total_frames": repo.total_frames,
            "ground_truth_instances": len(repo.instances_of(args.category)),
            "results": [_result_payload(r) for r in results],
        }
        print(json.dumps(to_jsonable(payload), indent=2))
        return 0

    print(
        f"{repo.name}: {repo.total_frames:,} frames (scale {args.scale:g}), "
        f"{len(repo.instances_of(args.category))} distinct "
        f"{args.category!r} instances in ground truth"
    )
    rows = []
    for result in results:
        rows.append(
            [
                result.method,
                result.results_returned,
                f"{result.recall:.2f}",
                result.frames_processed,
                format_duration(result.detector_seconds),
                format_duration(result.scan_seconds) if result.scan_seconds else "-",
                "yes" if result.satisfied else "NO",
            ]
        )
    print(
        format_table(
            ["method", "results", "recall", "frames", "detect time", "scan time", "satisfied"],
            rows,
        )
    )
    return 0


# ----------------------------------------------------------------- serving

def _validate_execution_args(args: argparse.Namespace) -> str | None:
    """Shared validation of the execution-layer flags; None when valid."""
    if args.batch_size <= 0:
        return "--batch-size must be positive"
    if args.workers < 1:
        return "--workers must be at least 1"
    if args.detector_latency < 0.0:
        return "--detector-latency must be non-negative"
    return None


def _make_scheduler(name: str):
    if name == "round-robin":
        return RoundRobinScheduler()
    if name == "priority":
        return PriorityScheduler()
    if name == "thompson":
        return ThompsonSumScheduler()
    raise ValueError(f"unknown scheduler {name!r}; options: {SCHEDULERS}")


def _build_service(
    datasets: list[str],
    scale: float,
    seed: int,
    frames_per_tick: int,
    scheduler: str,
    cache: DetectionCache | None,
    batch_size: int = 1,
    workers: int = 1,
    detector_latency: float = 0.0,
) -> QueryService:
    repos = {
        name: build_dataset(name, categories=None, scale=scale, seed=seed)
        for name in datasets
    }
    chunk_frames = {name: scaled_chunk_frames(name, scale) for name in datasets}
    return QueryService(
        repos,
        cache=cache,
        scheduler=_make_scheduler(scheduler),
        frames_per_tick=frames_per_tick,
        chunk_frames=chunk_frames,
        batch_size=batch_size,
        workers=workers,
        detector_latency=detector_latency,
        seed=seed,
    )


def _serve_summary_payload(service: QueryService) -> dict:
    return {
        "ticks": service.ticks,
        "detector_calls": service.detector_calls,
        "cache": {
            "size": len(service.cache),
            "hits": service.cache.stats.hits,
            "misses": service.cache.stats.misses,
        },
        "sessions": [service.results(st.session_id) for st in service.statuses()],
    }


def _print_serve_summary(service: QueryService) -> None:
    print(serving_script.status_table(service))
    print(
        f"{service.detector_calls} detector calls total; cache: "
        f"{len(service.cache)} frames, {service.cache.stats.hits} hits"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    profile = get_profile(args.dataset)
    if args.category not in profile.category_names():
        print(
            f"error: {args.dataset!r} has no category {args.category!r}; "
            f"options: {profile.category_names()}",
            file=sys.stderr,
        )
        return 2
    try:
        SessionSpec(  # validate limit/max-samples/priority before queuing
            dataset=args.dataset,
            category=args.category,
            limit=args.limit,
            max_samples=args.max_samples,
            priority=args.priority,
            batch_size=args.batch_size,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    state_dir = pathlib.Path(args.state_dir)
    config = serving_state.load_or_init_config(state_dir, scale=args.scale, seed=args.seed)
    session_id = serving_state.next_session_id(state_dir)
    session_seed = args.session_seed
    if session_seed is None:
        session_seed = derive_session_seed(int(config.get("seed", 0)), int(session_id[1:]))
    snapshot = SessionSnapshot(
        session_id=session_id,
        dataset=args.dataset,
        category=args.category,
        limit=args.limit,
        max_samples=args.max_samples,
        seed=session_seed,
        priority=args.priority,
        warm_start=not args.no_warm_start,
        state=SessionState.ACTIVE.value,
        steps_taken=0,
        warm_start_frames=None,  # warm start runs when a server loads it
        batch_size=args.batch_size,
    )
    path = serving_state.write_snapshot(state_dir, snapshot)
    if args.json:
        print(json.dumps(to_jsonable(snapshot.to_dict()), indent=2))
    else:
        print(
            f"{snapshot.session_id}: queued {args.dataset}/{args.category} "
            f"(limit={args.limit}) -> {path}"
        )
    return 0


def _script_datasets(text: str) -> list[str]:
    """Dataset names a serve script will touch (pre-scan of submit lines)."""
    names = []
    for line in text.splitlines():
        tokens = line.split()
        if len(tokens) >= 2 and tokens[0] == "submit" and tokens[1] not in names:
            names.append(tokens[1])
    return names


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.script is None and args.state_dir is None:
        print("error: pass --script and/or --state-dir", file=sys.stderr)
        return 2
    if args.ticks is not None:
        if args.script is not None:
            print(
                "error: --ticks cannot be combined with --script "
                "(use a `tick N` line in the script)",
                file=sys.stderr,
            )
            return 2
        if args.ticks <= 0:
            print("error: --ticks must be positive", file=sys.stderr)
            return 2
    if args.frames_per_tick <= 0:
        print("error: --frames-per-tick must be positive", file=sys.stderr)
        return 2
    error = _validate_execution_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    cache = None
    scale, seed = args.scale, args.seed
    snapshots: list[SessionSnapshot] = []
    if args.state_dir is not None:
        state_dir = pathlib.Path(args.state_dir)
        config = serving_state.load_or_init_config(state_dir, scale=scale, seed=seed)
        scale, seed = float(config["scale"]), int(config["seed"])
        cache = DetectionCache(SqliteBackend(state_dir / serving_state.CACHE_FILENAME))
        snapshots = serving_state.load_snapshots(state_dir)

    script_text = None
    if args.script is not None:
        script_text = pathlib.Path(args.script).read_text(encoding="utf-8")

    # sealed (terminal) sessions never touch a repository, so only build
    # the datasets live sessions and script submissions will actually use
    datasets = [
        snap.dataset
        for snap in snapshots
        if not SessionState(snap.state).terminal
    ]
    if script_text is not None:
        datasets += _script_datasets(script_text)
    datasets = list(dict.fromkeys(datasets))  # dedupe, keep order
    if not snapshots and not datasets:
        print("error: nothing to serve (no sessions, empty script)", file=sys.stderr)
        return 2

    service = _build_service(
        datasets,
        scale,
        seed,
        args.frames_per_tick,
        args.scheduler,
        cache,
        batch_size=args.batch_size,
        workers=args.workers,
        detector_latency=args.detector_latency,
    )
    for snap in snapshots:
        service.restore(snap)

    if script_text is not None:
        try:
            log = serving_script.run_script(service, script_text)
        except serving_script.ScriptError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not args.json:
            for line in log:
                print(line)
    elif args.ticks is not None:
        for _ in range(args.ticks):
            service.tick()
    else:
        service.run_until_idle()

    if args.state_dir is not None:
        serving_state.save_sessions(service, pathlib.Path(args.state_dir))

    if args.json:
        print(json.dumps(to_jsonable(_serve_summary_payload(service)), indent=2))
    else:
        _print_serve_summary(service)
    service.close()  # worker pools + buffered on-disk cache writes
    return 0


# ------------------------------------------------------------------ parser

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distinct-object search over the calibrated dataset profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available dataset profiles")

    query = sub.add_parser("query", help="run one distinct-object query")
    query.add_argument("dataset", help="profile name (see `datasets`)")
    query.add_argument("category", help="object category to search for")
    stop = query.add_mutually_exclusive_group()
    stop.add_argument("--limit", type=int, help="stop after this many distinct results")
    stop.add_argument(
        "--recall", type=float, help="stop at this ground-truth recall (evaluation mode)"
    )
    query.add_argument(
        "--method", choices=METHODS, default="exsample", help="sampling method"
    )
    query.add_argument(
        "--compare", action="store_true", help="run every method on the same query"
    )
    query.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale in (0, 1]; 1.0 is the paper-size corpus",
    )
    query.add_argument("--max-samples", type=int, default=None, help="frame budget cap")
    query.add_argument(
        "--batch-size", type=int, default=1,
        help="frames chosen per sampling iteration (§III-F batched sampling)",
    )
    query.add_argument(
        "--workers", type=int, default=1,
        help="detector worker pool size; batches are serviced concurrently",
    )
    query.add_argument(
        "--detector-latency", type=float, default=0.0,
        help="simulated per-detector-call overhead in seconds (what --workers hides)",
    )
    query.add_argument(
        "--seed", type=int, default=0,
        help="seeds dataset synthesis and sampling; same seed => identical run",
    )
    query.add_argument(
        "--json", action="store_true",
        help="print a machine-readable results/cost summary instead of the table",
    )

    submit = sub.add_parser(
        "submit", help="queue a query in a serving state directory (no work done)"
    )
    submit.add_argument("dataset", help="profile name (see `datasets`)")
    submit.add_argument("category", help="object category to search for")
    submit.add_argument("--state-dir", required=True, help="serving state directory")
    submit.add_argument("--limit", type=int, default=None, help="distinct-result limit")
    submit.add_argument("--max-samples", type=int, default=None, help="frame budget cap")
    submit.add_argument("--priority", type=float, default=1.0, help="scheduling weight")
    submit.add_argument(
        "--batch-size", type=int, default=1,
        help="frames this session's engine chooses per iteration",
    )
    submit.add_argument(
        "--session-seed", type=int, default=None,
        help="per-session sampling seed (default: derived per submission)",
    )
    submit.add_argument(
        "--no-warm-start", action="store_true",
        help="skip replaying cached frames into the new session",
    )
    submit.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale; recorded in the state dir on first use",
    )
    submit.add_argument(
        "--seed", type=int, default=0,
        help="dataset synthesis seed; recorded in the state dir on first use",
    )
    submit.add_argument("--json", action="store_true", help="print the snapshot as JSON")

    serve = sub.add_parser(
        "serve", help="run the query service over a state directory or a script"
    )
    serve.add_argument("--state-dir", default=None, help="serving state directory")
    serve.add_argument(
        "--script", default=None,
        help="scripted session transcript (see repro.serving.script)",
    )
    serve.add_argument(
        "--ticks", type=int, default=None,
        help="scheduling rounds to run (default: until idle); state-dir mode only",
    )
    serve.add_argument(
        "--frames-per-tick", type=int, default=16,
        help="global detector budget per scheduling round",
    )
    serve.add_argument(
        "--batch-size", type=int, default=1,
        help="default engine batch for script-submitted sessions",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="detector worker pool; coalesced per-tick batches run concurrently",
    )
    serve.add_argument(
        "--detector-latency", type=float, default=0.0,
        help="simulated per-detector-call overhead in seconds",
    )
    serve.add_argument(
        "--scheduler", choices=SCHEDULERS, default="round-robin",
        help="budget allocation policy across sessions",
    )
    serve.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale (overridden by an existing state-dir config)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="dataset/service seed (overridden by an existing state-dir config)",
    )
    serve.add_argument(
        "--json", action="store_true", help="print a machine-readable summary"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "submit":
        return _cmd_submit(args)
    return _cmd_serve(args)
