"""User-facing command line: run queries against the dataset profiles.

This is the "downstream user" surface, distinct from the experiment CLI
(``python -m repro.experiments``) which regenerates the paper:

    python -m repro datasets
    python -m repro query dashcam bicycle --limit 20
    python -m repro query amsterdam boat --recall 0.5 --compare
    python -m repro query bdd1k motor --limit 25 --method random --scale 0.1
"""

from __future__ import annotations

import argparse
import sys

from .core.query import METHODS, DistinctObjectQuery, QueryEngine
from .detection.costmodel import format_duration
from .experiments.reporting import format_table
from .video.datasets import (
    build_dataset,
    dataset_names,
    get_profile,
    scaled_chunk_frames,
)

__all__ = ["main"]


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        profile = get_profile(name)
        rows.append(
            [
                name,
                profile.total_frames,
                profile.num_clips,
                profile.num_chunks,
                ", ".join(profile.category_names()),
            ]
        )
    print(
        format_table(
            ["dataset", "frames", "clips", "chunks", "categories"],
            rows,
            title="available dataset profiles (synthetic, paper-calibrated):",
        )
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    profile = get_profile(args.dataset)
    if args.category not in profile.category_names():
        print(
            f"error: {args.dataset!r} has no category {args.category!r}; "
            f"options: {profile.category_names()}",
            file=sys.stderr,
        )
        return 2
    if (args.limit is None) == (args.recall is None):
        print("error: pass exactly one of --limit / --recall", file=sys.stderr)
        return 2

    repo = build_dataset(
        args.dataset, categories=[args.category], scale=args.scale, seed=args.seed
    )
    engine = QueryEngine(
        repo,
        category=args.category,
        chunk_frames=scaled_chunk_frames(args.dataset, args.scale),
        seed=args.seed,
    )
    query = DistinctObjectQuery(
        args.category,
        limit=args.limit,
        recall_target=args.recall,
        max_samples=args.max_samples,
    )
    methods = list(METHODS) if args.compare else [args.method]

    print(
        f"{repo.name}: {repo.total_frames:,} frames (scale {args.scale:g}), "
        f"{len(repo.instances_of(args.category))} distinct "
        f"{args.category!r} instances in ground truth"
    )
    rows = []
    for method in methods:
        result = engine.execute(query, method=method)
        rows.append(
            [
                method,
                result.results_returned,
                f"{result.recall:.2f}",
                result.frames_processed,
                format_duration(result.detector_seconds),
                format_duration(result.scan_seconds) if result.scan_seconds else "-",
                "yes" if result.satisfied else "NO",
            ]
        )
    print(
        format_table(
            ["method", "results", "recall", "frames", "detect time", "scan time", "satisfied"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distinct-object search over the calibrated dataset profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available dataset profiles")

    query = sub.add_parser("query", help="run one distinct-object query")
    query.add_argument("dataset", help="profile name (see `datasets`)")
    query.add_argument("category", help="object category to search for")
    stop = query.add_mutually_exclusive_group()
    stop.add_argument("--limit", type=int, help="stop after this many distinct results")
    stop.add_argument(
        "--recall", type=float, help="stop at this ground-truth recall (evaluation mode)"
    )
    query.add_argument(
        "--method", choices=METHODS, default="exsample", help="sampling method"
    )
    query.add_argument(
        "--compare", action="store_true", help="run every method on the same query"
    )
    query.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale in (0, 1]; 1.0 is the paper-size corpus",
    )
    query.add_argument("--max-samples", type=int, default=None, help="frame budget cap")
    query.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets(args)
    return _cmd_query(args)
