"""User-facing command line: run queries against the dataset profiles.

This is the "downstream user" surface, distinct from the experiment CLI
(``python -m repro.experiments``) which regenerates the paper:

    python -m repro datasets
    python -m repro query dashcam bicycle --limit 20
    python -m repro query amsterdam boat --recall 0.5 --compare
    python -m repro query bdd1k motor --limit 25 --method random --scale 0.1
    python -m repro query dashcam bicycle --limit 20 --json

The serving subsystem (:mod:`repro.serving`) is driven through two more
subcommands.  ``submit`` appends a query to a state directory without
doing any work; ``serve`` loads the directory (sessions + shared
detection cache), runs the budget scheduler, and persists everything
back — or executes a scripted session transcript:

    python -m repro submit dashcam bicycle --limit 10 --state-dir ./state
    python -m repro submit dashcam bus --limit 10 --state-dir ./state
    python -m repro serve --state-dir ./state
    python -m repro serve --script session.txt --scale 0.05 --json

Execution-layer flags (see :mod:`repro.detection.execution`): both
``query`` and ``serve`` take ``--batch-size`` (frames the sampling
policy chooses per iteration, issued to the detector as one batched
call) and ``--workers`` / ``--detector-latency`` (service batches over
a worker pool, overlapping simulated per-call detector overhead).
Workers never change a query's answer; batch size changes only which
frames the policy picks, deterministically per seed:

    python -m repro query dashcam bicycle --limit 20 \
        --batch-size 8 --workers 8 --detector-latency 0.002
    python -m repro serve --state-dir ./state --batch-size 8 --workers 8

Shard-parallel execution (see :mod:`repro.distributed`): ``--shards N``
on ``query``/``serve``/``submit`` moves detection into N worker
processes, each owning a contiguous clip shard with its own detector and
local cache; the coordinator keeps all sampling state, so answers are
byte-identical to local execution.  ``submit --shards`` records the
count in the state directory so later ``serve`` runs shard by default:

    python -m repro query dashcam bicycle --limit 20 \
        --batch-size 8 --shards 4 --detector-latency 0.002
    python -m repro serve --state-dir ./state --shards 4

Live ingestion (see :mod:`repro.serving.ingest`): ``ingest`` appends
synthetic footage to a state directory's journal — to a paper profile
dataset or to a fresh *live* dataset that starts empty — and ``serve
--follow`` keeps polling that journal (and the sessions directory), so
running queries pick up clips, and even whole submissions, that arrive
while the server is up:

    python -m repro submit cam0 bus --limit 10 --follow --state-dir ./state
    python -m repro serve --state-dir ./state --follow &
    python -m repro ingest cam0 --state-dir ./state \
        --frames 2000 --category bus --instances 5

Deterministic simulation (see :mod:`repro.simulation`): ``simulate``
generates seed-driven randomized end-to-end scenarios — session mixes,
mid-query ingestion, crash-restarts, cache drops, detector errors, torn
journal writes — runs each against a real service, and checks every run
against a brute-force oracle plus the system invariants.  A failure
prints the scenario seed; re-running that seed reproduces the run
bit-for-bit:

    python -m repro simulate --scenarios 200 --profile quick
    python -m repro simulate --seed 1234 --scenarios 1 --json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import signal
import sys
import time

from . import telemetry
from .core.query import METHODS, DistinctObjectQuery, QueryEngine, QueryResult
from .detection.cache import DetectionCache, SqliteBackend, TieredBackend
from .detection.costmodel import format_duration
from .experiments.persistence import to_jsonable
from .experiments.reporting import format_table
from .serving import (
    IngestEntry,
    PriorityScheduler,
    QueryService,
    RoundRobinScheduler,
    SessionSnapshot,
    SessionSpec,
    SessionState,
    ThompsonSumScheduler,
    derive_session_seed,
)
from .serving import ingest as serving_ingest
from .serving import script as serving_script
from .serving import state as serving_state
from .server import AsyncQueryServer, ServerConfig, restore_state
from .video.datasets import (
    build_dataset,
    dataset_names,
    get_profile,
    scaled_chunk_frames,
)
from .video.repository import empty_repository

__all__ = ["main"]

SCHEDULERS = ("round-robin", "priority", "thompson")


def _cmd_datasets(_args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        profile = get_profile(name)
        rows.append(
            [
                name,
                profile.total_frames,
                profile.num_clips,
                profile.num_chunks,
                ", ".join(profile.category_names()),
            ]
        )
    print(
        format_table(
            ["dataset", "frames", "clips", "chunks", "categories"],
            rows,
            title="available dataset profiles (synthetic, paper-calibrated):",
        )
    )
    return 0


# ------------------------------------------------------------------- query

def _result_payload(result: QueryResult) -> dict:
    """Machine-readable results/cost summary shared by ``query --json``
    and the serving CLI path."""
    return {
        "method": result.method,
        "results_returned": result.results_returned,
        "recall": result.recall,
        "frames_processed": result.frames_processed,
        "scan_frames_charged": result.scan_frames_charged,
        "detector_seconds": result.detector_seconds,
        "scan_seconds": result.scan_seconds,
        "total_seconds": result.total_seconds,
        "satisfied": result.satisfied,
        "distinct_instances_found": result.distinct_instances_found,
        "ground_truth_instances": result.ground_truth_instances,
    }


def _cmd_query(args: argparse.Namespace) -> int:
    try:
        profile = get_profile(args.dataset)
    except KeyError:
        print(
            f"error: unknown dataset {args.dataset!r}; options: {dataset_names()}",
            file=sys.stderr,
        )
        return 2
    if args.category not in profile.category_names():
        print(
            f"error: {args.dataset!r} has no category {args.category!r}; "
            f"options: {profile.category_names()}",
            file=sys.stderr,
        )
        return 2
    if (args.limit is None) == (args.recall is None):
        print("error: pass exactly one of --limit / --recall", file=sys.stderr)
        return 2
    error = _validate_execution_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    repo = build_dataset(
        args.dataset, categories=[args.category], scale=args.scale, seed=args.seed
    )
    engine = QueryEngine(
        repo,
        category=args.category,
        chunk_frames=scaled_chunk_frames(args.dataset, args.scale),
        batch_size=args.batch_size,
        workers=args.workers,
        detector_latency=args.detector_latency,
        shards=args.shards or 1,
        seed=args.seed,
    )
    query = DistinctObjectQuery(
        args.category,
        limit=args.limit,
        recall_target=args.recall,
        max_samples=args.max_samples,
    )
    methods = list(METHODS) if args.compare else [args.method]
    results = [engine.execute(query, method=method) for method in methods]

    if args.json:
        payload = {
            "dataset": repo.name,
            "category": args.category,
            "scale": args.scale,
            "seed": args.seed,
            "limit": args.limit,
            "recall_target": args.recall,
            "max_samples": args.max_samples,
            "total_frames": repo.total_frames,
            "ground_truth_instances": len(repo.instances_of(args.category)),
            "results": [_result_payload(r) for r in results],
        }
        print(json.dumps(to_jsonable(payload), indent=2))
        return 0

    print(
        f"{repo.name}: {repo.total_frames:,} frames (scale {args.scale:g}), "
        f"{len(repo.instances_of(args.category))} distinct "
        f"{args.category!r} instances in ground truth"
    )
    rows = []
    for result in results:
        rows.append(
            [
                result.method,
                result.results_returned,
                f"{result.recall:.2f}",
                result.frames_processed,
                format_duration(result.detector_seconds),
                format_duration(result.scan_seconds) if result.scan_seconds else "-",
                "yes" if result.satisfied else "NO",
            ]
        )
    print(
        format_table(
            ["method", "results", "recall", "frames", "detect time", "scan time", "satisfied"],
            rows,
        )
    )
    return 0


# ----------------------------------------------------------------- serving

def _validate_execution_args(args: argparse.Namespace) -> str | None:
    """Shared validation of the execution-layer flags; None when valid.

    Every flag is checked here, before any dataset is built or state
    directory touched, so a bad value is one clean line on stderr and
    exit 2 — never a mid-run traceback.
    """
    if args.batch_size < 1:
        return "--batch-size must be at least 1"
    workers = getattr(args, "workers", 1)
    if workers < 1:
        return "--workers must be at least 1"
    if getattr(args, "detector_latency", 0.0) < 0.0:
        return "--detector-latency must be non-negative"
    shards = getattr(args, "shards", None)
    if shards is not None and shards < 1:
        return "--shards must be at least 1"
    if shards is not None and shards > 1 and workers > 1:
        return (
            "--shards and --workers are mutually exclusive: sharded "
            "execution runs its own worker processes"
        )
    budget = getattr(args, "cache_budget", None)
    if budget is not None and budget < 0:
        return "--cache-budget must be non-negative"
    return None


def _make_scheduler(name: str):
    if name == "round-robin":
        return RoundRobinScheduler()
    if name == "priority":
        return PriorityScheduler()
    if name == "thompson":
        return ThompsonSumScheduler()
    raise ValueError(f"unknown scheduler {name!r}; options: {SCHEDULERS}")


def _build_service(
    datasets: list[str],
    scale: float,
    seed: int,
    frames_per_tick: int,
    scheduler: str,
    cache: DetectionCache | None,
    batch_size: int = 1,
    workers: int = 1,
    detector_latency: float = 0.0,
    shards: int = 1,
    cache_budget: int | None = None,
) -> QueryService:
    # profile names materialize the calibrated synthetic dataset; any
    # other name is a *live* dataset: an empty repository whose footage
    # arrives exclusively through the ingestion journal
    profiles = set(dataset_names())
    repos = {
        name: (
            build_dataset(name, categories=None, scale=scale, seed=seed)
            if name in profiles
            else empty_repository(name)
        )
        for name in datasets
    }
    chunk_frames = {
        name: scaled_chunk_frames(name, scale)
        for name in datasets
        if name in profiles
    }
    return QueryService(
        repos,
        cache=cache,
        scheduler=_make_scheduler(scheduler),
        frames_per_tick=frames_per_tick,
        chunk_frames=chunk_frames,
        batch_size=batch_size,
        workers=workers,
        detector_latency=detector_latency,
        execution="sharded" if shards > 1 else "local",
        shards=shards,
        cache_budget=cache_budget,
        seed=seed,
    )


def _serve_summary_payload(service: QueryService) -> dict:
    return {
        "ticks": service.ticks,
        "detector_calls": service.detector_calls,
        "cache": {
            "size": len(service.cache),
            "hits": service.cache.stats.hits,
            "misses": service.cache.stats.misses,
        },
        "sessions": [service.results(st.session_id) for st in service.statuses()],
    }


def _print_serve_summary(service: QueryService) -> None:
    print(serving_script.status_table(service))
    print(
        f"{service.detector_calls} detector calls total; cache: "
        f"{len(service.cache)} frames, {service.cache.stats.hits} hits"
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    # profile datasets get a typo check against the calibrated category
    # list — unless the session follows a growing repository, where the
    # sought category may simply not have been recorded yet.  Non-profile
    # names are live datasets whose content only the journal defines.
    if args.dataset in dataset_names() and not args.follow:
        profile = get_profile(args.dataset)
        if args.category not in profile.category_names():
            print(
                f"error: {args.dataset!r} has no category {args.category!r}; "
                f"options: {profile.category_names()}",
                file=sys.stderr,
            )
            return 2
    error = _validate_execution_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        SessionSpec(  # validate limit/max-samples/priority before queuing
            dataset=args.dataset,
            category=args.category,
            limit=args.limit,
            max_samples=args.max_samples,
            priority=args.priority,
            batch_size=args.batch_size,
            follow=args.follow,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    state_dir = pathlib.Path(args.state_dir)
    config = serving_state.load_or_init_config(
        state_dir, scale=args.scale, seed=args.seed, shards=args.shards or 1,
        cache_budget=args.cache_budget,
    )
    session_id = serving_state.next_session_id(state_dir)
    session_seed = args.session_seed
    if session_seed is None:
        session_seed = derive_session_seed(int(config.get("seed", 0)), int(session_id[1:]))
    snapshot = SessionSnapshot(
        session_id=session_id,
        dataset=args.dataset,
        category=args.category,
        limit=args.limit,
        max_samples=args.max_samples,
        seed=session_seed,
        priority=args.priority,
        warm_start=not args.no_warm_start,
        state=SessionState.ACTIVE.value,
        steps_taken=0,
        warm_start_frames=None,  # warm start runs when a server loads it
        batch_size=args.batch_size,
        follow=args.follow,
    )
    path = serving_state.write_snapshot(state_dir, snapshot)
    if args.json:
        print(json.dumps(to_jsonable(snapshot.to_dict()), indent=2))
    else:
        print(
            f"{snapshot.session_id}: queued {args.dataset}/{args.category} "
            f"(limit={args.limit}) -> {path}"
        )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    if args.instances > 0 and args.category is None:
        print("error: --instances needs --category", file=sys.stderr)
        return 2
    try:
        entry = IngestEntry(
            dataset=args.dataset,
            frames=args.frames,
            clips=args.clips,
            category=args.category,
            instances=args.instances,
            mean_duration=args.mean_duration,
            skew_fraction=args.skew,
            fps=args.fps,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    state_dir = pathlib.Path(args.state_dir)
    # record the build config on first touch so every process synthesizes
    # identical base repositories (and journal content) thereafter
    serving_state.load_or_init_config(state_dir, scale=args.scale, seed=args.seed)
    try:
        index = serving_ingest.append_entry(state_dir, entry)
    except serving_ingest.JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = dict(entry.to_dict(), entry_index=index)
        print(json.dumps(to_jsonable(payload), indent=2))
    else:
        content = (
            f"{entry.instances} x {entry.category!r} per clip"
            if entry.instances
            else "no tracked objects"
        )
        print(
            f"ingest #{index}: {entry.clips} clip(s) x {entry.frames} frames "
            f"-> {entry.dataset} ({content}); a running `serve --follow` "
            "picks this up on its next poll"
        )
    return 0


def _script_datasets(text: str) -> list[str]:
    """Dataset names a serve script will touch (pre-scan of submit lines)."""
    names = []
    for line in text.splitlines():
        tokens = line.split()
        if len(tokens) >= 2 and tokens[0] == "submit" and tokens[1] not in names:
            names.append(tokens[1])
    return names


def _dataset_factory(scale: float, seed: int):
    """How the serve CLI materializes a dataset it has not seen yet:
    profile names build the calibrated synthetic dataset, anything else
    is a live dataset that starts empty.  Used both at startup and when
    the follow loop meets a new dataset mid-run, so the two paths cannot
    disagree about what a name means."""
    profiles = set(dataset_names())

    def build(name: str):
        if name in profiles:
            return build_dataset(name, categories=None, scale=scale, seed=seed)
        return empty_repository(name)

    return build


def _follow_serve(
    service: QueryService,
    state_dir: pathlib.Path,
    scale: float,
    seed: int,
    cursor: int,
    ticks_cap: int | None,
    poll_interval: float,
) -> int:
    """The ``serve --follow`` loop: poll the journal (new footage) and
    the sessions directory (new submissions), tick while there is work,
    persist whenever anything changed so observers see progress live.

    Exits 0 when every known session is terminal, after ``ticks_cap``
    loop rounds (each round is one poll, and one scheduling tick when
    any session had work — the bounded-exit lever for scripted use), or
    on Ctrl-C; exits 2 when a poll meets on-disk corruption (a malformed
    journal line or snapshot written by another process).  State is
    saved on every exit path — the follow loop loses at most the tick in
    flight, like any serve.
    """
    missing = _dataset_factory(scale, seed)
    rounds = 0
    while True:
        try:
            new_cursor = serving_ingest.apply_journal(
                service, state_dir, seed, cursor, on_missing_dataset=missing
            )
            restored = []
            for snap in serving_state.load_snapshots(state_dir):
                if snap.session_id not in service.sessions:
                    try:
                        service.repository(snap.dataset)
                    except KeyError:
                        service.register(snap.dataset, missing(snap.dataset))
                    restored.append(service.restore(snap))
            progressed = (
                service.tick() if service.schedulable_sessions() else {}
            )
            if progressed or restored or new_cursor != cursor:
                serving_state.save_sessions(service, state_dir)
                service.cache.flush()
            cursor = new_cursor
            sessions = service.sessions
            if sessions and all(s.state.terminal for s in sessions.values()):
                return 0
            rounds += 1
            if ticks_cap is not None and rounds >= ticks_cap:
                return 0
            if not progressed:
                time.sleep(poll_interval)
        except (serving_state.StateError, serving_ingest.JournalError) as exc:
            # the startup path reports corruption cleanly; a long-running
            # follow server meeting the same corruption mid-poll (written
            # by another process) must not die with a traceback either
            print(f"error: {exc}", file=sys.stderr)
            serving_state.save_sessions(service, state_dir)
            return 2
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            serving_state.save_sessions(service, state_dir)
            return 0


class _graceful_signals:
    """Route SIGTERM through the KeyboardInterrupt path for the scope.

    ``kill`` (what init systems and CI send) and Ctrl-C then take the
    same exit: save state, summarize, exit 0 — not a traceback with the
    last tick's progress lost.  The previous handler is restored on the
    way out; off the main thread (embedded use) signals cannot be
    installed, so the scope is a no-op there.
    """

    def __enter__(self) -> "_graceful_signals":
        def raise_interrupt(signum, frame):  # pragma: no cover - signal path
            raise KeyboardInterrupt

        try:
            self._previous = signal.signal(signal.SIGTERM, raise_interrupt)
        except ValueError:
            self._previous = None
        return self

    def __exit__(self, *exc_info) -> None:
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.script is None and args.state_dir is None:
        print("error: pass --script and/or --state-dir", file=sys.stderr)
        return 2
    if args.follow:
        if args.script is not None:
            print("error: --follow cannot be combined with --script", file=sys.stderr)
            return 2
        if args.state_dir is None:
            print("error: --follow needs --state-dir (the journal lives there)",
                  file=sys.stderr)
            return 2
        if args.poll_interval <= 0:
            print("error: --poll-interval must be positive", file=sys.stderr)
            return 2
    if args.ticks is not None:
        if args.script is not None:
            print(
                "error: --ticks cannot be combined with --script "
                "(use a `tick N` line in the script)",
                file=sys.stderr,
            )
            return 2
        if args.ticks <= 0:
            print("error: --ticks must be positive", file=sys.stderr)
            return 2
    if args.frames_per_tick <= 0:
        print("error: --frames-per-tick must be positive", file=sys.stderr)
        return 2
    error = _validate_execution_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    cache = None
    scale, seed = args.scale, args.seed
    # an explicit --shards wins; otherwise the state directory's recorded
    # default applies (so `submit --shards N` makes every later `serve`
    # shard without repeating the flag), else local execution; the same
    # sticky-default pattern carries --cache-budget
    shards = args.shards if args.shards is not None else 1
    cache_budget = args.cache_budget
    snapshots: list[SessionSnapshot] = []
    journal: list[IngestEntry] = []
    state_dir: pathlib.Path | None = None
    if args.state_dir is not None:
        state_dir = pathlib.Path(args.state_dir)
        config = serving_state.load_or_init_config(
            state_dir, scale=scale, seed=seed, shards=shards,
            cache_budget=cache_budget,
        )
        scale, seed = float(config["scale"]), int(config["seed"])
        if args.shards is None:
            shards = int(config.get("shards", 1) or 1)
            # the sticky default must pass the same exclusion the explicit
            # flag does — a sharded state dir plus --workers would
            # otherwise surface as a QueryService traceback, not exit 2
            if shards > 1 and args.workers > 1:
                print(
                    f"error: this state directory defaults to sharded "
                    f"execution (shards={shards}), which excludes "
                    "--workers; pass --shards 1 to force local execution",
                    file=sys.stderr,
                )
                return 2
        if cache_budget is None and config.get("cache_budget") is not None:
            cache_budget = int(config["cache_budget"])
        backend = SqliteBackend(state_dir / serving_state.CACHE_FILENAME)
        if cache_budget is not None:
            # a bounded memory tier over the persistent store: eviction
            # drops only the memory copy, sqlite keeps every detection
            backend = TieredBackend(backend, max_entries=cache_budget)
        cache = DetectionCache(backend)
        try:
            snapshots = serving_state.load_snapshots(state_dir)
            journal = serving_ingest.load_entries(state_dir)
        except (serving_state.StateError, serving_ingest.JournalError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    script_text = None
    if args.script is not None:
        script_text = pathlib.Path(args.script).read_text(encoding="utf-8")

    # sealed (terminal) sessions never touch a repository, so only build
    # the datasets live sessions, script submissions, and the ingestion
    # journal will actually use
    datasets = [
        snap.dataset
        for snap in snapshots
        if not SessionState(snap.state).terminal
    ]
    if script_text is not None:
        datasets += _script_datasets(script_text)
    datasets += [entry.dataset for entry in journal]
    datasets = list(dict.fromkeys(datasets))  # dedupe, keep order
    if not snapshots and not datasets and not args.follow:
        print("error: nothing to serve (no sessions, empty script)", file=sys.stderr)
        return 2

    service = _build_service(
        datasets,
        scale,
        seed,
        args.frames_per_tick,
        args.scheduler,
        cache,
        batch_size=args.batch_size,
        workers=args.workers,
        detector_latency=args.detector_latency,
        shards=shards,
        cache_budget=cache_budget,
    )
    # every exit path below — success, clean error, or an exception out
    # of the serving stack — must release worker pools, shard worker
    # processes, and the on-disk cache handle exactly once
    try:
        # the journal is replayed *before* restoring sessions: horizon-logged
        # snapshots replay against the clip sequence their live runs absorbed
        cursor = 0
        if state_dir is not None:
            cursor = serving_ingest.apply_journal(
                service, state_dir, seed, cursor,
                on_missing_dataset=_dataset_factory(scale, seed),
            )
        for snap in snapshots:
            service.restore(snap)

        # SIGTERM and Ctrl-C both drain gracefully on every serve mode:
        # stop after the tick in flight, fall through to the save below,
        # exit 0 (the follow loop handles the interrupt itself, same way)
        with _graceful_signals():
            try:
                if script_text is not None:
                    try:
                        log = serving_script.run_script(service, script_text)
                    except serving_script.ScriptError as exc:
                        print(f"error: {exc}", file=sys.stderr)
                        return 2
                    if not args.json:
                        for line in log:
                            print(line)
                elif args.follow:
                    code = _follow_serve(
                        service, state_dir, scale, seed, cursor, args.ticks,
                        args.poll_interval,
                    )
                    if code != 0:  # state already saved by the error path
                        return code
                elif args.ticks is not None:
                    for _ in range(args.ticks):
                        service.tick()
                else:
                    service.run_until_idle()
            except KeyboardInterrupt:
                pass  # drained: persist below and exit 0

        if state_dir is not None:
            serving_state.save_sessions(service, state_dir)

        if args.json:
            print(json.dumps(to_jsonable(_serve_summary_payload(service)), indent=2))
        else:
            _print_serve_summary(service)
        return 0
    finally:
        service.close()  # worker pools, shard workers, buffered cache writes


# ----------------------------------------------------------------- server

async def _run_server(server: AsyncQueryServer) -> None:
    """Start the listener, announce the bound address, install graceful
    signal handlers, and run until a drain completes."""
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_drain)
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # platforms/threads without signal support: drain op only
    host, port = await server.start()
    # the one line scripts and tests parse to find an ephemeral port
    print(f"repro server listening on {host}:{port}", flush=True)
    await server.run_until_drained()


def _cmd_server(args: argparse.Namespace) -> int:
    if args.frames_per_tick <= 0:
        print("error: --frames-per-tick must be positive", file=sys.stderr)
        return 2
    error = _validate_execution_args(args)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        server_config = ServerConfig(
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            tenant_quota=args.tenant_quota,
            retry_after=args.retry_after,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cache = None
    scale, seed = args.scale, args.seed
    shards = args.shards if args.shards is not None else 1
    cache_budget = args.cache_budget
    snapshots: list[SessionSnapshot] = []
    journal: list[IngestEntry] = []
    state_dir: pathlib.Path | None = None
    if args.state_dir is not None:
        state_dir = pathlib.Path(args.state_dir)
        config = serving_state.load_or_init_config(
            state_dir, scale=scale, seed=seed, shards=shards,
            cache_budget=cache_budget,
        )
        scale, seed = float(config["scale"]), int(config["seed"])
        if args.shards is None:
            shards = int(config.get("shards", 1) or 1)
        if cache_budget is None and config.get("cache_budget") is not None:
            cache_budget = int(config["cache_budget"])
        backend = SqliteBackend(state_dir / serving_state.CACHE_FILENAME)
        if cache_budget is not None:
            backend = TieredBackend(backend, max_entries=cache_budget)
        cache = DetectionCache(backend)
        try:
            snapshots = serving_state.load_snapshots(state_dir)
            journal = serving_ingest.load_entries(state_dir)
        except (serving_state.StateError, serving_ingest.JournalError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    datasets = [snap.dataset for snap in snapshots]
    datasets += [entry.dataset for entry in journal]
    if args.datasets:
        datasets += [
            name.strip() for name in args.datasets.split(",") if name.strip()
        ]
    datasets = list(dict.fromkeys(datasets))

    service = _build_service(
        datasets,
        scale,
        seed,
        args.frames_per_tick,
        args.scheduler,
        cache,
        batch_size=args.batch_size,
        workers=args.workers,
        detector_latency=args.detector_latency,
        shards=shards,
        cache_budget=cache_budget,
    )
    try:
        factory = _dataset_factory(scale, seed)
        cursor = 0
        if state_dir is not None:
            # journal before snapshots, same as serve: horizon-logged
            # sessions must replay against the footage their live runs saw
            try:
                cursor = restore_state(service, state_dir, seed, factory)
            except (serving_state.StateError, serving_ingest.JournalError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        server = AsyncQueryServer(
            service,
            server_config,
            state_dir=state_dir,
            base_seed=seed,
            journal_cursor=cursor,
            dataset_factory=factory,
        )
        asyncio.run(_run_server(server))
        # the drain already persisted snapshots + tenant ledger; what's
        # left is the human-facing close-out
        if args.json:
            print(json.dumps(to_jsonable(_serve_summary_payload(service)), indent=2))
        else:
            print("server drained")
            _print_serve_summary(service)
        return 0
    finally:
        service.close()


# --------------------------------------------------------------- simulate

def _cmd_simulate(args: argparse.Namespace) -> int:
    """Run randomized end-to-end scenarios against the oracle contract.

    Scenario ``k`` of a sweep uses seed ``args.seed + k``; a failure
    prints that seed and the exact command that replays it, so a red CI
    sweep is one copy-paste away from a local, bit-identical repro.
    """
    import dataclasses
    import tempfile

    from .simulation import PROFILES, generate_scenario, run_scenario
    from .simulation.invariants import InvariantViolation
    from .simulation.scenario import sharded_variant

    if args.seed < 0:
        print("error: --seed must be non-negative", file=sys.stderr)
        return 2
    if args.scenarios <= 0:
        print("error: --scenarios must be positive", file=sys.stderr)
        return 2
    if args.ticks is not None and args.ticks <= 0:
        print("error: --ticks must be positive", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards < 1:
        print("error: --shards must be at least 1", file=sys.stderr)
        return 2
    if args.profile not in PROFILES:
        print(
            f"error: unknown profile {args.profile!r}; options: "
            f"{sorted(PROFILES)}",
            file=sys.stderr,
        )
        return 2

    results: list[dict] = []
    failures: list[tuple[int, str]] = []
    with tempfile.TemporaryDirectory(prefix="repro-simulate-") as workdir:
        for k in range(args.scenarios):
            seed = args.seed + k
            try:
                scenario = generate_scenario(seed, args.profile)
                if args.ticks is not None:
                    scenario = dataclasses.replace(scenario, ticks=args.ticks)
                if args.shards is not None:
                    scenario = sharded_variant(scenario, args.shards)
                report = run_scenario(scenario, workdir=workdir)
            except Exception as exc:  # noqa: BLE001 — any crash inside a
                # scenario IS a finding; the sweep must record the seed
                # and keep exploring, not die with a traceback
                detail = (
                    str(exc)
                    if isinstance(exc, InvariantViolation)
                    else f"{type(exc).__name__}: {exc}"
                )
                failures.append((seed, detail))
                print(f"scenario seed {seed}: FAILED", file=sys.stderr)
                print(f"  {detail}", file=sys.stderr)
                print(
                    f"  reproduce: python -m repro simulate --seed {seed} "
                    f"--scenarios 1 --profile {args.profile}"
                    + (f" --ticks {args.ticks}" if args.ticks is not None else "")
                    + (f" --shards {args.shards}" if args.shards is not None else ""),
                    file=sys.stderr,
                )
                if args.fail_fast:
                    break
                continue
            summary = {
                "seed": seed,
                "profile": args.profile,
                "ticks_run": report.ticks_run,
                "sessions": len(report.sessions),
                "steps_committed": report.steps_committed,
                "detector_calls": report.detector_calls,
                "crashes": report.crashes,
                "detector_errors": report.detector_errors,
                "fault_kinds": scenario.fault_kinds(),
                "log_sha256": report.log_digest(),
                "metrics": dict(report.metrics),
            }
            if args.scenarios == 1:
                summary["event_log"] = report.event_log
            results.append(summary)
            if not args.json and not args.quiet:
                faults = ",".join(scenario.fault_kinds()) or "-"
                print(
                    f"scenario seed {seed}: ok "
                    f"({report.steps_committed} steps, "
                    f"{report.detector_calls} detector calls, "
                    f"faults: {faults}, log {report.log_digest()[:12]})"
                )

    if args.json:
        payload = {
            "profile": args.profile,
            "scenarios": args.scenarios,
            "passed": len(results),
            "failed": len(failures),
            "failing_seeds": [seed for seed, _ in failures],
            "results": results,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"{len(results)}/{len(results) + len(failures)} scenarios passed "
            f"({args.profile} profile)"
        )
    if args.failures_file is not None and failures:
        path = pathlib.Path(args.failures_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            for seed, message in failures:
                handle.write(f"{seed}\t{message}\n")
    if failures:
        seeds = " ".join(str(seed) for seed, _ in failures)
        print(f"FAILING SEEDS: {seeds}", file=sys.stderr)
        return 1
    return 0


# ------------------------------------------------------------------- stats

def _write_metrics_snapshot(path: str | pathlib.Path) -> None:
    """Dump the active pipeline's snapshot as stable JSON (sorted keys,
    trailing newline) — the ``--metrics-out`` sink.  Atomic, so a
    concurrent ``repro stats --watch`` poller never reads a torn file."""
    snapshot = telemetry.get().snapshot()
    telemetry.atomic_write_text(
        path, json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )


def _write_trace_events(path: str | pathlib.Path) -> None:
    """Dump the active tracer's span events as JSONL (one Chrome
    trace-event per line) — the ``--trace-out`` sink.  Traces still open
    (a crashed run, a --ticks cap mid-session) are finished first so
    every trace exports with a root span."""
    tracer = telemetry.get().tracer
    tracer.finish_all()
    lines = [
        json.dumps(event, sort_keys=True) for event in tracer.events()
    ]
    telemetry.atomic_write_text(path, "\n".join(lines) + "\n" if lines else "")


def _histogram_mean(body: dict) -> str:
    count = body.get("count", 0)
    return f"{body['sum'] / count:.6g}" if count else "-"


def _render_stats_snapshot(snapshot: dict, fmt: str) -> None:
    """Render one parsed snapshot in the requested format."""
    if fmt == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return
    if fmt == "prometheus":
        print(telemetry.render_prometheus(snapshot), end="")
        return
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    slow_ticks = snapshot.get("slow_ticks", [])
    slow_queries = snapshot.get("slow_queries", [])
    if counters:
        print(
            format_table(
                ["counter", "value"],
                [[key, counters[key]] for key in sorted(counters)],
            )
        )
    if gauges:
        print(
            format_table(
                ["gauge", "value"],
                [[key, gauges[key]] for key in sorted(gauges)],
            )
        )
    if histograms:
        print(
            format_table(
                ["histogram", "count", "sum", "mean"],
                [
                    [
                        key,
                        histograms[key].get("count", 0),
                        f"{histograms[key].get('sum', 0.0):.6g}",
                        _histogram_mean(histograms[key]),
                    ]
                    for key in sorted(histograms)
                ],
            )
        )
    if slow_ticks:
        print(f"slow ticks retained: {len(slow_ticks)}")
        for tick in slow_ticks:
            stages = " ".join(
                f"{child['name']}={child['duration_seconds']:.4f}s"
                for child in tick.get("children", [])
            )
            print(f"  tick {tick['duration_seconds']:.4f}s  {stages}".rstrip())
    if slow_queries:
        print(f"slow queries retained: {len(slow_queries)}")
        for query in slow_queries:
            print(
                f"  {query['session']}  trace={query['trace_id']}  "
                f"{query['duration_seconds']:.4f}s"
            )
    if not (counters or gauges or histograms or slow_ticks or slow_queries):
        print("(snapshot holds no series — was telemetry enabled?)")


def _clear_screen() -> None:
    if sys.stdout.isatty():
        sys.stdout.write("\x1b[2J\x1b[H")


def _cmd_stats(args: argparse.Namespace) -> int:
    """Render a ``--metrics-out`` snapshot: table, JSON, or Prometheus.
    With ``--watch SECONDS``, re-read and re-render the file on that
    cadence until interrupted — a poor man's dashboard over any snapshot
    another process keeps rewriting (atomically, so reads never tear)."""
    from .telemetry.schema import validation_errors

    path = pathlib.Path(args.metrics)

    def load() -> tuple[dict | None, str | None]:
        if not path.exists():
            return None, f"no metrics snapshot at {path}"
        try:
            return json.loads(path.read_text(encoding="utf-8")), None
        except ValueError as exc:
            return None, f"{path} is not valid JSON: {exc}"

    if args.watch is None:
        snapshot, problem = load()
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
        if args.validate:
            errors = validation_errors(snapshot)
            if errors:
                print(f"error: {path} fails schema validation:", file=sys.stderr)
                for line in errors:
                    print(f"  {line}", file=sys.stderr)
                return 1
        try:
            _render_stats_snapshot(snapshot, args.format)
        except BrokenPipeError:
            # the reader (`head`, a pager) went away mid-render: not an
            # error.  Point stdout at devnull so the interpreter's exit
            # flush does not raise the same thing again.
            sys.stdout = open(os.devnull, "w", encoding="utf-8")
        return 0
    if args.watch <= 0:
        print("error: --watch interval must be positive", file=sys.stderr)
        return 2
    # refresh loop: a missing/torn file is a transient, not an error —
    # keep polling; Ctrl-C and a closed pipe both end the watch cleanly
    try:
        while True:
            snapshot, problem = load()
            _clear_screen()
            if problem is not None:
                print(f"(waiting: {problem})")
            else:
                if args.validate:
                    for line in validation_errors(snapshot):
                        print(f"schema: {line}")
                _render_stats_snapshot(snapshot, args.format)
            print(f"-- every {args.watch:g}s; Ctrl-C exits")
            sys.stdout.flush()
            time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0
    except (BrokenPipeError, OSError):
        return 0


# ------------------------------------------------------------------- trace

def _cmd_trace(args: argparse.Namespace) -> int:
    """Package ``--trace-out`` event JSONL into a Chrome trace-event
    document (load it at https://ui.perfetto.dev or chrome://tracing),
    optionally running the bundled validator first."""
    from .telemetry.trace import trace_document, validate_trace

    path = pathlib.Path(args.events)
    if not path.exists():
        print(f"error: no trace events at {path}", file=sys.stderr)
        return 2
    events = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except ValueError as exc:
            print(
                f"error: {path}:{lineno} is not valid JSON: {exc}",
                file=sys.stderr,
            )
            return 2
    if args.validate:
        errors = validate_trace(events)
        if errors:
            print(f"error: {path} fails trace validation:", file=sys.stderr)
            for line in errors:
                print(f"  {line}", file=sys.stderr)
            return 1
    if args.out is not None:
        document = trace_document(events)
        telemetry.atomic_write_text(
            args.out, json.dumps(document, sort_keys=True) + "\n"
        )
    traces = {
        event.get("args", {}).get("trace_id")
        for event in events
        if isinstance(event.get("args"), dict)
    }
    names = sorted({str(event.get("name", "?")) for event in events})
    print(
        f"{len(events)} events across {len(traces)} traces"
        + (f"; spans: {', '.join(names)}" if names else "")
    )
    if args.out is not None:
        print(f"wrote {args.out}")
    return 0


# --------------------------------------------------------------------- top

_TOP_STATES = ("active", "paused", "completed", "exhausted", "cancelled")


def _render_top(body: dict, host: str, port: int) -> None:
    server = body.get("server", {})
    line = (
        f"repro top — {host}:{port}"
        f"  ticks={server.get('ticks', 0)}"
        f"  sessions={server.get('sessions_active', 0)}/{server.get('sessions', 0)}"
        f"  queue={server.get('queue_depth', 0)}"
        f"  rejected={server.get('rejected', 0)}"
    )
    if server.get("draining"):
        line += "  DRAINING"
    print(line)
    if not body.get("telemetry", False):
        print(
            "(server telemetry is off — start it with --metrics-out to "
            "get rates and per-shard detail)"
        )
    tenants = body.get("tenants", {})
    if tenants:
        rows = [
            [tenant, sum(states.values())]
            + [states.get(state, 0) for state in _TOP_STATES]
            for tenant, states in sorted(tenants.items())
        ]
        print(format_table(["tenant", "sessions", *_TOP_STATES], rows))
    shards = body.get("shards", {})
    if shards:
        rows = [
            [
                shard,
                int(stats.get("repro_worker_detector_frames_total", 0)),
                int(stats.get("repro_worker_detector_calls_total", 0)),
                f"{stats.get('hit_rate', 0.0):.1%}",
            ]
            for shard, stats in sorted(
                shards.items(), key=lambda kv: (len(kv[0]), kv[0])
            )
        ]
        print(format_table(
            ["shard", "frames", "detector calls", "cache hit rate"], rows
        ))
    history = body.get("history", {})
    moving = sorted(
        (
            (key, stats)
            for key, stats in history.get("counters", {}).items()
            if stats.get("rate", 0.0) > 0
        ),
        key=lambda kv: -kv[1]["rate"],
    )[:8]
    if moving:
        print(format_table(
            ["series (windowed)", "value", "delta", "per second"],
            [
                [key, stats["value"], stats["delta"], f"{stats['rate']:.2f}"]
                for key, stats in moving
            ],
        ))
    print(f"slow queries retained: {body.get('slow_queries', 0)}")


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over a running server's ``watch`` op."""
    from .serving.client import ServerError, ServingClient

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 2
    try:
        client = ServingClient(args.host, args.port, timeout=10.0)
    except OSError as exc:
        print(
            f"error: cannot connect to {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    rendered = 0
    try:
        while True:
            body = client.watch()
            _clear_screen()
            _render_top(body, args.host, args.port)
            sys.stdout.flush()
            rendered += 1
            if args.iterations is not None and rendered >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        return 0
    except ConnectionError:
        # the server drained under us — that is how a watch session ends
        print("(server closed the connection)")
        return 0
    except ServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


# ------------------------------------------------------------------ parser

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distinct-object search over the calibrated dataset profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list available dataset profiles")

    query = sub.add_parser("query", help="run one distinct-object query")
    query.add_argument("dataset", help="profile name (see `datasets`)")
    query.add_argument("category", help="object category to search for")
    stop = query.add_mutually_exclusive_group()
    stop.add_argument("--limit", type=int, help="stop after this many distinct results")
    stop.add_argument(
        "--recall", type=float, help="stop at this ground-truth recall (evaluation mode)"
    )
    query.add_argument(
        "--method", choices=METHODS, default="exsample", help="sampling method"
    )
    query.add_argument(
        "--compare", action="store_true", help="run every method on the same query"
    )
    query.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale in (0, 1]; 1.0 is the paper-size corpus",
    )
    query.add_argument("--max-samples", type=int, default=None, help="frame budget cap")
    query.add_argument(
        "--batch-size", type=int, default=1,
        help="frames chosen per sampling iteration (§III-F batched sampling)",
    )
    query.add_argument(
        "--workers", type=int, default=1,
        help="detector worker pool size; batches are serviced concurrently",
    )
    query.add_argument(
        "--detector-latency", type=float, default=0.0,
        help="simulated per-detector-call overhead in seconds (what --workers hides)",
    )
    query.add_argument(
        "--shards", type=int, default=None,
        help="shard-parallel execution: run detection across N worker "
             "processes, each owning a contiguous clip shard "
             "(answer-identical to local execution)",
    )
    query.add_argument(
        "--seed", type=int, default=0,
        help="seeds dataset synthesis and sampling; same seed => identical run",
    )
    query.add_argument(
        "--json", action="store_true",
        help="print a machine-readable results/cost summary instead of the table",
    )
    query.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="enable telemetry and write the metrics snapshot (stable JSON) "
             "to FILE on exit",
    )

    submit = sub.add_parser(
        "submit", help="queue a query in a serving state directory (no work done)"
    )
    submit.add_argument("dataset", help="profile name (see `datasets`)")
    submit.add_argument("category", help="object category to search for")
    submit.add_argument("--state-dir", required=True, help="serving state directory")
    submit.add_argument("--limit", type=int, default=None, help="distinct-result limit")
    submit.add_argument("--max-samples", type=int, default=None, help="frame budget cap")
    submit.add_argument("--priority", type=float, default=1.0, help="scheduling weight")
    submit.add_argument(
        "--batch-size", type=int, default=1,
        help="frames this session's engine chooses per iteration",
    )
    submit.add_argument(
        "--shards", type=int, default=None,
        help="record the state directory's default shard count on first "
             "touch; later `serve` runs shard detection across that many "
             "worker processes unless overridden",
    )
    submit.add_argument(
        "--cache-budget", type=int, default=None,
        help="record the state directory's default cache entry budget on "
             "first touch; later `serve` runs bound the memory tier (and "
             "shard workers' local caches) to that many cached frames",
    )
    submit.add_argument(
        "--session-seed", type=int, default=None,
        help="per-session sampling seed (default: derived per submission)",
    )
    submit.add_argument(
        "--no-warm-start", action="store_true",
        help="skip replaying cached frames into the new session",
    )
    submit.add_argument(
        "--follow", action="store_true",
        help="continuous query: survive draining the known footage and "
             "resume whenever ingestion appends more",
    )
    submit.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale; recorded in the state dir on first use",
    )
    submit.add_argument(
        "--seed", type=int, default=0,
        help="dataset synthesis seed; recorded in the state dir on first use",
    )
    submit.add_argument("--json", action="store_true", help="print the snapshot as JSON")
    submit.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="enable telemetry and write the metrics snapshot (stable JSON) "
             "to FILE on exit",
    )

    ingest = sub.add_parser(
        "ingest",
        help="append synthetic footage to a state directory's ingestion journal",
    )
    ingest.add_argument(
        "dataset",
        help="profile name to extend, or any new name for a live dataset "
             "that starts empty",
    )
    ingest.add_argument("--state-dir", required=True, help="serving state directory")
    ingest.add_argument(
        "--frames", type=int, required=True, help="frames per appended clip"
    )
    ingest.add_argument(
        "--clips", type=int, default=1, help="number of clips to append"
    )
    ingest.add_argument(
        "--category", default=None, help="object category the new footage contains"
    )
    ingest.add_argument(
        "--instances", type=int, default=0,
        help="instances of --category per appended clip",
    )
    ingest.add_argument(
        "--mean-duration", type=float, default=60.0,
        help="mean visible duration (frames) of the appended instances",
    )
    ingest.add_argument(
        "--skew", type=float, default=None,
        help="skew fraction for instance placement inside each clip "
             "(default: uniform)",
    )
    ingest.add_argument(
        "--fps", type=float, default=None,
        help="frame rate of the appended clips (default: the dataset's)",
    )
    ingest.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale; recorded in the state dir on first use",
    )
    ingest.add_argument(
        "--seed", type=int, default=0,
        help="dataset synthesis seed; recorded in the state dir on first use",
    )
    ingest.add_argument("--json", action="store_true", help="print the journal entry")

    serve = sub.add_parser(
        "serve", help="run the query service over a state directory or a script"
    )
    serve.add_argument("--state-dir", default=None, help="serving state directory")
    serve.add_argument(
        "--script", default=None,
        help="scripted session transcript (see repro.serving.script)",
    )
    serve.add_argument(
        "--ticks", type=int, default=None,
        help="scheduling rounds to run (default: until idle); state-dir mode "
             "only — with --follow, a cap on total rounds",
    )
    serve.add_argument(
        "--follow", action="store_true",
        help="keep polling the state directory for ingested footage and new "
             "submissions; exits when every session is terminal",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between idle polls in --follow mode",
    )
    serve.add_argument(
        "--frames-per-tick", type=int, default=16,
        help="global detector budget per scheduling round",
    )
    serve.add_argument(
        "--batch-size", type=int, default=1,
        help="default engine batch for script-submitted sessions",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="detector worker pool; coalesced per-tick batches run concurrently",
    )
    serve.add_argument(
        "--detector-latency", type=float, default=0.0,
        help="simulated per-detector-call overhead in seconds",
    )
    serve.add_argument(
        "--shards", type=int, default=None,
        help="worker processes for sharded detection (default: the state "
             "directory's recorded value, else 1 = local execution)",
    )
    serve.add_argument(
        "--cache-budget", type=int, default=None,
        help="bound the detection cache's memory tier to N cached frames "
             "(LRU over the on-disk store; also bounds shard workers' "
             "local caches; default: the state directory's recorded "
             "value, else unbounded)",
    )
    serve.add_argument(
        "--scheduler", choices=SCHEDULERS, default="round-robin",
        help="budget allocation policy across sessions",
    )
    serve.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale (overridden by an existing state-dir config)",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="dataset/service seed (overridden by an existing state-dir config)",
    )
    serve.add_argument(
        "--json", action="store_true", help="print a machine-readable summary"
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="enable telemetry and write the metrics snapshot (stable JSON) "
             "to FILE on exit",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="enable query tracing and write causal span events (Chrome "
             "trace-event JSONL; package with `repro trace`) to FILE on "
             "exit — never changes any session's decisions",
    )

    server = sub.add_parser(
        "server",
        help="network front door: asyncio NDJSON server over the query "
             "service (submit/status/results/ingest; SIGTERM drains)",
    )
    server.add_argument("--state-dir", default=None, help="serving state directory")
    server.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: loopback)"
    )
    server.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; the bound port is printed)",
    )
    server.add_argument(
        "--datasets", default=None, metavar="NAMES",
        help="comma-separated datasets to pre-register (profile names build "
             "the calibrated corpus, other names start empty); state-dir "
             "sessions and journal datasets register automatically",
    )
    server.add_argument(
        "--max-queue", type=int, default=64,
        help="bounded admission queue depth; beyond it submits/ingests get "
             "a queue-full reject with retry_after",
    )
    server.add_argument(
        "--tenant-quota", type=int, default=None,
        help="max concurrent non-terminal sessions per tenant "
             "(default: unlimited)",
    )
    server.add_argument(
        "--retry-after", type=float, default=0.05,
        help="retry hint (seconds) attached to backpressure rejections",
    )
    server.add_argument(
        "--frames-per-tick", type=int, default=16,
        help="global detector budget per scheduling round",
    )
    server.add_argument(
        "--batch-size", type=int, default=1,
        help="default engine batch for submitted sessions",
    )
    server.add_argument(
        "--workers", type=int, default=1,
        help="detector worker pool; coalesced per-tick batches run concurrently",
    )
    server.add_argument(
        "--detector-latency", type=float, default=0.0,
        help="simulated per-detector-call overhead in seconds",
    )
    server.add_argument(
        "--shards", type=int, default=None,
        help="worker processes for sharded detection (default: the state "
             "directory's recorded value, else 1 = local execution)",
    )
    server.add_argument(
        "--cache-budget", type=int, default=None,
        help="bound the detection cache's memory tier to N cached frames "
             "(LRU over the on-disk store; also bounds shard workers' "
             "local caches; default: the state directory's recorded "
             "value, else unbounded)",
    )
    server.add_argument(
        "--scheduler", choices=SCHEDULERS, default="round-robin",
        help="budget allocation policy across sessions",
    )
    server.add_argument(
        "--scale", type=float, default=0.05,
        help="dataset scale (overridden by an existing state-dir config)",
    )
    server.add_argument(
        "--seed", type=int, default=0,
        help="dataset/service seed (overridden by an existing state-dir config)",
    )
    server.add_argument(
        "--json", action="store_true",
        help="print a machine-readable summary after the drain",
    )
    server.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="enable telemetry and write the metrics snapshot (stable JSON) "
             "to FILE on exit",
    )
    server.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="enable query tracing and write causal span events (Chrome "
             "trace-event JSONL; package with `repro trace`) to FILE on "
             "exit — never changes any session's decisions",
    )

    simulate = sub.add_parser(
        "simulate",
        help="run randomized end-to-end scenarios with fault injection "
             "against the oracle parity contract",
    )
    simulate.add_argument(
        "--seed", type=int, default=0,
        help="base scenario seed; scenario k uses seed+k, and a printed "
             "failing seed replays bit-for-bit",
    )
    simulate.add_argument(
        "--scenarios", type=int, default=1, help="number of scenarios to run"
    )
    simulate.add_argument(
        "--ticks", type=int, default=None,
        help="override each scenario's scheduling-round count",
    )
    simulate.add_argument(
        "--profile", default="quick",
        help="scenario scale: quick (CI smoke), default, stress",
    )
    simulate.add_argument(
        "--shards", type=int, default=None,
        help="force every scenario onto the sharded execution backend "
             "with N worker processes; in-process detector faults become "
             "worker kills and every scenario gets at least one kill",
    )
    simulate.add_argument(
        "--fail-fast", action="store_true",
        help="stop the sweep at the first failing scenario",
    )
    simulate.add_argument(
        "--failures-file", default=None,
        help="write failing seeds (one per line) to this file — what the "
             "nightly sweep uploads as an artifact",
    )
    simulate.add_argument(
        "--quiet", action="store_true", help="suppress per-scenario lines"
    )
    simulate.add_argument(
        "--json", action="store_true",
        help="machine-readable sweep summary (with --scenarios 1, includes "
             "the full event log)",
    )
    simulate.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="enable telemetry and write the metrics snapshot (stable JSON) "
             "to FILE on exit",
    )

    stats = sub.add_parser(
        "stats", help="render a --metrics-out snapshot (table, JSON, Prometheus)"
    )
    stats.add_argument(
        "--metrics", required=True, metavar="FILE",
        help="metrics snapshot file written by --metrics-out",
    )
    stats.add_argument(
        "--format", choices=("table", "json", "prometheus"), default="table",
        help="output rendering (default: table)",
    )
    stats.add_argument(
        "--validate", action="store_true",
        help="check the snapshot against the bundled JSON schema first "
             "(exit 1 on violations)",
    )
    stats.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-read and re-render the snapshot file on this cadence "
             "until Ctrl-C (writers rewrite it atomically, so reads "
             "never tear)",
    )

    trace = sub.add_parser(
        "trace",
        help="validate --trace-out span events and package them into a "
             "Chrome trace-event file (Perfetto-loadable)",
    )
    trace.add_argument(
        "--events", required=True, metavar="FILE",
        help="span-event JSONL written by --trace-out",
    )
    trace.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the packaged Chrome trace document here",
    )
    trace.add_argument(
        "--validate", action="store_true",
        help="run the bundled trace validator first (exit 1 on violations)",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running `repro server` "
             "(per-tenant sessions, per-shard workers, windowed rates)",
    )
    top.add_argument("--host", default="127.0.0.1", help="server host")
    top.add_argument("--port", type=int, required=True, help="server port")
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default: 1)",
    )
    top.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    return parser


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "ingest":
        return _cmd_ingest(args)
    if args.command == "server":
        return _cmd_server(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    return _cmd_serve(args)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    if metrics_out is None and trace_out is None:
        return _dispatch(args)
    # --metrics-out / --trace-out: run the whole command under a live
    # pipeline and dump on every exit path (including errors — a failed
    # run's partial metrics/spans are exactly what an operator wants)
    telemetry.enable(trace=trace_out is not None)
    try:
        return _dispatch(args)
    finally:
        if trace_out is not None:
            _write_trace_events(trace_out)
        if metrics_out is not None:
            _write_metrics_snapshot(metrics_out)
        telemetry.disable()
