"""Numpy-optional backend switch for the decision path.

The sampler's hot path (belief arrays, Thompson draws, masked argmax) is
written once against a flat-array layout and executed through one of two
backends: numpy, when installed, as a bulk accelerator, or a pure-Python
fallback.  Both backends implement the *same* decision contract (see
:mod:`repro.core.rng`), so per-seed decision streams are bit-identical
with and without numpy.

Three distinct questions, three distinct surfaces:

* ``np`` — the numpy module if it is importable, else ``None``.  Modules
  that merely *tolerate* numpy's absence import ``np`` from here instead
  of ``import numpy as np`` and guard their accelerated branches.
* :func:`use_numpy` — "should the decision path vectorize with numpy
  right now?"  False when numpy is missing **or** when the fallback has
  been forced (``REPRO_FORCE_FALLBACK=1`` in the environment, or
  :func:`set_force_fallback` from a test), which is how parity tests run
  both backends inside one interpreter.
* :func:`require_numpy` — for the numpy-only corners (scipy-backed
  quantiles, the evaluation/experiment harness, calibrated datasets):
  raise a clear error instead of an ``AttributeError`` on ``None``.
"""

from __future__ import annotations

import os

__all__ = [
    "np",
    "HAVE_NUMPY",
    "use_numpy",
    "set_force_fallback",
    "require_numpy",
]

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np  # type: ignore[no-redef]
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: True when numpy is importable at all (force-fallback does not change it).
HAVE_NUMPY = np is not None

_force_fallback = os.environ.get("REPRO_FORCE_FALLBACK", "").strip() not in ("", "0")


def use_numpy() -> bool:
    """Whether decision-path code should take its numpy-vectorized branch.

    Checked at call time (not import time) so a test can flip the
    backend with :func:`set_force_fallback` and compare both decision
    streams in-process.  Objects that froze their layout at construction
    should be rebuilt after a flip.
    """
    return HAVE_NUMPY and not _force_fallback


def set_force_fallback(value: bool) -> bool:
    """Force (or release) the pure-Python backend; returns the old flag."""
    global _force_fallback
    old = _force_fallback
    _force_fallback = bool(value)
    return old


def require_numpy(feature: str) -> None:
    """Raise ``ModuleNotFoundError`` when numpy is not installed.

    ``feature`` names what the caller was trying to do, so the error
    points at the missing capability rather than an import site.
    """
    if np is None:
        raise ModuleNotFoundError(
            f"{feature} requires numpy, which is not installed; "
            "the sampling decision path itself runs without it"
        )
