"""Scan-free predictive scoring — the §VII future-work integration.

The paper's closing discussion (§VII) observes that the §III estimates
stay valid "even if sampling within a chunk is non-uniform but based on a
score", and that "a key to integrating these approaches would be a form
of predictive scoring of frames that avoids scanning".  This module
implements that integration:

* :class:`FrameScorer` — a cheap score evaluated **lazily per frame**;
  nothing is ever scanned up front, which is what separates this from the
  BlazeIt-style proxy pipeline whose full-dataset scoring pass Table I
  shows to be the bottleneck.
* :class:`ScoredOrder` — a drop-in within-chunk
  :class:`~repro.core.chunking.FrameOrder`: each draw samples ``k``
  uniform candidate frames (without replacement) and keeps the
  best-scoring one.  With ``k = 1`` it degenerates to the uniform order,
  so the §III estimator guarantees are preserved in the limit, and for
  any fixed ``k`` every not-yet-sampled frame keeps positive selection
  probability (no starvation).
* :class:`ProximityScorer` — a concrete scan-free predictor built from
  the query's own feedback: frames near previous *hits* score higher
  (results cluster in time — the same skew ExSample exploits across
  chunks, used here within chunks), while frames inside a hit's likely
  duration are penalized to avoid re-detecting the same object.
* :class:`OccupancyScorer` — an oracle scorer (true number of unseen
  instances visible in the frame); the upper bound a perfect predictor
  could reach, used by the scoring ablation.
"""

from __future__ import annotations

import math
from typing import Protocol

from ..video.instances import InstanceSet

__all__ = [
    "FrameScorer",
    "ConstantScorer",
    "ProximityScorer",
    "OccupancyScorer",
    "ScoredOrder",
    "scored_even_count_chunks",
]


class FrameScorer(Protocol):
    """A cheap, lazily evaluated per-frame relevance score.

    Implementations must be O(small) per call — the whole point is that
    no dataset-wide scoring pass ever happens.
    """

    def score(self, frame_index: int) -> float:  # pragma: no cover - protocol
        ...


class ConstantScorer:
    """Scores every frame identically; makes ScoredOrder behave uniformly."""

    def score(self, frame_index: int) -> float:
        return 0.0


class ProximityScorer:
    """Feedback-driven scorer: attraction to past hits, repulsion from
    their immediate neighbourhoods.

    ``record`` feeds back each processed frame.  A frame that yielded new
    results (``d0 > 0``) becomes a *hit*.  Candidate frames then score

        score(f) = sum_h [ exp(-|f-h| / attract) - repel_weight * exp(-|f-h| / repel) ]

    with ``repel`` sized to the expected object duration (frames within a
    hit's span probably show the *same* object — a duplicate, worth
    avoiding per §III-F) and ``attract`` sized to the clustering scale
    (events cluster in time, so a hit makes the wider neighbourhood more
    promising).  Frames that yielded nothing contribute a mild repulsion,
    marking their neighbourhood as explored.
    """

    def __init__(
        self,
        attract_bandwidth: float = 5000.0,
        repel_bandwidth: float = 500.0,
        repel_weight: float = 1.5,
        miss_weight: float = 0.25,
        max_memory: int = 512,
    ):
        if attract_bandwidth <= 0 or repel_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if repel_weight < 0 or miss_weight < 0:
            raise ValueError("weights must be non-negative")
        if max_memory <= 0:
            raise ValueError("max_memory must be positive")
        self._attract = attract_bandwidth
        self._repel = repel_bandwidth
        self._repel_weight = repel_weight
        self._miss_weight = miss_weight
        self._max_memory = max_memory
        self._hits: list[int] = []
        self._misses: list[int] = []

    @property
    def hits(self) -> list[int]:
        return list(self._hits)

    def record(self, frame_index: int, d0: int) -> None:
        """Feed back one processed frame and its new-result count."""
        if d0 < 0:
            raise ValueError("d0 must be non-negative")
        memory = self._hits if d0 > 0 else self._misses
        memory.append(frame_index)
        # bound per-score cost: drop the oldest memories first.
        if len(memory) > self._max_memory:
            del memory[: len(memory) - self._max_memory]

    def score(self, frame_index: int) -> float:
        total = 0.0
        for hit in self._hits:
            gap = abs(frame_index - hit)
            total += math.exp(-gap / self._attract)
            total -= self._repel_weight * math.exp(-gap / self._repel)
        for miss in self._misses:
            gap = abs(frame_index - miss)
            total -= self._miss_weight * math.exp(-gap / self._repel)
        return total


class OccupancyScorer:
    """Oracle scorer: how many *not-yet-found* instances are visible.

    Uses ground truth, so it is evaluation-only — the ceiling any
    predictive scorer could reach.  ``mark_found`` keeps it honest about
    duplicates: frames showing only already-found objects score zero.
    """

    def __init__(self, instances: InstanceSet):
        self._instances = list(instances)
        self._found: set[int] = set()

    def mark_found(self, instance_id: int) -> None:
        self._found.add(instance_id)

    def score(self, frame_index: int) -> float:
        count = 0
        for inst in self._instances:
            if inst.instance_id in self._found:
                continue
            if inst.visible_at(frame_index):
                count += 1
        return float(count)


class ScoredOrder:
    """Best-of-``k`` score-guided without-replacement order (§VII).

    Each draw: sample up to ``candidates`` distinct not-yet-drawn frames
    uniformly, score them lazily, emit the arg-max.  The other candidates
    are *returned to the pool* — only the emitted frame is consumed — so
    the order remains a complete without-replacement enumeration of the
    range, just biased toward high scores.
    """

    def __init__(
        self,
        start: int,
        end: int,
        rng,
        scorer: FrameScorer,
        candidates: int = 8,
    ):
        if end <= start:
            raise ValueError("empty frame range")
        if candidates <= 0:
            raise ValueError("candidates must be positive")
        self._start = start
        self._end = end
        self._rng = rng
        self._scorer = scorer
        self._candidates = candidates
        self._sampled: set[int] = set()

    @property
    def remaining(self) -> int:
        return (self._end - self._start) - len(self._sampled)

    def draw(self) -> int | None:
        free = self.remaining
        if free == 0:
            return None
        pool = self._draw_candidates(min(self._candidates, free))
        best = max(pool, key=self._scorer.score)
        self._sampled.add(best)
        return best

    def _draw_candidates(self, count: int) -> list[int]:
        """``count`` distinct not-yet-sampled frames, uniformly."""
        size = self._end - self._start
        if len(self._sampled) * 2 >= size:
            # dense regime: enumerate what's left and subsample exactly.
            left = [f for f in range(self._start, self._end) if f not in self._sampled]
            if len(left) <= count:
                return left
            picks = self._rng.choice(len(left), size=count, replace=False)
            return [left[int(i)] for i in picks]
        chosen: set[int] = set()
        while len(chosen) < count:
            frame = int(self._rng.integers(self._start, self._end))
            if frame not in self._sampled and frame not in chosen:
                chosen.add(frame)
        return list(chosen)


def scored_even_count_chunks(
    total_frames: int,
    num_chunks: int,
    rng,
    scorer: FrameScorer,
    candidates: int = 8,
) -> list:
    """Even chunks whose within-chunk order is score-guided.

    The chunk-level Thompson sampling is untouched; only line 7 of
    Algorithm 1 (``chunk.sample()``) changes, exactly as §VII suggests.
    All chunks share one ``scorer`` so feedback anywhere informs draws
    everywhere.
    """
    from .chunking import Chunk  # local import avoids a cycle

    if total_frames <= 0:
        raise ValueError("total_frames must be positive")
    if not 1 <= num_chunks <= total_frames:
        raise ValueError("num_chunks must lie in [1, total_frames]")
    # same edge computation as chunking.even_count_chunks (and bit-equal
    # to the historical np.linspace(...).round() it replaces).
    step = total_frames / num_chunks
    edges = [round(i * step) for i in range(num_chunks + 1)]
    edges[-1] = total_frames
    chunks = []
    for chunk_id in range(num_chunks):
        start, end = int(edges[chunk_id]), int(edges[chunk_id + 1])
        chunks.append(
            Chunk(chunk_id, start, end, ScoredOrder(start, end, rng, scorer, candidates))
        )
    return chunks
