"""Multi-query execution: concurrent searches sharing detector work.

The paper treats queries one at a time, but its cost argument (§I: GPU
time is the budget) makes sharing obvious: an object detector emits
boxes for *all* categories in a frame at the same cost as one, so two
concurrent searches ("find 20 buses" and "find 20 trucks") should share
every processed frame instead of sampling twice.

:class:`MultiQueryExSample` runs one Algorithm-1 loop for several
distinct-object queries at once:

* one detector call per sampled frame, fanned out to one discriminator
  and one per-chunk ``(N1, n)`` table **per query** — each query keeps
  its own Eq. III.1 estimates, so the theory of §III applies per query
  unchanged;
* chunk choice maximizes the *combined* expected yield: each active
  query contributes its own Thompson draw (Eq. III.4) and the sampler
  takes the arg-max of the sum — the natural multi-objective extension
  of line 6, since expectations of new results add across queries;
* a query that reaches its limit drops out of the sum, so remaining
  samples automatically re-focus on the still-active queries' hot
  chunks.

The win over running the queries back-to-back is bounded by the number
of queries (perfect overlap) and floored at ~1x (disjoint hot regions);
`benchmarks/test_bench_multiquery.py` measures it on profile data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from ..detection.detector import Detector
from ..detection.execution import batch_detect
from ..tracking.discriminator import Discriminator
from ..video.repository import VideoRepository
from . import backend
from .belief import DEFAULT_ALPHA0, DEFAULT_BETA0, GammaBelief
from .chunking import Chunk
from .estimator import ChunkStatistics
from .rng import DecisionRng
from .sampler import SamplingHistory

__all__ = ["QueryState", "MultiQueryExSample"]


def _masked_argmax_row(row, available):
    """First-max argmax of one score row over the available chunks.

    Matches ``np.argmax`` (first maximum wins) in both layouts, and is
    re-evaluated per batch slot because a pick can drain a chunk
    mid-batch.
    """
    np_mod = backend.np
    if np_mod is not None and isinstance(row, np_mod.ndarray):
        masked = np_mod.where(np_mod.asarray(available, dtype=bool), row, -np_mod.inf)
        return int(np_mod.argmax(masked))
    best = -1
    best_value = -math.inf
    for m, ok in enumerate(available):
        if ok and row[m] > best_value:
            best_value = row[m]
            best = m
    return best


@dataclass
class QueryState:
    """One query's live state inside the shared loop."""

    category: str
    limit: int
    discriminator: Discriminator
    stats: ChunkStatistics
    history: SamplingHistory

    @property
    def results_found(self) -> int:
        return self.discriminator.result_count()

    @property
    def satisfied(self) -> bool:
        return self.results_found >= self.limit


class MultiQueryExSample:
    """Concurrent distinct-object queries over one chunked repository.

    Parameters
    ----------
    chunks:
        Shared temporal partition (all queries see the same chunks).
    detector:
        Must return detections for **all** queried categories (build it
        with ``category=None`` so nothing is filtered at the source).
    limits:
        Mapping of category -> result limit, one entry per query.
    discriminator_factory:
        Builds a fresh discriminator per category.
    batch_size:
        Frames per iteration (§III-F batched sampling applied to the
        shared loop): each iteration takes ``batch_size`` arg-maxes of
        the summed Thompson draws, issues the whole batch to the
        detector as one call, and applies the per-query updates in batch
        order (they commute).  ``1`` reproduces the serial loop exactly.
    """

    def __init__(
        self,
        chunks: Sequence[Chunk],
        detector: Detector,
        limits: Mapping[str, int],
        discriminator_factory: Callable[[str], Discriminator],
        alpha0: float = DEFAULT_ALPHA0,
        beta0: float = DEFAULT_BETA0,
        rng=None,
        repository: VideoRepository | None = None,
        batch_size: int = 1,
    ):
        if not chunks:
            raise ValueError("need at least one chunk")
        if not limits:
            raise ValueError("need at least one query")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        for category, limit in limits.items():
            if limit <= 0:
                raise ValueError(f"limit for {category!r} must be positive")
        self._chunks = list(chunks)
        self._detector = detector
        self._belief = GammaBelief(alpha0, beta0)
        self._rng = rng if rng is not None else DecisionRng()
        self._repository = repository
        self._batch_size = batch_size
        self._queries = {
            category: QueryState(
                category=category,
                limit=limit,
                discriminator=discriminator_factory(category),
                stats=ChunkStatistics(len(self._chunks)),
                history=SamplingHistory(),
            )
            for category, limit in limits.items()
        }
        self._available = [not c.exhausted for c in self._chunks]
        self._frames_processed = 0

    # ------------------------------------------------------------ properties

    @property
    def queries(self) -> dict[str, QueryState]:
        return dict(self._queries)

    @property
    def frames_processed(self) -> int:
        return self._frames_processed

    @property
    def all_satisfied(self) -> bool:
        return all(q.satisfied for q in self._queries.values())

    @property
    def exhausted(self) -> bool:
        return not any(self._available)

    def active_categories(self) -> list[str]:
        return [c for c, q in self._queries.items() if not q.satisfied]

    # ------------------------------------------------------------- ingestion

    def extend(self, new_chunks: Sequence[Chunk]) -> None:
        """Absorb chunks for newly ingested footage into the shared loop.

        Mirrors :meth:`repro.core.sampler.ExSample.extend`: every query's
        per-chunk ``(N1, n)`` table gains zero-count arms, existing arms'
        statistics are untouched, and no RNG draws are consumed — so
        queries already in flight keep their sampling streams while the
        summed-Thompson choice starts exploring the new footage from the
        shared prior.
        """
        new_chunks = list(new_chunks)
        if not new_chunks:
            return
        for offset, chunk in enumerate(new_chunks):
            expected = len(self._chunks) + offset
            if chunk.chunk_id != expected:
                raise ValueError(
                    f"new chunk id {chunk.chunk_id} does not continue the "
                    f"sequence (expected {expected}); derive extensions with "
                    "IncrementalChunker"
                )
        self._chunks.extend(new_chunks)
        for query in self._queries.values():
            query.stats.extend(len(new_chunks))
        self._available.extend(not c.exhausted for c in new_chunks)

    # ------------------------------------------------------------- execution

    def step(self) -> int:
        """Process one iteration — one frame per still-active query, or a
        whole §III-F batch when ``batch_size > 1`` — and return the last
        sampled frame index (*the* frame index when ``batch_size == 1``)."""
        return self.step_batch()[-1]

    def step_batch(self, batch_size: int | None = None) -> list[int]:
        """One shared-loop iteration, returning every sampled frame index.

        Stage 1 takes ``batch_size`` arg-maxes (defaulting to the
        engine's own) of the summed per-query Thompson draws (the active
        set is frozen for the iteration); stage 2 issues the whole batch
        to the shared detector as one
        :func:`~repro.detection.execution.batch_detect` call; stage 3
        applies each query's (d0, d1) updates frame-by-frame in batch
        order — commutative per §III-F, so the answer matches sequential
        processing of the same frames.
        """
        if batch_size is None:
            batch_size = self._batch_size
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.exhausted:
            raise RuntimeError("all chunks are exhausted")
        active = [q for q in self._queries.values() if not q.satisfied]
        if not active:
            raise RuntimeError("all queries are satisfied")

        # combined Thompson score: sum of per-query draws per chunk, one
        # independent draw-set per batch slot.  The per-query matrices are
        # folded left-to-right in both layouts so the float sums (and thus
        # the arg-maxes) are bit-identical across backends.
        draws_per_query = [
            self._belief.sample(query.stats, self._rng, size=batch_size)
            for query in active
        ]
        np_mod = backend.np
        if np_mod is not None and all(
            isinstance(d, np_mod.ndarray) for d in draws_per_query
        ):
            combined = draws_per_query[0].copy()
            for draws in draws_per_query[1:]:
                combined = combined + draws
            rows = list(combined)
        else:
            rows = []
            for r in range(batch_size):
                acc = [0.0] * len(self._chunks)
                for draws in draws_per_query:
                    acc = [a + float(v) for a, v in zip(acc, draws[r])]
                rows.append(acc)
        pending: list[tuple[int, int]] = []  # (chunk, frame)
        for row in rows:
            if not any(self._available):
                break  # the batch drained every chunk
            chunk_idx = _masked_argmax_row(row, self._available)
            chunk = self._chunks[chunk_idx]
            frame = chunk.sample()
            if chunk.exhausted:
                self._available[chunk_idx] = False
            pending.append((chunk_idx, frame))

        frames = [frame for _, frame in pending]
        if self._repository is not None:
            for frame in frames:
                self._repository.read(frame)
        detections_per_frame = batch_detect(self._detector, frames)
        self._frames_processed += len(frames)

        for (chunk_idx, frame), detections in zip(pending, detections_per_frame):
            for query in active:
                relevant = [d for d in detections if d.category == query.category]
                outcome = query.discriminator.observe(frame, relevant)
                query.stats.record(chunk_idx, outcome.d0, outcome.d1)
                query.history.append(
                    frame, outcome.d0, query.discriminator.result_count()
                )
        return frames

    def steps(self, max_samples: int | None = None) -> Iterator[int]:
        """Incremental form of :meth:`run`: yields each sampled frame index.

        Stopping clauses are re-evaluated between iterations, so the
        shared loop can be suspended after any iteration and interleaved
        with other engines (the serving layer's scheduling seam).
        Exhausting the generator leaves the engine in exactly the state
        :meth:`run` would.  When ``max_samples`` binds mid-batch, the
        final iteration runs a smaller batch so the budget is honored
        exactly.
        """
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive")

        def generate() -> Iterator[int]:
            while not self.exhausted and not self.all_satisfied:
                if max_samples is not None and self._frames_processed >= max_samples:
                    return
                size = self._batch_size
                if max_samples is not None:
                    size = min(size, max_samples - self._frames_processed)
                yield from self.step_batch(batch_size=size)

        # validation above fires at call time; only the loop is deferred
        return generate()

    def run(self, max_samples: int | None = None) -> dict[str, QueryState]:
        """Run until every limit is met, the budget ends, or exhaustion.
        Thin wrapper over :meth:`steps`."""
        for _ in self.steps(max_samples=max_samples):
            pass
        return self.queries
