"""The decision-stream RNG contract shared by both backends.

Everything the serving and simulation stack *decides* — which chunk a
Thompson round picks, which frame a chunk order yields, what noise a
simulated detector adds — must be a pure function of seeds, never of
which backend happens to execute it.  Numpy's own ``Generator`` cannot
give that guarantee without numpy, so the decision path owns its
generator: :class:`DecisionRng`, a SplitMix64 stream with

* **scalar draws** (``random``, ``integers``, ``normal``, ``shuffle``,
  ``choice``, ...) implemented once in pure Python and therefore
  trivially identical with and without numpy, and
* **one bulk operation**, :meth:`DecisionRng.gamma_matrix` — the
  Thompson draw over all arms — with twin implementations: a
  numpy-vectorized fast path and a pure-Python fallback that execute the
  *same* counter-based draw schedule and the same IEEE-754 operation
  sequence, so their outputs are bit-identical.

How the bulk contract stays bit-identical
-----------------------------------------

``gamma_matrix`` advances the main stream exactly once, deriving an *op
key*.  All randomness inside the op comes from a counter-based substream
``u_j = mix64(op_key + (j+1)·GOLDEN)`` consumed in a fixed round-major
schedule: rejection rounds process the pending elements in ascending
element order, drawing one block of uniforms per round.  Both backends
walk the identical schedule, so draw ``j`` lands on the identical
element in both.

Floating-point equality then only needs every arithmetic step to be an
exactly-rounded IEEE-754 operation evaluated in the same order: ``+ - *
/ sqrt`` and ``frexp/ldexp`` already are (numpy's elementwise kernels do
not fuse), and the two transcendentals the gamma sampler needs — ``ln``
and ``exp`` — are provided here as fixed polynomial evaluations
(:func:`_ln`, :func:`_exp`) built only from those exact primitives,
mirrored operation for operation in the vector path.  ``math.log`` /
``np.log`` are deliberately *not* used: their results are
implementation-defined in the last ulp and may disagree.

Extending the sampler?  Read CONTRIBUTING.md ("The RNG contract") first:
the draw *schedule* is load-bearing, and any new consumption of
randomness must be added to both backends in the same order.
"""

from __future__ import annotations

import math
import random as _stdlib_random

from . import backend

__all__ = ["DecisionRng", "derive_key"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_SEED_INIT = 0x243F6A8885A308D3  # pi's fraction bits, a nothing-up-my-sleeve start
_TO_UNIT = 2.0**-53  # (u64 >> 11) + 0.5 scaled into the open interval (0, 1)

# atanh series 1/3, 1/5, ... 1/19 (highest order first, Horner-ready) for
# ln(m) = 2s·(1 + s²·P(s²)), s = (m-1)/(m+1), m in [sqrt(1/2), sqrt(2))
_ATANH_C = (
    0.05263157894736842,  # 1/19
    0.058823529411764705,  # 1/17
    0.06666666666666667,  # 1/15
    0.07692307692307693,  # 1/13
    0.09090909090909091,  # 1/11
    0.1111111111111111,  # 1/9
    0.14285714285714285,  # 1/7
    0.2,  # 1/5
    0.3333333333333333,  # 1/3
)
# exp Taylor coefficients 1/15! ... 1/2!, 1, 1 (highest order first)
_EXP_C = (
    7.647163731819816e-13,
    1.1470745597729725e-11,
    1.6059043836821613e-10,
    2.08767569878681e-09,
    2.505210838544172e-08,
    2.755731922398589e-07,
    2.7557319223985893e-06,
    2.48015873015873e-05,
    0.0001984126984126984,
    0.001388888888888889,
    0.008333333333333333,
    0.041666666666666664,
    0.16666666666666666,
    0.5,
    1.0,
    1.0,
)
_SQRT_HALF = 0.7071067811865476
_LN2_HI = 6.93147180369123816490e-01
_LN2_LO = 1.90821492927058770002e-10
_INV_LN2 = 1.4426950408889634


def _mix64(z: int) -> int:
    """SplitMix64 finalizer: avalanche a 64-bit word."""
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive_key(parts) -> int:
    """Hash a seed (int or tuple of ints) into a 64-bit stream key.

    Tuple components are absorbed in order and the length is absorbed
    last, so ``(a, b)`` and ``(a, b, 0)`` key different streams.  This is
    the seeding rule every decision-path module uses, mirroring the
    ``default_rng((seed, salt))`` idiom the codebase used before the
    backend split.
    """
    if not isinstance(parts, (tuple, list)):
        parts = (parts,)
    acc = _SEED_INIT
    for part in parts:
        acc = _mix64(acc ^ _mix64(int(part) & _MASK64))
    return _mix64(acc ^ len(parts))


def _ln(x: float) -> float:
    """Exactly-reproducible natural log (both backends, same bits).

    frexp range reduction to [sqrt(1/2), sqrt(2)), then the atanh series;
    accurate to a few ulp, which is far more than the samplers need —
    what matters is that :func:`_ln_vec` is the same operation sequence.
    """
    m, e = math.frexp(x)
    if m < _SQRT_HALF:
        m = m * 2.0
        e = e - 1
    s = (m - 1.0) / (m + 1.0)
    z = s * s
    p = _ATANH_C[0]
    for cst in _ATANH_C[1:]:
        p = p * z + cst
    lnm = 2.0 * s * (1.0 + z * p)
    ef = float(e)
    return ef * _LN2_HI + (ef * _LN2_LO + lnm)


def _exp(x: float) -> float:
    """Exactly-reproducible exponential (mirrors :func:`_exp_vec`)."""
    kf = float(math.floor(x * _INV_LN2 + 0.5))
    r = x - kf * _LN2_HI
    r = r - kf * _LN2_LO
    p = _EXP_C[0]
    for cst in _EXP_C[1:]:
        p = p * r + cst
    return math.ldexp(p, int(kf))


def _ln_vec(x):
    """Vector twin of :func:`_ln` — identical operation sequence."""
    np = backend.np
    m, e = np.frexp(x)
    low = m < _SQRT_HALF
    m = np.where(low, m * 2.0, m)
    e = e - low
    s = (m - 1.0) / (m + 1.0)
    z = s * s
    p = np.full_like(s, _ATANH_C[0])
    for cst in _ATANH_C[1:]:
        p = p * z + cst
    lnm = 2.0 * s * (1.0 + z * p)
    ef = e.astype(np.float64)
    return ef * _LN2_HI + (ef * _LN2_LO + lnm)


def _exp_vec(x):
    """Vector twin of :func:`_exp` — identical operation sequence."""
    np = backend.np
    kf = np.floor(x * _INV_LN2 + 0.5)
    r = x - kf * _LN2_HI
    r = r - kf * _LN2_LO
    p = np.full_like(r, _EXP_C[0])
    for cst in _EXP_C[1:]:
        p = p * r + cst
    return np.ldexp(p, kf.astype(np.int32))


class DecisionRng:
    """A backend-independent RNG for everything the system decides.

    Scalar methods mirror the slice of ``numpy.random.Generator``'s API
    the decision path uses, so chunk orders, schedulers, and detectors
    are written once and accept either generator; engine code dispatches
    on the type only where a bulk draw exists (``GammaBelief.sample``).
    """

    __slots__ = ("_state",)

    def __init__(self, seed=None):
        if seed is None:
            seed = _stdlib_random.getrandbits(64)
        self._state = derive_key(seed)

    # ------------------------------------------------------------ the stream

    def _next_u64(self) -> int:
        self._state = (self._state + _GOLDEN) & _MASK64
        return _mix64(self._state)

    @property
    def state(self) -> int:
        """The raw 64-bit stream position (diagnostics and tests only)."""
        return self._state

    # --------------------------------------------------------- scalar draws

    def random(self) -> float:
        """One double in the open interval (0, 1)."""
        return ((self._next_u64() >> 11) + 0.5) * _TO_UNIT

    def integers(self, low: int, high: int | None = None, size: int | None = None):
        """Uniform ints in ``[low, high)`` (or ``[0, low)``), numpy-style.

        Unbiased via Lemire's multiply-shift with rejection.
        """
        if high is None:
            low, high = 0, low
        low = int(low)
        high = int(high)
        n = high - low
        if n <= 0:
            raise ValueError(f"empty integer range [{low}, {high})")
        if size is not None:
            return [self.integers(low, high) for _ in range(size)]
        m = self._next_u64() * n
        frac = m & _MASK64
        if frac < n:
            threshold = ((1 << 64) - n) % n
            while frac < threshold:
                m = self._next_u64() * n
                frac = m & _MASK64
        return low + (m >> 64)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return low + (high - low) * self.random()

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Marsaglia polar draw (no cached spare: each call is self-contained)."""
        while True:
            v1 = 2.0 * self.random() - 1.0
            v2 = 2.0 * self.random() - 1.0
            s = v1 * v1 + v2 * v2
            if 0.0 < s < 1.0:
                return loc + scale * (v1 * math.sqrt(-2.0 * _ln(s) / s))

    def lognormal(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        return _exp(self.normal(mean, sigma))

    def poisson(self, lam: float = 1.0) -> int:
        """Knuth's product method — fine at the event rates detectors use."""
        if lam < 0.0:
            raise ValueError("lam must be non-negative")
        if lam == 0.0:
            return 0
        limit = _exp(-lam)
        k = 0
        prod = self.random()
        while prod > limit:
            k += 1
            prod *= self.random()
        return k

    def shuffle(self, seq) -> None:
        """In-place Fisher-Yates over any mutable sequence."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.integers(0, i + 1)
            seq[i], seq[j] = seq[j], seq[i]

    def choice(self, a, size: int | None = None, replace: bool = True, p=None):
        """numpy-style choice over ``range(a)`` or a sequence.

        Returns a single element when ``size`` is ``None``, else a list.
        ``p`` carries (unnormalized) weights; ``replace=False`` draws via
        a partial Fisher-Yates.
        """
        population = list(range(a)) if isinstance(a, int) else list(a)
        n = len(population)
        if n == 0:
            raise ValueError("cannot choose from an empty population")
        if p is not None:
            if replace is not True:
                raise ValueError("weighted choice without replacement is unsupported")
            weights = [float(w) for w in p]
            if len(weights) != n:
                raise ValueError("p must align with the population")
            total = 0.0
            cumulative = []
            for w in weights:
                if w < 0.0:
                    raise ValueError("weights must be non-negative")
                total += w
                cumulative.append(total)
            if total <= 0.0:
                raise ValueError("weights must sum to a positive value")

            def pick_one():
                r = self.random() * total
                for idx, edge in enumerate(cumulative):
                    if r < edge:
                        return population[idx]
                return population[n - 1]

            if size is None:
                return pick_one()
            return [pick_one() for _ in range(size)]
        if size is None:
            return population[self.integers(0, n)]
        if replace:
            return [population[self.integers(0, n)] for _ in range(size)]
        if size > n:
            raise ValueError("cannot draw more unique items than the population holds")
        pool = population[:]
        out = []
        for i in range(size):
            j = i + self.integers(0, n - i)
            pool[i], pool[j] = pool[j], pool[i]
            out.append(pool[i])
        return out

    # ------------------------------------------------------------ bulk draws

    def gamma_matrix(self, alphas, betas, rows: int):
        """The vectorized Thompson draw: a ``(rows, M)`` Gamma sample matrix.

        Entry ``(r, m)`` is a draw from Gamma(shape=alphas[m],
        scale=1/betas[m]) — one Thompson-sampling round per row.  The
        main stream advances exactly once (the op key) regardless of
        shape; all element randomness comes from the op's counter-based
        substream, consumed on the fixed round-major schedule described
        in the module docstring, so the numpy and pure-Python backends
        return bit-identical matrices.

        Returns an ``ndarray`` on the numpy backend, a list of row lists
        on the fallback.
        """
        if rows <= 0:
            raise ValueError("rows must be positive")
        a_cols = [float(a) for a in alphas]
        b_cols = [float(b) for b in betas]
        if len(a_cols) != len(b_cols):
            raise ValueError("alphas and betas must align")
        for a in a_cols:
            if a <= 0.0:
                raise ValueError("gamma shapes must be positive")
        for b in b_cols:
            if b <= 0.0:
                raise ValueError("gamma rates must be positive")
        op_key = self._next_u64()
        if not a_cols:
            empty = [[] for _ in range(rows)]
            if backend.use_numpy():
                return backend.np.zeros((rows, 0), dtype=backend.np.float64)
            return empty
        if backend.use_numpy():
            return _gamma_matrix_np(op_key, a_cols, b_cols, rows)
        return _gamma_matrix_py(op_key, a_cols, b_cols, rows)


# ---------------------------------------------------------------------------
# The twin gamma implementations.  Marsaglia-Tsang with the shape<1 boost;
# per-round draw blocks come from the op substream in ascending element
# order.  Keep every arithmetic expression textually parallel between the
# two: that parallelism IS the bit-identity proof obligation.
# ---------------------------------------------------------------------------


def _gamma_matrix_py(op_key: int, a_cols: list, b_cols: list, rows: int):
    M = len(a_cols)
    n = rows * M
    cursor = 0

    def take(count: int) -> list:
        nonlocal cursor
        out = []
        base = op_key
        for j in range(cursor, cursor + count):
            z = _mix64((base + ((j + 1) * _GOLDEN)) & _MASK64)
            out.append(((z >> 11) + 0.5) * _TO_UNIT)
        cursor += count
        return out

    boost_u = take(n)

    a_flat = [a_cols[e % M] for e in range(n)]
    d = [0.0] * n
    c = [0.0] * n
    for e in range(n):
        a_eff = a_flat[e] + 1.0 if a_flat[e] < 1.0 else a_flat[e]
        d[e] = a_eff - (1.0 / 3.0)
        c[e] = 1.0 / math.sqrt(9.0 * d[e])

    x = [0.0] * n
    val = [0.0] * n
    pending = list(range(n))
    while pending:
        need = pending[:]
        while need:
            u1s = take(len(need))
            u2s = take(len(need))
            still = []
            for i, e in enumerate(need):
                v1 = 2.0 * u1s[i] - 1.0
                v2 = 2.0 * u2s[i] - 1.0
                s = v1 * v1 + v2 * v2
                if 0.0 < s < 1.0:
                    x[e] = v1 * math.sqrt(-2.0 * _ln(s) / s)
                else:
                    still.append(e)
            need = still
        tpos = []
        vcube = {}
        for e in pending:
            t = 1.0 + c[e] * x[e]
            if t > 0.0:
                vcube[e] = t * t * t
                tpos.append(e)
        us = take(len(tpos))
        tpos_set = set(tpos)
        rejected = [e for e in pending if e not in tpos_set]
        for i, e in enumerate(tpos):
            u = us[i]
            v = vcube[e]
            x2 = x[e] * x[e]
            if u < 1.0 - 0.0331 * (x2 * x2):
                val[e] = d[e] * v
            elif _ln(u) < 0.5 * x2 + d[e] * (1.0 - v + _ln(v)):
                val[e] = d[e] * v
            else:
                rejected.append(e)
        pending = sorted(rejected)

    out = []
    for r in range(rows):
        row = []
        for m in range(M):
            e = r * M + m
            v = val[e]
            if a_flat[e] < 1.0:
                v = v * _exp(_ln(boost_u[e]) / a_flat[e])
            row.append(v / b_cols[m])
        out.append(row)
    return out


def _gamma_matrix_np(op_key: int, a_cols: list, b_cols: list, rows: int):
    np = backend.np
    M = len(a_cols)
    n = rows * M
    cursor = 0
    key = np.uint64(op_key)
    golden = np.uint64(_GOLDEN)

    def take(count: int):
        nonlocal cursor
        idx = np.arange(cursor + 1, cursor + count + 1, dtype=np.uint64)
        cursor += count
        z = key + idx * golden
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
        return ((z >> np.uint64(11)).astype(np.float64) + 0.5) * _TO_UNIT

    boost_u = take(n)

    a_flat = np.tile(np.asarray(a_cols, dtype=np.float64), rows)
    small = a_flat < 1.0
    a_eff = np.where(small, a_flat + 1.0, a_flat)
    d = a_eff - (1.0 / 3.0)
    c = 1.0 / np.sqrt(9.0 * d)

    x = np.zeros(n, dtype=np.float64)
    val = np.zeros(n, dtype=np.float64)
    pending = np.arange(n)
    while pending.size:
        need = pending
        while need.size:
            u1s = take(need.size)
            u2s = take(need.size)
            v1 = 2.0 * u1s - 1.0
            v2 = 2.0 * u2s - 1.0
            s = v1 * v1 + v2 * v2
            ok = (0.0 < s) & (s < 1.0)
            s_ok = s[ok]
            x[need[ok]] = v1[ok] * np.sqrt(-2.0 * _ln_vec(s_ok) / s_ok)
            need = need[~ok]
        t = 1.0 + c[pending] * x[pending]
        has_v = t > 0.0
        tpos = pending[has_v]
        tv = t[has_v]
        v = tv * tv * tv
        us = take(tpos.size)
        xe = x[tpos]
        x2 = xe * xe
        accept = us < 1.0 - 0.0331 * (x2 * x2)
        log_test = ~accept
        if log_test.any():
            lhs = _ln_vec(us[log_test])
            rhs = 0.5 * x2[log_test] + d[tpos[log_test]] * (
                1.0 - v[log_test] + _ln_vec(v[log_test])
            )
            accept = accept.copy()
            accept[log_test] = lhs < rhs
        good = tpos[accept]
        val[good] = d[good] * v[accept]
        pending = np.sort(np.concatenate([pending[~has_v], tpos[~accept]]))

    if small.any():
        boost = _exp_vec(_ln_vec(boost_u[small]) / a_flat[small])
        val[small] = val[small] * boost
    val = val / np.tile(np.asarray(b_cols, dtype=np.float64), rows)
    return val.reshape(rows, M)
