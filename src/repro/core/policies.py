"""Chunk-selection policies.

ExSample's decision rule is Thompson sampling over the Gamma belief
(§III-C).  The paper also tried Bayes-UCB and "did not observe different
results"; the greedy point-estimate rule is the strawman §III-B warns
about (it gets stuck on early lucky chunks), and the uniform policy turns
the sampler into the random baseline.  All of these share one interface so
the ablation benches can swap them freely.

A policy picks *batch_size* chunk indices given the current statistics.
Exhausted chunks are masked out by the caller via ``available``.

:class:`ThompsonSampling` — the decision-path default — runs on either
backend: the whole batch's draws come back as one ``(batch, M)`` matrix
(ndarray under numpy, row lists on the fallback) and the masked row-wise
argmax picks the first maximum in both, so chunk choices are
bit-identical across backends.  The ablation-only policies (Bayes-UCB,
greedy, epsilon-greedy, uniform) keep their numpy implementations and
are exercised only when numpy is installed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from . import backend
from .belief import DEFAULT_ALPHA0, DEFAULT_BETA0, GammaBelief
from .estimator import ChunkStatistics

__all__ = [
    "ChunkPolicy",
    "ThompsonSampling",
    "BayesUCB",
    "GreedyMean",
    "EpsilonGreedy",
    "UniformPolicy",
]


class ChunkPolicy(Protocol):
    """Maps (statistics, availability) to chunk choices."""

    def choose(
        self,
        stats: ChunkStatistics,
        rng,
        available,
        batch_size: int = 1,
    ):  # pragma: no cover - protocol
        """Return ``batch_size`` chunk indices (with repetition allowed)."""
        ...


def _validate(stats: ChunkStatistics, available, batch_size: int) -> None:
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if len(available) != stats.num_chunks:
        raise ValueError("available mask must have one entry per chunk")
    if backend.HAVE_NUMPY and isinstance(available, backend.np.ndarray):
        some = bool(available.any())
    else:
        some = any(bool(b) for b in available)
    if not some:
        raise ValueError("no chunks available to sample")


def masked_argmax_rows(draws, available):
    """Row-wise argmax of a draw matrix restricted to available chunks.

    Accepts the matrix in either backend layout (ndarray or list of row
    lists) and an availability mask in either layout.  Both paths take
    the *first* maximum, so for bit-identical draws the chosen indices
    are identical across backends.
    """
    np = backend.np
    if np is not None and isinstance(draws, np.ndarray):
        avail = np.asarray(available, dtype=bool)
        masked = np.where(avail[None, :], draws, -np.inf)
        return np.argmax(masked, axis=1)
    avail = [bool(b) for b in available]
    out = []
    for row in draws:
        best = -1
        best_value = -math.inf
        for m, ok in enumerate(avail):
            if ok:
                v = row[m]
                if v > best_value:
                    best_value = v
                    best = m
        out.append(best)
    return out


def _masked_argmax(scores, available):
    """Row-wise argmax for the numpy-only ablation policies."""
    np = backend.np
    masked = np.where(np.asarray(available, dtype=bool)[None, :], scores, -np.inf)
    return np.argmax(masked, axis=1)


@dataclass(frozen=True)
class ThompsonSampling:
    """Algorithm 1's rule: draw R_j ~ Gamma belief, pick the argmax.

    For a batch, ``batch_size`` independent draws yield ``batch_size``
    arg-maxes (§III-F): the batch's chunk distribution follows the
    posterior probability of each chunk being best.
    """

    alpha0: float = DEFAULT_ALPHA0
    beta0: float = DEFAULT_BETA0

    def choose(
        self,
        stats: ChunkStatistics,
        rng,
        available,
        batch_size: int = 1,
    ):
        _validate(stats, available, batch_size)
        belief = GammaBelief(self.alpha0, self.beta0)
        draws = belief.sample(stats, rng, size=batch_size)
        return masked_argmax_rows(draws, available)


@dataclass(frozen=True)
class BayesUCB:
    """Bayes-UCB [Kaufmann 2018]: use an upper belief quantile as the score.

    The quantile level rises as 1 - 1/t with the round count t, shrinking
    the exploration bonus over time.  §III-C reports results
    indistinguishable from Thompson sampling; the policy ablation bench
    verifies that here.
    """

    alpha0: float = DEFAULT_ALPHA0
    beta0: float = DEFAULT_BETA0
    quantile_floor: float = 0.5

    def choose(
        self,
        stats: ChunkStatistics,
        rng,
        available,
        batch_size: int = 1,
    ):
        backend.require_numpy("the Bayes-UCB policy")
        _validate(stats, available, batch_size)
        belief = GammaBelief(self.alpha0, self.beta0)
        t = stats.total_samples + 1
        q = max(self.quantile_floor, 1.0 - 1.0 / t)
        scores = belief.quantile(stats, q)
        # deterministic scores: break ties randomly so identical chunks
        # (e.g. at t=0) are not always resolved toward index zero.
        jitter = rng.uniform(0.0, 1e-12, size=(batch_size, stats.num_chunks))
        return _masked_argmax(scores[None, :] + jitter, available)


@dataclass(frozen=True)
class GreedyMean:
    """Pick the largest belief mean — the §III-B cautionary strawman.

    Without uncertainty it can lock onto a chunk with one early lucky
    result and starve better chunks; kept as an ablation baseline.
    """

    alpha0: float = DEFAULT_ALPHA0
    beta0: float = DEFAULT_BETA0

    def choose(
        self,
        stats: ChunkStatistics,
        rng,
        available,
        batch_size: int = 1,
    ):
        backend.require_numpy("the greedy-mean policy")
        _validate(stats, available, batch_size)
        np = backend.np
        belief = GammaBelief(self.alpha0, self.beta0)
        scores = np.asarray(belief.mean(stats), dtype=np.float64)
        jitter = rng.uniform(0.0, 1e-12, size=(batch_size, stats.num_chunks))
        return _masked_argmax(scores[None, :] + jitter, available)


@dataclass(frozen=True)
class EpsilonGreedy:
    """Classic epsilon-greedy: explore uniformly with probability epsilon.

    Not in the paper; included as a familiar bandit reference point for
    the policy ablation.
    """

    epsilon: float = 0.1
    alpha0: float = DEFAULT_ALPHA0
    beta0: float = DEFAULT_BETA0

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must lie in [0, 1]")

    def choose(
        self,
        stats: ChunkStatistics,
        rng,
        available,
        batch_size: int = 1,
    ):
        backend.require_numpy("the epsilon-greedy policy")
        _validate(stats, available, batch_size)
        np = backend.np
        belief = GammaBelief(self.alpha0, self.beta0)
        scores = np.asarray(belief.mean(stats), dtype=np.float64)
        jitter = rng.uniform(0.0, 1e-12, size=(batch_size, stats.num_chunks))
        greedy = _masked_argmax(scores[None, :] + jitter, available)
        explorable = np.flatnonzero(np.asarray(available, dtype=bool))
        random_pick = rng.choice(explorable, size=batch_size)
        explore = rng.random(batch_size) < self.epsilon
        return np.where(explore, random_pick, greedy)


@dataclass(frozen=True)
class UniformPolicy:
    """Ignore statistics: sample chunks uniformly (or by fixed weights).

    With ``weights`` proportional to chunk sizes this approximates the
    random baseline inside the ExSample machinery; the exact
    without-replacement uniform baseline lives in
    :mod:`repro.baselines.uniform`.  Fixed non-uniform ``weights`` turn the
    policy into the static optimal-allocation sampler of Eq. IV.1.
    """

    weights: tuple[float, ...] | None = None

    def choose(
        self,
        stats: ChunkStatistics,
        rng,
        available,
        batch_size: int = 1,
    ):
        backend.require_numpy("the uniform chunk policy")
        _validate(stats, available, batch_size)
        np = backend.np
        avail = np.asarray(available, dtype=bool)
        if self.weights is None:
            w = avail.astype(np.float64)
        else:
            w = np.asarray(self.weights, dtype=np.float64)
            if w.shape != (stats.num_chunks,):
                raise ValueError("weights must have one entry per chunk")
            w = np.where(avail, np.maximum(w, 0.0), 0.0)
        total = w.sum()
        if total <= 0:
            raise ValueError("no positive-weight chunks available")
        return rng.choice(stats.num_chunks, size=batch_size, p=w / total)
