"""Algorithm 1: the ExSample sampling loop (serial and batched).

The loop has three parts per iteration (§III-E):

1. **choice** — Thompson-sample the Gamma belief of every chunk, pick the
   arg-max chunk, draw a frame from that chunk's without-replacement order;
2. **io / decode / detect / match** — read the frame, run the detector,
   let the discriminator split detections into new objects (``d0``) and
   second sightings (``d1``);
3. **update** — ``N1[j*] += |d0| - |d1|``; ``n[j*] += 1``; store the new
   detections.

The batched variant (§III-F) draws ``B`` Thompson samples per chunk, takes
``B`` arg-maxes, processes the batch, and applies the commutative state
updates together — the GPU-batching optimization, reproduced faithfully so
its effect on result quality can be measured even though there is no GPU
here.

The iteration is split into two public halves — :meth:`ExSample.plan`
(stage 1: pure choice, no detections needed) and :meth:`ExSample.commit`
(stages 2+3, issuing the whole batch to the detector as one
:func:`~repro.detection.execution.batch_detect` call) — so execution
layers can batch, parallelize, and coalesce detector work across
concurrent queries without perturbing any sampling decision.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from ..detection.detector import Detection, Detector
from ..detection.execution import batch_detect
from ..tracking.discriminator import Discriminator
from ..video.repository import VideoRepository
from . import backend
from .chunking import Chunk
from .estimator import ChunkStatistics
from .policies import ChunkPolicy, ThompsonSampling
from .rng import DecisionRng

__all__ = [
    "StepRecord",
    "SamplingHistory",
    "ExSample",
    "process_frame",
    "process_frame_detailed",
]


@dataclass(frozen=True)
class StepRecord:
    """One processed frame: where it came from and what it yielded."""

    sample_index: int  # 1-based count of frames processed so far
    chunk: int
    frame_index: int
    d0: int
    d1: int
    results_total: int


class SamplingHistory:
    """Append-only log of a sampling run, shared by all methods.

    Stores the cumulative results curve (distinct results after each
    processed frame), which every figure in the evaluation is drawn from.
    """

    def __init__(self) -> None:
        self._d0: list[int] = []
        self._results: list[int] = []
        self._frames: list[int] = []

    def append(self, frame_index: int, d0: int, results_total: int) -> None:
        self._frames.append(frame_index)
        self._d0.append(d0)
        self._results.append(results_total)

    def __len__(self) -> int:
        return len(self._results)

    @property
    def samples(self):
        """1-based sample counts, aligned with :attr:`results`."""
        if backend.use_numpy():
            np = backend.np
            return np.arange(1, len(self._results) + 1, dtype=np.int64)
        return list(range(1, len(self._results) + 1))

    @property
    def results(self):
        """Cumulative distinct results after each sample."""
        if backend.use_numpy():
            return backend.np.asarray(self._results, dtype=backend.np.int64)
        return list(self._results)

    @property
    def frame_indices(self):
        if backend.use_numpy():
            return backend.np.asarray(self._frames, dtype=backend.np.int64)
        return list(self._frames)

    @property
    def d0_counts(self):
        """Per-step count of new results, aligned with :attr:`frame_indices`
        — the decision stream differential tests compare run-for-run."""
        if backend.use_numpy():
            return backend.np.asarray(self._d0, dtype=backend.np.int64)
        return list(self._d0)

    @property
    def new_result_frames(self):
        """Frames whose processing yielded at least one *new* result —
        the frames a user would actually open to inspect their results."""
        if backend.use_numpy():
            np = backend.np
            d0 = np.asarray(self._d0, dtype=np.int64)
            frames = np.asarray(self._frames, dtype=np.int64)
            return frames[d0 > 0]
        return [f for f, d in zip(self._frames, self._d0) if d > 0]

    def samples_to_reach(self, target_results: int) -> int | None:
        """Frames processed when ``target_results`` was first reached, or
        ``None`` if the run never got there."""
        if target_results <= 0:
            return 0
        for i, total in enumerate(self._results):
            if total >= target_results:
                return i + 1
        return None


def process_frame(
    frame_index: int,
    detector: Detector,
    discriminator: Discriminator,
    repository: VideoRepository | None = None,
) -> tuple[int, int]:
    """Stage 2 of Algorithm 1 for a single frame; returns (|d0|, |d1|)."""
    outcome = process_frame_detailed(frame_index, detector, discriminator, repository)
    return outcome.d0, outcome.d1


def process_frame_detailed(
    frame_index: int,
    detector: Detector,
    discriminator: Discriminator,
    repository: VideoRepository | None = None,
):
    """Stage 2 of Algorithm 1, returning the full
    :class:`~repro.tracking.discriminator.MatchOutcome` (the detection
    identities are needed for the cross-chunk N1 adjustment)."""
    if repository is not None:
        repository.read(frame_index)  # charge the random decode
    detections = detector.detect(frame_index)
    return discriminator.observe(frame_index, detections)


class ExSample:
    """The adaptive sampler of Algorithm 1.

    Parameters
    ----------
    chunks:
        The temporal partition (see :mod:`repro.core.chunking`); each chunk
        carries its own lazy without-replacement frame order.
    detector / discriminator:
        The black-box detector and the distinct-object discriminator.
    policy:
        Chunk-selection rule; defaults to Thompson sampling with the
        paper's prior (alpha0 = 0.1, beta0 = 1).
    batch_size:
        Frames per iteration (§III-F batched sampling); 1 reproduces the
        serial Algorithm 1 exactly.
    repository:
        Optional; when given, frame reads are charged to its decode stats.
    cross_chunk_adjustment:
        Footnote-1 / technical-report refinement of Eq. III.1: when a
        second sighting (``d1``) matches a result first found in a
        *different* chunk, decrement that chunk's N1 instead of the
        currently sampled one (the +1 being cancelled lives there).
        Requires detections carrying ``true_instance_id`` provenance;
        detections without it fall back to the sampled chunk.  Off by
        default — Algorithm 1 as printed.
    """

    def __init__(
        self,
        chunks: Sequence[Chunk],
        detector: Detector,
        discriminator: Discriminator,
        policy: ChunkPolicy | None = None,
        rng=None,
        batch_size: int = 1,
        repository: VideoRepository | None = None,
        cross_chunk_adjustment: bool = False,
    ):
        # an empty chunk list is legal: a live query admitted over a
        # not-yet-recorded repository starts exhausted and gains its
        # first arms through extend()
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._chunks = list(chunks)
        self._detector = detector
        self._discriminator = discriminator
        self._policy = policy if policy is not None else ThompsonSampling()
        self._rng = rng if rng is not None else DecisionRng()
        self._batch_size = batch_size
        self._repository = repository
        self._cross_chunk = cross_chunk_adjustment
        self._first_chunk: dict[int, int] = {}  # true_instance_id -> chunk
        self._stats = ChunkStatistics(len(self._chunks))
        self._history = SamplingHistory()
        self._available = [not c.exhausted for c in self._chunks]
        #: wall-clock split of the last :meth:`plan` call — ``draw`` is
        #: the Thompson belief sampling (policy choice), ``score`` the
        #: frame selection that turns chunk picks into concrete frames.
        #: Surfaced by the serving layer as the plan-stage telemetry
        #: split; reading it never affects decisions.
        self.last_plan_timings: dict[str, float] = {"draw": 0.0, "score": 0.0}

    # ------------------------------------------------------------ properties

    @property
    def stats(self) -> ChunkStatistics:
        return self._stats

    @property
    def discriminator(self) -> Discriminator:
        return self._discriminator

    @property
    def chunks(self) -> list[Chunk]:
        return list(self._chunks)

    @property
    def history(self) -> SamplingHistory:
        return self._history

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def results_found(self) -> int:
        return self._discriminator.result_count()

    @property
    def frames_processed(self) -> int:
        return len(self._history)

    @property
    def exhausted(self) -> bool:
        """True once every chunk's frame order is fully consumed."""
        return not any(self._available)

    @property
    def chunk_availability(self):
        """Per-chunk mask of chunks that still have frames to sample.

        Exposed for schedulers that score a whole sampler (e.g. the
        serving layer's Thompson-sum budget allocation) and must ignore
        drained chunks exactly as the policies do.  A bool ndarray under
        numpy, a list of bools on the fallback.
        """
        if backend.use_numpy():
            return backend.np.asarray(self._available, dtype=bool)
        return list(self._available)

    # ------------------------------------------------------------- ingestion

    def extend(self, new_chunks: Sequence[Chunk]) -> None:
        """Absorb chunks for newly ingested footage mid-query.

        The new arms join with zero counts — every policy's belief over
        them is exactly the prior, as it would have been had they existed
        at construction — and nothing about the existing arms moves: no
        statistics change, no RNG draws are consumed (frame orders are
        lazy), no history entries appear.  A query extended this way and
        then run to completion therefore matches a query built over the
        fully materialized repository up-front, provided the chunk layout
        matches (see :class:`~repro.core.chunking.IncrementalChunker`).
        """
        new_chunks = list(new_chunks)
        if not new_chunks:
            return
        for offset, chunk in enumerate(new_chunks):
            expected = len(self._chunks) + offset
            if chunk.chunk_id != expected:
                raise ValueError(
                    f"new chunk id {chunk.chunk_id} does not continue the "
                    f"sequence (expected {expected}); derive extensions with "
                    "IncrementalChunker"
                )
        self._chunks.extend(new_chunks)
        self._stats.extend(len(new_chunks))
        self._available.extend(not c.exhausted for c in new_chunks)

    # ------------------------------------------------------------- execution

    def step(self) -> list[StepRecord]:
        """Run one iteration (one frame, or one batch when batch_size > 1).

        Equivalent to ``commit(plan())`` — the two-phase form the serving
        layer uses to coalesce detector work across sessions.
        """
        return self.commit(self.plan())

    def plan(self, batch_size: int | None = None) -> list[tuple[int, int]]:
        """Stage 1 of Algorithm 1 for one iteration: choose the batch.

        Returns the ``(chunk_index, frame_index)`` pairs to process —
        ``batch_size`` of them (defaulting to the sampler's own), fewer
        only when the chunks drain.  The choice consumes the sampler's
        RNG and the chunks' without-replacement orders but needs no
        detections, which is what lets a scheduler gather many sessions'
        plans into one batched detector call before any of them commits.
        """
        if self.exhausted:
            raise RuntimeError("all chunks are exhausted")
        if batch_size is None:
            batch_size = self._batch_size
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")

        draw_start = time.perf_counter()
        picks = self._policy.choose(
            self._stats, self._rng, self._available, batch_size=batch_size
        )
        score_start = time.perf_counter()
        draw_seconds = score_start - draw_start
        redraw_seconds = 0.0
        pending: list[tuple[int, int]] = []  # (chunk, frame)
        for pick in picks:
            chunk_idx = int(pick)
            if not self._available[chunk_idx]:
                # an earlier pick in this batch drained the chunk; re-draw.
                if not any(self._available):
                    break
                redraw_start = time.perf_counter()
                chunk_idx = int(
                    self._policy.choose(
                        self._stats, self._rng, self._available, batch_size=1
                    )[0]
                )
                redraw_seconds += time.perf_counter() - redraw_start
            chunk = self._chunks[chunk_idx]
            frame = chunk.sample()
            if chunk.exhausted:
                self._available[chunk_idx] = False
            pending.append((chunk_idx, frame))
        self.last_plan_timings = {
            "draw": draw_seconds + redraw_seconds,
            "score": (time.perf_counter() - score_start) - redraw_seconds,
        }
        return pending

    def commit(
        self,
        pending: Sequence[tuple[int, int]],
        detections: Mapping[int, Sequence[Detection]] | None = None,
    ) -> list[StepRecord]:
        """Stages 2+3 of Algorithm 1 for a planned batch.

        With ``detections=None`` the batch goes to the sampler's own
        detector as **one** batched call (:func:`batch_detect` — a
        sequential fallback for plain detectors, a parallel fan-out for
        :class:`~repro.detection.execution.ParallelDetector`).  A caller
        that already ran the detector (the serving layer's coalesced
        tick) passes ``detections`` mapping each planned frame to its
        detection list instead.  Either way the frames are matched and
        recorded in plan order, so the result is identical to the
        frame-at-a-time loop; per §III-F the state updates commute.
        """
        pending = list(pending)
        frames = [frame for _, frame in pending]
        if self._repository is not None:
            for frame in frames:
                self._repository.read(frame)  # charge the random decodes
        if detections is None:
            per_frame: Sequence[Sequence[Detection]] = batch_detect(
                self._detector, frames
            )
        else:
            per_frame = [detections[frame] for frame in frames]

        records: list[StepRecord] = []
        for (chunk_idx, frame), frame_detections in zip(pending, per_frame):
            outcome = self._discriminator.observe(frame, list(frame_detections))
            d0, d1 = outcome.d0, outcome.d1
            if self._cross_chunk:
                self._record_cross_chunk(chunk_idx, outcome)
            else:
                self._stats.record(chunk_idx, d0, d1)
            total = self._discriminator.result_count()
            self._history.append(frame, d0, total)
            records.append(
                StepRecord(
                    sample_index=len(self._history),
                    chunk=chunk_idx,
                    frame_index=frame,
                    d0=d0,
                    d1=d1,
                    results_total=total,
                )
            )
        return records

    def _record_cross_chunk(self, chunk_idx: int, outcome) -> None:
        """Footnote-1 state update: d0 counts into the sampled chunk as
        usual; each d1 retires a singleton from the chunk that *first*
        found the matched result (falling back to the sampled chunk when
        provenance is unavailable)."""
        self._stats.record(chunk_idx, outcome.d0, 0)
        for det in outcome.new_detections:
            if det.true_instance_id is not None:
                self._first_chunk.setdefault(det.true_instance_id, chunk_idx)
        for det in outcome.second_sightings:
            origin = chunk_idx
            if det.true_instance_id is not None:
                origin = self._first_chunk.get(det.true_instance_id, chunk_idx)
            self._stats.retire(origin)

    def steps(
        self,
        result_limit: int | None = None,
        max_samples: int | None = None,
    ) -> Iterator[StepRecord]:
        """Incremental form of :meth:`run`: a generator of step records.

        The stopping clauses are evaluated between iterations, so the
        generator can be advanced one frame at a time, suspended after any
        yield, and interleaved with other samplers — the resumable engine
        the serving layer (:mod:`repro.serving`) schedules sessions on.
        Exhausting the generator leaves the sampler in exactly the state
        :meth:`run` would.  When ``max_samples`` binds mid-batch, the
        final iteration plans a smaller batch so the budget is honored
        exactly (``result_limit``, like the serial loop, is still only
        checked between iterations).
        """
        if result_limit is not None and result_limit <= 0:
            raise ValueError("result_limit must be positive")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive")

        def generate() -> Iterator[StepRecord]:
            while not self.exhausted:
                if result_limit is not None and self.results_found >= result_limit:
                    return
                if max_samples is not None and self.frames_processed >= max_samples:
                    return
                size = self._batch_size
                if max_samples is not None:
                    size = min(size, max_samples - self.frames_processed)
                yield from self.commit(self.plan(batch_size=size))

        # validation above fires at call time; only the loop is deferred
        return generate()

    def run(
        self,
        result_limit: int | None = None,
        max_samples: int | None = None,
        callback: Callable[[StepRecord], None] | None = None,
    ) -> SamplingHistory:
        """Run until the limit clause, the sample budget, or exhaustion.

        ``result_limit`` mirrors the query's LIMIT; ``max_samples`` is the
        experimental budget used by the evaluation sweeps.  At least one
        of the two should normally be given; with neither, the run ends
        only when the whole repository has been sampled.  Thin wrapper
        over :meth:`steps`.
        """
        for record in self.steps(result_limit=result_limit, max_samples=max_samples):
            if callback is not None:
                callback(record)
        return self._history
