"""Per-chunk sampling statistics and the N1/n estimator (Eq. III.1).

ExSample's estimate of the expected number of *new* results in the next
frame sampled from chunk *j* is

    R̂_j(n_j + 1) = N1_j / n_j                                 (Eq. III.1)

where ``N1_j`` counts distinct results seen exactly once so far in chunk
*j* and ``n_j`` counts frames sampled from chunk *j*.  This is the only
state Algorithm 1 keeps per chunk; the update after processing a frame is

    N1_j += |d0| - |d1|        n_j += 1                       (Alg. 1, l.11-12)

with ``d0`` the new detections and ``d1`` those whose matched result had
been seen exactly once before.  :class:`ChunkStatistics` is the
bookkeeping for all chunks, shared by every policy in
:mod:`repro.core.policies`.

Storage is a pair of flat parallel buffers (``array('d')`` for N1,
``array('q')`` for n) regardless of backend: scalar updates index them
directly, and the numpy fast path wraps the very same memory zero-copy
via ``np.frombuffer`` for bulk math — one layout, two execution modes.
"""

from __future__ import annotations

from array import array

from . import backend

__all__ = ["ChunkStatistics"]


class ChunkStatistics:
    """Flat (N1_j, n_j) state over M chunks.

    Invariants maintained (and asserted in tests):

    * ``n_j`` equals the number of ``record`` calls for chunk *j*;
    * ``N1_j`` never goes negative — a defensive floor, since with a
      *correct* discriminator `|d1|` can only retire results previously
      counted into N1, but a buggy or adversarial discriminator (or
      track-coverage loss) could otherwise drive it below zero;
    * chunk sample counts only grow.
    """

    def __init__(self, num_chunks: int):
        # zero chunks is legal: a live query over an empty repository has
        # no arms until ingestion delivers some (see :meth:`extend`)
        if num_chunks < 0:
            raise ValueError("num_chunks must be non-negative")
        self._n1 = array("d", bytes(8 * num_chunks))
        self._n = array("q", bytes(8 * num_chunks))
        self._total_results = 0

    @property
    def num_chunks(self) -> int:
        return len(self._n)

    # The raw buffers, for backend-aware bulk consumers (belief, benches).
    # Callers must treat them as read-only; numpy views made over them
    # go stale after :meth:`extend` (the buffer reallocates), so take
    # views per operation, never cache them.

    @property
    def n1_buffer(self) -> array:
        return self._n1

    @property
    def n_buffer(self) -> array:
        return self._n

    @property
    def n1(self):
        """Read-only view of the per-chunk N1 counts.

        A locked numpy view on the numpy backend, a tuple on the
        fallback — both index and iterate the same way.
        """
        if backend.use_numpy():
            view = backend.np.frombuffer(self._n1, dtype=backend.np.float64)
            view.flags.writeable = False
            return view
        return tuple(self._n1)

    @property
    def n(self):
        """Read-only view of the per-chunk sample counts."""
        if backend.use_numpy():
            view = backend.np.frombuffer(self._n, dtype=backend.np.int64)
            view.flags.writeable = False
            return view
        return tuple(self._n)

    @property
    def total_samples(self) -> int:
        return int(sum(self._n))

    @property
    def total_results(self) -> int:
        """Total distinct results recorded across all chunks."""
        return self._total_results

    def record(self, chunk: int, d0: int, d1: int) -> None:
        """Apply Algorithm 1's state update for one processed frame."""
        if d0 < 0 or d1 < 0:
            raise ValueError("d0 and d1 must be non-negative")
        self._check_chunk(chunk)
        self._n1[chunk] = max(0.0, self._n1[chunk] + d0 - d1)
        self._n[chunk] += 1
        self._total_results += d0

    def retire(self, chunk: int) -> None:
        """Retire one singleton result from ``chunk``'s N1 **without**
        charging a sample there.

        This implements the paper's footnote-1 adjustment (detailed in the
        technical report): when an instance spanning multiple chunks is
        re-seen from a *different* chunk than the one that first found it,
        the ``|d1|`` decrement belongs to the first-sighting chunk — its
        N1 holds the +1 being cancelled — while the sampled chunk keeps
        its own statistics clean.  Used by
        :class:`~repro.core.sampler.ExSample` when
        ``cross_chunk_adjustment`` is enabled.
        """
        self._check_chunk(chunk)
        self._n1[chunk] = max(0.0, self._n1[chunk] - 1.0)

    def extend(self, num_new: int) -> None:
        """Add ``num_new`` fresh arms with zero counts (live ingestion).

        New chunks start exactly as they would have at construction — no
        samples, no results — so every belief over them reduces to the
        prior, and the existing arms' statistics are untouched: extending
        mid-query cannot perturb any established estimate.
        """
        if num_new < 0:
            raise ValueError("num_new must be non-negative")
        if num_new == 0:
            return
        self._n1.extend([0.0] * num_new)
        self._n.extend([0] * num_new)

    def record_batch(self, chunks, d0s, d1s) -> None:
        """Commutative batched update (§III-F): order within the batch is
        irrelevant because all updates are additive."""
        chunks = list(chunks)
        d0s = list(d0s)
        d1s = list(d1s)
        if not (len(chunks) == len(d0s) == len(d1s)):
            raise ValueError("batch arrays must align")
        for chunk, d0, d1 in zip(chunks, d0s, d1s):
            self.record(int(chunk), int(d0), int(d1))

    def point_estimate(self):
        """R̂_j = N1_j / n_j with the 0/0 convention R̂ = 0 (Eq. III.1).

        Chunks never sampled have no data; the *belief* layer, not this
        point estimate, is what keeps them explorable.
        """
        if backend.use_numpy():
            np = backend.np
            n1 = np.frombuffer(self._n1, dtype=np.float64)
            n = np.frombuffer(self._n, dtype=np.int64)
            with np.errstate(divide="ignore", invalid="ignore"):
                est = np.where(n > 0, n1 / np.maximum(n, 1), 0.0)
            return est
        return [
            (self._n1[j] / self._n[j]) if self._n[j] > 0 else 0.0
            for j in range(len(self._n))
        ]

    def _check_chunk(self, chunk: int) -> None:
        if not 0 <= chunk < self.num_chunks:
            raise IndexError(f"chunk {chunk} out of range [0, {self.num_chunks})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkStatistics(chunks={self.num_chunks}, "
            f"samples={self.total_samples}, results={self._total_results})"
        )
