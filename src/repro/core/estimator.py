"""Per-chunk sampling statistics and the N1/n estimator (Eq. III.1).

ExSample's estimate of the expected number of *new* results in the next
frame sampled from chunk *j* is

    R̂_j(n_j + 1) = N1_j / n_j                                 (Eq. III.1)

where ``N1_j`` counts distinct results seen exactly once so far in chunk
*j* and ``n_j`` counts frames sampled from chunk *j*.  This is the only
state Algorithm 1 keeps per chunk; the update after processing a frame is

    N1_j += |d0| - |d1|        n_j += 1                       (Alg. 1, l.11-12)

with ``d0`` the new detections and ``d1`` those whose matched result had
been seen exactly once before.  :class:`ChunkStatistics` is the vectorized
bookkeeping for all chunks, shared by every policy in
:mod:`repro.core.policies`.
"""

from __future__ import annotations


import numpy as np

__all__ = ["ChunkStatistics"]


class ChunkStatistics:
    """Vectorized (N1_j, n_j) state over M chunks.

    Invariants maintained (and asserted in tests):

    * ``n_j`` equals the number of ``record`` calls for chunk *j*;
    * ``N1_j`` never goes negative — a defensive floor, since with a
      *correct* discriminator `|d1|` can only retire results previously
      counted into N1, but a buggy or adversarial discriminator (or
      track-coverage loss) could otherwise drive it below zero;
    * chunk sample counts only grow.
    """

    def __init__(self, num_chunks: int):
        # zero chunks is legal: a live query over an empty repository has
        # no arms until ingestion delivers some (see :meth:`extend`)
        if num_chunks < 0:
            raise ValueError("num_chunks must be non-negative")
        self._n1 = np.zeros(num_chunks, dtype=np.float64)
        self._n = np.zeros(num_chunks, dtype=np.int64)
        self._total_results = 0

    @property
    def num_chunks(self) -> int:
        return len(self._n)

    @property
    def n1(self) -> np.ndarray:
        """Read-only view of the per-chunk N1 counts."""
        view = self._n1.view()
        view.flags.writeable = False
        return view

    @property
    def n(self) -> np.ndarray:
        """Read-only view of the per-chunk sample counts."""
        view = self._n.view()
        view.flags.writeable = False
        return view

    @property
    def total_samples(self) -> int:
        return int(self._n.sum())

    @property
    def total_results(self) -> int:
        """Total distinct results recorded across all chunks."""
        return self._total_results

    def record(self, chunk: int, d0: int, d1: int) -> None:
        """Apply Algorithm 1's state update for one processed frame."""
        if d0 < 0 or d1 < 0:
            raise ValueError("d0 and d1 must be non-negative")
        self._check_chunk(chunk)
        self._n1[chunk] = max(0.0, self._n1[chunk] + d0 - d1)
        self._n[chunk] += 1
        self._total_results += d0

    def retire(self, chunk: int) -> None:
        """Retire one singleton result from ``chunk``'s N1 **without**
        charging a sample there.

        This implements the paper's footnote-1 adjustment (detailed in the
        technical report): when an instance spanning multiple chunks is
        re-seen from a *different* chunk than the one that first found it,
        the ``|d1|`` decrement belongs to the first-sighting chunk — its
        N1 holds the +1 being cancelled — while the sampled chunk keeps
        its own statistics clean.  Used by
        :class:`~repro.core.sampler.ExSample` when
        ``cross_chunk_adjustment`` is enabled.
        """
        self._check_chunk(chunk)
        self._n1[chunk] = max(0.0, self._n1[chunk] - 1.0)

    def extend(self, num_new: int) -> None:
        """Add ``num_new`` fresh arms with zero counts (live ingestion).

        New chunks start exactly as they would have at construction — no
        samples, no results — so every belief over them reduces to the
        prior, and the existing arms' statistics are untouched: extending
        mid-query cannot perturb any established estimate.
        """
        if num_new < 0:
            raise ValueError("num_new must be non-negative")
        if num_new == 0:
            return
        self._n1 = np.concatenate([self._n1, np.zeros(num_new, dtype=np.float64)])
        self._n = np.concatenate([self._n, np.zeros(num_new, dtype=np.int64)])

    def record_batch(self, chunks: np.ndarray, d0s: np.ndarray, d1s: np.ndarray) -> None:
        """Commutative batched update (§III-F): order within the batch is
        irrelevant because all updates are additive."""
        for chunk, d0, d1 in zip(chunks, d0s, d1s, strict=True):
            self.record(int(chunk), int(d0), int(d1))

    def point_estimate(self) -> np.ndarray:
        """R̂_j = N1_j / n_j with the 0/0 convention R̂ = 0 (Eq. III.1).

        Chunks never sampled have no data; the *belief* layer, not this
        point estimate, is what keeps them explorable.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            est = np.where(self._n > 0, self._n1 / np.maximum(self._n, 1), 0.0)
        return est

    def _check_chunk(self, chunk: int) -> None:
        if not 0 <= chunk < self.num_chunks:
            raise IndexError(f"chunk {chunk} out of range [0, {self.num_chunks})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkStatistics(chunks={self.num_chunks}, "
            f"samples={self.total_samples}, results={self._total_results})"
        )
