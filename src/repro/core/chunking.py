"""Chunk partitioning and within-chunk frame sampling orders.

ExSample "conceptually splits the input into chunks" (§III): fixed-length
temporal spans (20–30 minutes in the evaluation) or one chunk per clip
when clips are short (BDD).  Within a chosen chunk, frames are drawn
without replacement; §III-F's **random+** order additionally spreads early
samples across the chunk — one frame per half, then per quarter, and so on
— instead of letting pure uniform draws cluster.

Both orders are lazy: chunks can span hundreds of thousands of frames
while a query samples only a handful, so full permutations are never
materialized up front.

Chunk layouts are **incrementally derivable**: because the clip-aligned
layouts chunk every clip independently, the chunks of a repository that
grew clip-by-clip are exactly the chunks of the same repository
materialized up-front.  :class:`IncrementalChunker` packages that
invariant — it emits chunks for newly visible clips on demand, with
chunk ids continuing the existing sequence and frame orders drawing from
the same RNG the initial layout used (order construction consumes no
randomness, so extending never perturbs existing chunks' streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..video.repository import VideoRepository

__all__ = [
    "FrameOrder",
    "UniformOrder",
    "RandomPlusOrder",
    "Chunk",
    "fixed_size_chunks",
    "even_count_chunks",
    "chunks_from_clips",
    "clip_aligned_chunks",
    "make_chunks",
    "IncrementalChunker",
]


class FrameOrder(Protocol):
    """A lazy without-replacement ordering of a frame range."""

    def draw(self) -> int | None:  # pragma: no cover - protocol
        """Next frame index, or ``None`` once the range is exhausted."""
        ...

    @property
    def remaining(self) -> int:  # pragma: no cover - protocol
        ...


class UniformOrder:
    """Uniform without-replacement order over ``[start, end)``.

    Uses rejection sampling while the sampled fraction is small (O(1) per
    draw, no memory proportional to the range) and falls back to an
    explicit shuffled remainder once half the range is consumed.
    """

    def __init__(self, start: int, end: int, rng):
        if end <= start:
            raise ValueError("empty frame range")
        self._start = start
        self._end = end
        self._rng = rng
        self._sampled: set[int] = set()
        self._tail: list[int] | None = None

    @property
    def remaining(self) -> int:
        return (self._end - self._start) - len(self._sampled)

    def draw(self) -> int | None:
        if self.remaining == 0:
            return None
        if self._tail is not None:
            frame = self._tail.pop()
            self._sampled.add(frame)
            return frame
        size = self._end - self._start
        if len(self._sampled) * 2 >= size:
            # dense regime: enumerate what's left and shuffle it once.
            left = [f for f in range(self._start, self._end) if f not in self._sampled]
            self._rng.shuffle(left)
            self._tail = left
            return self.draw()
        while True:
            frame = int(self._rng.integers(self._start, self._end))
            if frame not in self._sampled:
                self._sampled.add(frame)
                return frame


class _Stratum:
    """One interval of a random+ level with its already-sampled frames."""

    __slots__ = ("lo", "hi", "sampled")

    def __init__(self, lo: int, hi: int, sampled: set[int]):
        self.lo = lo
        self.hi = hi
        self.sampled = sampled

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def exhausted(self) -> bool:
        return len(self.sampled) >= self.size

    def draw(self, rng) -> int:
        free = self.size - len(self.sampled)
        if free <= 0:
            raise RuntimeError("drawing from an exhausted stratum")
        if free <= 8 or len(self.sampled) * 2 >= self.size:
            candidates = [f for f in range(self.lo, self.hi) if f not in self.sampled]
            frame = candidates[int(rng.integers(len(candidates)))]
        else:
            while True:
                frame = int(rng.integers(self.lo, self.hi))
                if frame not in self.sampled:
                    break
        self.sampled.add(frame)
        return frame

    def split(self) -> list["_Stratum"]:
        if self.size <= 1:
            return [self]
        mid = self.lo + self.size // 2
        left = {f for f in self.sampled if f < mid}
        right = self.sampled - left
        return [_Stratum(self.lo, mid, left), _Stratum(mid, self.hi, right)]


class RandomPlusOrder:
    """§III-F's stratified *random+* without-replacement order.

    Pass 0 draws one uniform frame from the whole range; pass *k* splits
    the range into ``2^k`` strata, visits the non-exhausted ones in random
    order and draws one not-yet-sampled frame from each.  Early samples are
    therefore spread across the range (in a 1000-hour video, every hour is
    touched before any hour is touched twice), while each individual draw
    remains uniform within its stratum.
    """

    def __init__(self, start: int, end: int, rng):
        if end <= start:
            raise ValueError("empty frame range")
        self._rng = rng
        self._drawn = 0
        self._size = end - start
        root = _Stratum(start, end, set())
        self._level: list[_Stratum] = [root]  # all strata of the current pass
        self._queue: list[_Stratum] = [root]  # not-yet-visited, random order

    @property
    def remaining(self) -> int:
        return self._size - self._drawn

    def draw(self) -> int | None:
        if self.remaining == 0:
            return None
        while True:
            while self._queue:
                stratum = self._queue.pop()
                # only *not-yet-sampled* strata receive a sample this pass
                # (§III-F); already-touched ones wait to be split further.
                if not stratum.sampled and not stratum.exhausted:
                    self._drawn += 1
                    return stratum.draw(self._rng)
            self._advance_level()

    def _advance_level(self) -> None:
        children: list[_Stratum] = []
        for stratum in self._level:
            for child in stratum.split():
                if not child.exhausted:
                    children.append(child)
        if not children:  # pragma: no cover - guarded by `remaining`
            raise RuntimeError("advancing an exhausted random+ order")
        self._rng.shuffle(children)
        self._level = children
        self._queue = list(children)


@dataclass
class Chunk:
    """A contiguous frame span with its own lazy sampling order."""

    chunk_id: int
    start_frame: int
    end_frame: int
    order: FrameOrder

    def __post_init__(self) -> None:
        if self.end_frame <= self.start_frame:
            raise ValueError("chunk must contain at least one frame")

    @property
    def num_frames(self) -> int:
        return self.end_frame - self.start_frame

    @property
    def remaining(self) -> int:
        return self.order.remaining

    @property
    def exhausted(self) -> bool:
        return self.order.remaining == 0

    def sample(self) -> int:
        """Draw the next frame from this chunk (Alg. 1, line 7)."""
        frame = self.order.draw()
        if frame is None:
            raise RuntimeError(f"chunk {self.chunk_id} is exhausted")
        return frame


def _make_order(
    start: int, end: int, rng, use_random_plus: bool
) -> FrameOrder:
    if use_random_plus:
        return RandomPlusOrder(start, end, rng)
    return UniformOrder(start, end, rng)


def fixed_size_chunks(
    total_frames: int,
    chunk_frames: int,
    rng,
    use_random_plus: bool = True,
) -> list[Chunk]:
    """Tile ``[0, total_frames)`` with chunks of ``chunk_frames`` frames.

    The trailing chunk may be shorter.  This is the paper's default
    chunking (20-minute spans) for long recordings.
    """
    if total_frames <= 0:
        raise ValueError("total_frames must be positive")
    if chunk_frames <= 0:
        raise ValueError("chunk_frames must be positive")
    chunks = []
    for chunk_id, start in enumerate(range(0, total_frames, chunk_frames)):
        end = min(start + chunk_frames, total_frames)
        chunks.append(
            Chunk(chunk_id, start, end, _make_order(start, end, rng, use_random_plus))
        )
    return chunks


def even_count_chunks(
    total_frames: int,
    num_chunks: int,
    rng,
    use_random_plus: bool = True,
) -> list[Chunk]:
    """Split ``[0, total_frames)`` into exactly ``num_chunks`` near-equal
    chunks — the parametrization used by the §IV-C chunk-count sweep."""
    if total_frames <= 0:
        raise ValueError("total_frames must be positive")
    if not 1 <= num_chunks <= total_frames:
        raise ValueError("num_chunks must lie in [1, total_frames]")
    # mirrors np.linspace(0, total, n + 1).round(): same step multiply,
    # same round-half-to-even, endpoint pinned — so the historical chunk
    # edges survive the numpy-free rewrite bit-for-bit.
    step = total_frames / num_chunks
    edges = [round(i * step) for i in range(num_chunks + 1)]
    edges[-1] = total_frames
    chunks = []
    for chunk_id in range(num_chunks):
        start, end = int(edges[chunk_id]), int(edges[chunk_id + 1])
        chunks.append(
            Chunk(chunk_id, start, end, _make_order(start, end, rng, use_random_plus))
        )
    return chunks


def _chunks_for_clip(
    clip,
    chunk_frames: int | None,
    next_chunk_id: int,
    rng,
    use_random_plus: bool,
) -> list[Chunk]:
    """The chunks of one clip, numbered from ``next_chunk_id``.

    Every clip-aligned layout — initial or incremental — reduces to this
    per-clip step, which is what makes chunk layouts append-invariant: a
    repository grown clip-by-clip chunks identically to the same
    repository materialized up-front.
    """
    if chunk_frames is None:
        return [
            Chunk(
                next_chunk_id,
                clip.start_frame,
                clip.end_frame,
                _make_order(clip.start_frame, clip.end_frame, rng, use_random_plus),
            )
        ]
    chunks = []
    for start in range(clip.start_frame, clip.end_frame, chunk_frames):
        end = min(start + chunk_frames, clip.end_frame)
        chunks.append(
            Chunk(
                next_chunk_id + len(chunks), start, end,
                _make_order(start, end, rng, use_random_plus),
            )
        )
    return chunks


def chunks_from_clips(
    repository: VideoRepository,
    rng,
    use_random_plus: bool = True,
) -> list[Chunk]:
    """One chunk per clip — the forced layout for short-clip corpora like
    BDD, where sub-minute files leave nothing to subdivide (§V-A)."""
    chunks: list[Chunk] = []
    for clip in repository.clips:
        chunks.extend(
            _chunks_for_clip(clip, None, len(chunks), rng, use_random_plus)
        )
    return chunks


def clip_aligned_chunks(
    repository: VideoRepository,
    chunk_frames: int,
    rng,
    use_random_plus: bool = True,
) -> list[Chunk]:
    """Fixed-size chunks that never span a clip boundary.

    The paper's layout for the dashcam dataset: "Drives longer than 20
    minutes are split into 20 minute chunks" — each drive is chunked on
    its own, so a chunk never mixes footage from two recordings (whose
    content statistics are unrelated).  Clips shorter than
    ``chunk_frames`` become single chunks.
    """
    if chunk_frames <= 0:
        raise ValueError("chunk_frames must be positive")
    chunks: list[Chunk] = []
    for clip in repository.clips:
        chunks.extend(
            _chunks_for_clip(clip, chunk_frames, len(chunks), rng, use_random_plus)
        )
    return chunks


def make_chunks(
    repository: VideoRepository,
    rng,
    chunk_frames: int | None = None,
    use_random_plus: bool = True,
) -> list[Chunk]:
    """Dataset-appropriate default: clip-aligned fixed-size spans when
    ``chunk_frames`` is given (chunks never mix two recordings, per
    §V-A's dashcam layout), otherwise one chunk per clip."""
    if chunk_frames is None:
        return chunks_from_clips(repository, rng, use_random_plus)
    return clip_aligned_chunks(repository, chunk_frames, rng, use_random_plus)


class IncrementalChunker:
    """Derives chunks for newly visible footage, one :meth:`take` at a time.

    Bound to one repository and one RNG (the same generator the emitted
    chunks' frame orders draw from), it tracks how many clips it has
    already chunked and, on each :meth:`take`, emits chunks for the clips
    appended since — with chunk ids continuing the sequence.  The first
    ``take()`` over a fully materialized repository returns exactly
    :func:`make_chunks`'s layout, and because every clip is chunked
    independently, *any* split of the same clip sequence across takes
    concatenates to that same layout.

    Frame-order construction consumes no randomness (both orders draw
    lazily), so taking new chunks never perturbs the sampling streams of
    chunks already handed out — the property
    :meth:`~repro.core.sampler.ExSample.extend` relies on.
    """

    def __init__(
        self,
        repository: VideoRepository,
        rng,
        chunk_frames: int | None = None,
        use_random_plus: bool = True,
    ):
        if chunk_frames is not None and chunk_frames <= 0:
            raise ValueError("chunk_frames must be positive")
        self._repository = repository
        self._rng = rng
        self._chunk_frames = chunk_frames
        self._use_random_plus = use_random_plus
        self._clips_covered = 0
        self._chunks_emitted = 0
        self._horizon = 0

    @property
    def repository(self) -> VideoRepository:
        return self._repository

    @property
    def horizon(self) -> int:
        """Frames covered by the chunks emitted so far."""
        return self._horizon

    @property
    def chunks_emitted(self) -> int:
        return self._chunks_emitted

    @property
    def pending_frames(self) -> int:
        """Frames in the repository not yet covered by any emitted chunk."""
        return self._repository.total_frames - self._horizon

    def take(self, up_to_horizon: int | None = None) -> list[Chunk]:
        """Chunks for clips that became visible since the last take.

        ``up_to_horizon`` stops before clips ending beyond it — the
        replay path's lever: a restored session re-takes chunks at each
        horizon its live run recorded, even though the repository has
        since grown past them.  Clip boundaries are append points, so a
        recorded horizon always falls on one; a horizon that does not is
        rejected rather than silently mis-chunked.
        """
        chunks: list[Chunk] = []
        clips = self._repository.clips
        while self._clips_covered < len(clips):
            clip = clips[self._clips_covered]
            if up_to_horizon is not None and clip.end_frame > up_to_horizon:
                break
            chunks.extend(
                _chunks_for_clip(
                    clip,
                    self._chunk_frames,
                    self._chunks_emitted + len(chunks),
                    self._rng,
                    self._use_random_plus,
                )
            )
            self._clips_covered += 1
            self._horizon = clip.end_frame
        if up_to_horizon is not None and self._horizon < min(
            up_to_horizon, self._repository.total_frames
        ):
            raise ValueError(
                f"horizon {up_to_horizon} does not fall on a clip boundary "
                f"(covered {self._horizon} of {self._repository.total_frames} frames)"
            )
        self._chunks_emitted += len(chunks)
        return chunks
