"""Query-progress estimation: how much is left, and how long to get it.

The paper's estimator answers "what do I gain from the *next* frame"
(Eq. III.1).  A user running a limit query wants the integral of that:
*how many distinct objects exist, how many remain, and how many more
frames until my target?*  None of this needs ground truth — it follows
from the same seen-once/seen-twice statistics ExSample already keeps:

* **richness** — the Chao1 lower-bound estimator of the total number of
  distinct objects, ``N̂ = S + F1² / (2 F2)``, where S is the number of
  distinct results so far and F1/F2 count results seen exactly once /
  exactly twice.  Chao1 is the classic abundance-based species-richness
  estimate and is consistent with the paper's Good–Turing view: F1
  carries the information about what has not been seen yet.
* **rate** — the global Good–Turing discovery rate F1/n, i.e. Eq. III.1
  aggregated over all chunks: the expected number of new results in one
  more (uniformly allocated) frame.
* **forecast** — samples to reach a target result count, integrating the
  rate as it decays.  Under the per-instance independent-sampling model
  of §III-A, an as-yet-unseen instance with probability p is found after
  a further m samples with probability 1-(1-p)^m; summing over the
  estimated unseen pool with an exponential-decay approximation gives a
  closed-form forecast that needs only (S, F1, F2, n).

These are *estimates with the same caveats as the paper's* (§III-D): they
assume instances occur independently and they are noisy early.  The
:class:`ProgressTracker` therefore also exposes the raw statistics so
callers can judge maturity (e.g. ``n`` still small, or F2 = 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..tracking.discriminator import Discriminator

__all__ = ["chao1_estimate", "discovery_rate", "ProgressSnapshot", "ProgressTracker"]


def chao1_estimate(distinct: int, seen_once: int, seen_twice: int) -> float:
    """Chao1 lower bound on total richness: ``S + F1²/(2·F2)``.

    Uses the bias-corrected form ``S + F1(F1-1)/(2(F2+1))`` when F2 = 0,
    which stays finite (the classic form divides by zero).
    """
    if distinct < 0 or seen_once < 0 or seen_twice < 0:
        raise ValueError("counts must be non-negative")
    if seen_once + seen_twice > distinct:
        raise ValueError("F1 + F2 cannot exceed the distinct count")
    if seen_twice > 0:
        return distinct + (seen_once * seen_once) / (2.0 * seen_twice)
    return distinct + (seen_once * max(0, seen_once - 1)) / 2.0


def discovery_rate(seen_once: int, samples: int) -> float:
    """Good–Turing rate F1/n: expected new results in one more frame.

    This is Eq. III.1 summed over the whole dataset rather than one
    chunk.  Zero samples means no information; by convention the rate is
    then 1.0 (every frame is maximally informative before any data).
    """
    if seen_once < 0 or samples < 0:
        raise ValueError("counts must be non-negative")
    if samples == 0:
        return 1.0
    return seen_once / samples


@dataclass(frozen=True)
class ProgressSnapshot:
    """Point-in-time progress report for a running query."""

    samples: int
    distinct_found: int
    seen_once: int
    seen_twice: int
    estimated_total: float
    estimated_remaining: float
    rate: float

    @property
    def estimated_recall(self) -> float:
        """Fraction of the *estimated* richness already found."""
        if self.estimated_total <= 0:
            return 1.0
        return min(1.0, self.distinct_found / self.estimated_total)

    def samples_to_reach(self, target_results: int) -> float | None:
        """Forecast additional frames until ``target_results`` distinct
        results, or ``None`` if the target exceeds the estimated total.

        Model: the current discovery rate r = F1/n decays in proportion
        to the unseen pool (each find depletes it), i.e.
        ``d(found)/dm = r · remaining(m)/remaining(0)``, giving
        exponential depletion with time constant ``remaining(0)/r``.
        Inverting yields ``m = -(R0/r) · ln(1 - need/R0)``.
        """
        if target_results <= self.distinct_found:
            return 0.0
        need = target_results - self.distinct_found
        remaining = self.estimated_remaining
        if need > remaining or remaining <= 0:
            return None
        if self.rate <= 0:
            return None
        fraction = need / remaining
        if fraction >= 1.0:
            # target equals the estimated total: finite but huge; cap the
            # log at the last-instance resolution rather than returning inf.
            fraction = 1.0 - 0.5 / remaining
        return -(remaining / self.rate) * math.log(1.0 - fraction)


class ProgressTracker:
    """Maintains query-progress estimates from sampler feedback.

    Feed it either per-step counts (``update(d0, d1)``, mirroring the
    Algorithm-1 update) or attach it to a sampler run as a callback::

        tracker = ProgressTracker()
        sampler.run(max_samples=..., callback=tracker.on_record)
        print(tracker.snapshot().estimated_remaining)

    The F2 statistic (results seen exactly twice, needed by Chao1) is
    derived incrementally: a d1 event means a seen-once result became
    seen-twice; a later match of that same result would decrement F2,
    which per-step counts cannot see — so ``update`` accepts an optional
    ``d2`` (matches of twice-seen results).  When wired to a
    :class:`~repro.tracking.discriminator.Discriminator` through
    :meth:`from_discriminator`, F2 is exact.
    """

    def __init__(self) -> None:
        self._samples = 0
        self._distinct = 0
        self._f1 = 0
        self._f2 = 0

    # ---------------------------------------------------------------- inputs

    def update(self, d0: int, d1: int, d2: int = 0) -> None:
        """Apply one processed frame's counts.

        ``d0``: new results; ``d1``: matches of seen-once results;
        ``d2``: matches of seen-twice results (optional refinement).
        """
        if min(d0, d1, d2) < 0:
            raise ValueError("counts must be non-negative")
        self._samples += 1
        self._distinct += d0
        self._f1 += d0 - d1
        self._f2 += d1 - d2
        self._f1 = max(0, self._f1)
        self._f2 = max(0, self._f2)

    def on_record(self, record) -> None:
        """Sampler-callback adapter (consumes a ``StepRecord``)."""
        self.update(record.d0, record.d1)

    @classmethod
    def from_discriminator(
        cls, discriminator: Discriminator, samples: int
    ) -> "ProgressTracker":
        """Exact statistics from an oracle discriminator's seen counts."""
        counts = getattr(discriminator, "_seen_counts", None)
        if counts is None:
            raise TypeError(
                "discriminator does not expose per-result sighting counts; "
                "feed the tracker incrementally instead"
            )
        tracker = cls()
        tracker._samples = samples
        tracker._distinct = discriminator.result_count()
        tracker._f1 = sum(1 for c in counts.values() if c == 1)
        tracker._f2 = sum(1 for c in counts.values() if c == 2)
        return tracker

    # --------------------------------------------------------------- outputs

    @property
    def samples(self) -> int:
        return self._samples

    @property
    def distinct_found(self) -> int:
        return self._distinct

    def snapshot(self) -> ProgressSnapshot:
        total = chao1_estimate(self._distinct, self._f1, self._f2)
        return ProgressSnapshot(
            samples=self._samples,
            distinct_found=self._distinct,
            seen_once=self._f1,
            seen_twice=self._f2,
            estimated_total=total,
            estimated_remaining=max(0.0, total - self._distinct),
            rate=discovery_rate(self._f1, self._samples),
        )
