"""Automated chunking — the other §VII future-work direction.

§IV-C shows the chunk count is a delicate external knob: too few chunks
cap the exploitable skew, too many pay an exploration tax (every chunk
must be sampled before it can be ranked).  This module removes the knob:
:class:`AdaptiveExSample` starts from a coarse partition and **splits a
chunk in two once enough samples concentrate in it**, inheriting the
parent's statistics.

Why this preserves the §III machinery:

* each split partitions a chunk's frame range at its midpoint; the
  already-sampled frames are assigned to the side containing them, so
  ``n_child`` stays exactly "frames sampled from that span" — the
  quantity Eq. III.1 needs;
* ``N1`` is attributed **per first-sighting frame**: the sampler records
  where each currently-singleton result was first found, so a split
  hands each side exactly the singletons its span produced.  (A naive
  proportional split would leave *phantom credit* in barren halves —
  inherited N1 that sampling can never decrement because the span yields
  ``d0 = d1 = 0`` — and the belief would keep steering samples there.)
  The same bookkeeping retires a second-sighted result from the chunk
  that first saw it, i.e. the footnote-1 cross-chunk adjustment comes
  for free here;
* exploration cost stays low: with ``initial_chunks = 8`` the cold-start
  tax is 8 samples, yet sustained success in a region keeps halving its
  chunks until ``min_chunk_frames``, approaching the fine-partition
  optimal-allocation ceiling of Fig. 4 without ever ranking 1024 cold
  arms.
"""

from __future__ import annotations

from typing import Callable

from ..detection.detector import Detector
from ..tracking.discriminator import Discriminator
from ..video.repository import VideoRepository
from . import backend
from .belief import DEFAULT_ALPHA0, DEFAULT_BETA0
from .sampler import SamplingHistory, StepRecord, process_frame_detailed

__all__ = ["AdaptiveChunk", "AdaptiveExSample"]


class AdaptiveChunk:
    """A splittable chunk: a frame span plus its sampling state.

    Tracks its own sampled-frame set (needed to partition correctly on
    split) and the first-sighting frame of every currently-singleton
    result it produced (``singletons``), so N1 can be partitioned
    *exactly* on split.  ``anonymous_n1`` counts singletons without
    result provenance (detections lacking a ``true_instance_id``, e.g.
    tracking-only results); those stay with the chunk that saw them.
    ``n == len(sampled)`` is an invariant: adaptive chunks only ever
    record one sample per draw.
    """

    __slots__ = ("start", "end", "sampled", "singletons", "anonymous_n1")

    def __init__(self, start: int, end: int):
        if end <= start:
            raise ValueError("chunk must contain at least one frame")
        self.start = start
        self.end = end
        self.sampled: set[int] = set()
        self.singletons: dict[int, int] = {}  # result id -> first-sighting frame
        self.anonymous_n1 = 0.0

    @property
    def num_frames(self) -> int:
        return self.end - self.start

    @property
    def n(self) -> int:
        return len(self.sampled)

    @property
    def n1(self) -> float:
        """Results seen exactly once whose first sighting lies here."""
        return len(self.singletons) + self.anonymous_n1

    @property
    def exhausted(self) -> bool:
        return self.n >= self.num_frames

    def draw(self, rng) -> int:
        """One uniform not-yet-sampled frame from the span."""
        free = self.num_frames - self.n
        if free <= 0:
            raise RuntimeError("drawing from an exhausted adaptive chunk")
        if free <= 8 or self.n * 2 >= self.num_frames:
            left = [f for f in range(self.start, self.end) if f not in self.sampled]
            frame = left[int(rng.integers(len(left)))]
        else:
            while True:
                frame = int(rng.integers(self.start, self.end))
                if frame not in self.sampled:
                    break
        self.sampled.add(frame)
        return frame

    def split(self) -> tuple["AdaptiveChunk", "AdaptiveChunk"]:
        """Halve the span; children partition samples and singletons by
        frame position (exact N1 bookkeeping — no phantom credit)."""
        if self.num_frames < 2:
            raise ValueError("cannot split a single-frame chunk")
        mid = self.start + self.num_frames // 2
        left = AdaptiveChunk(self.start, mid)
        right = AdaptiveChunk(mid, self.end)
        left.sampled = {f for f in self.sampled if f < mid}
        right.sampled = self.sampled - left.sampled
        for result_id, frame in self.singletons.items():
            (left if frame < mid else right).singletons[result_id] = frame
        # anonymous singletons carry no location; split by sample counts
        # (they are rare — only provenance-free detections create them).
        if self.n > 0:
            left.anonymous_n1 = self.anonymous_n1 * (left.n / self.n)
            right.anonymous_n1 = self.anonymous_n1 - left.anonymous_n1
        else:
            left.anonymous_n1 = self.anonymous_n1 / 2.0
            right.anonymous_n1 = self.anonymous_n1 - left.anonymous_n1
        return left, right


class AdaptiveExSample:
    """Algorithm 1 with self-refining chunks (§VII "automating chunking").

    The public surface matches :class:`~repro.core.sampler.ExSample`
    (``step`` / ``run`` / ``history`` / ``results_found`` / ...), so the
    experiment runner and metrics treat both identically.

    Parameters
    ----------
    total_frames:
        The repository's frame-index space ``[0, total_frames)``.
    initial_chunks:
        Size of the starting partition; keep it small — splitting supplies
        the resolution later.
    split_after:
        Sample count in one chunk that triggers a split.  Lower values
        refine faster but dilute per-chunk evidence.
    split_min_n1:
        Minimum current N1 for a chunk to be split.  Splitting *cold*
        chunks only multiplies the arms the bandit must keep ranking (the
        Fig. 4 exploration tax, self-inflicted); resolution is only
        useful where results are actually being found.
    min_chunk_frames:
        Never split below this span (≈ the longest expected object
        duration keeps one object in one chunk).
    max_chunks:
        Hard cap on the partition size.
    """

    def __init__(
        self,
        total_frames: int,
        detector: Detector,
        discriminator: Discriminator,
        initial_chunks: int = 8,
        split_after: int = 32,
        split_min_n1: float = 1.0,
        min_chunk_frames: int = 256,
        max_chunks: int = 4096,
        alpha0: float = DEFAULT_ALPHA0,
        beta0: float = DEFAULT_BETA0,
        rng=None,
        repository: VideoRepository | None = None,
    ):
        backend.require_numpy("the adaptive re-chunking sampler")
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        if not 1 <= initial_chunks <= total_frames:
            raise ValueError("initial_chunks must lie in [1, total_frames]")
        if split_after <= 0:
            raise ValueError("split_after must be positive")
        if split_min_n1 < 0:
            raise ValueError("split_min_n1 must be non-negative")
        if min_chunk_frames <= 1:
            raise ValueError("min_chunk_frames must exceed one frame")
        if max_chunks < initial_chunks:
            raise ValueError("max_chunks must be >= initial_chunks")
        if alpha0 <= 0 or beta0 <= 0:
            raise ValueError("prior parameters must be positive")
        self._detector = detector
        self._discriminator = discriminator
        self._split_after = split_after
        self._split_min_n1 = split_min_n1
        self._min_chunk_frames = min_chunk_frames
        self._max_chunks = max_chunks
        self._alpha0 = alpha0
        self._beta0 = beta0
        self._rng = rng if rng is not None else backend.np.random.default_rng()
        self._repository = repository
        self._history = SamplingHistory()
        np = backend.np
        edges = np.linspace(0, total_frames, initial_chunks + 1).round().astype(np.int64)
        self._chunks = [
            AdaptiveChunk(int(edges[k]), int(edges[k + 1]))
            for k in range(initial_chunks)
        ]
        self._splits_performed = 0
        self._singleton_owner: dict[int, AdaptiveChunk] = {}

    # ------------------------------------------------------------ properties

    @property
    def chunks(self) -> list[AdaptiveChunk]:
        return list(self._chunks)

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def splits_performed(self) -> int:
        return self._splits_performed

    @property
    def history(self) -> SamplingHistory:
        return self._history

    @property
    def discriminator(self) -> Discriminator:
        return self._discriminator

    @property
    def results_found(self) -> int:
        return self._discriminator.result_count()

    @property
    def frames_processed(self) -> int:
        return len(self._history)

    @property
    def exhausted(self) -> bool:
        return all(c.exhausted for c in self._chunks)

    # ------------------------------------------------------------- execution

    def step(self) -> list[StepRecord]:
        """One Algorithm-1 iteration over the current (mutable) partition."""
        if self.exhausted:
            raise RuntimeError("all chunks are exhausted")
        idx = self._thompson_pick()
        chunk = self._chunks[idx]
        frame = chunk.draw(self._rng)
        outcome = process_frame_detailed(
            frame, self._detector, self._discriminator, self._repository
        )
        d0, d1 = outcome.d0, outcome.d1
        self._apply_outcome(chunk, frame, outcome)
        total = self._discriminator.result_count()
        self._history.append(frame, d0, total)
        record = StepRecord(
            sample_index=len(self._history),
            chunk=idx,
            frame_index=frame,
            d0=d0,
            d1=d1,
            results_total=total,
        )
        self._maybe_split(idx)
        return [record]

    def run(
        self,
        result_limit: int | None = None,
        max_samples: int | None = None,
        callback: Callable[[StepRecord], None] | None = None,
    ) -> SamplingHistory:
        """Same contract as :meth:`repro.core.sampler.ExSample.run`."""
        if result_limit is not None and result_limit <= 0:
            raise ValueError("result_limit must be positive")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive")
        while not self.exhausted:
            if result_limit is not None and self.results_found >= result_limit:
                break
            if max_samples is not None and self.frames_processed >= max_samples:
                break
            for record in self.step():
                if callback is not None:
                    callback(record)
        return self._history

    # ------------------------------------------------------------- internals

    def _apply_outcome(self, chunk: AdaptiveChunk, frame: int, outcome) -> None:
        """Exact N1 bookkeeping: new singletons register their
        first-sighting frame here; second sightings retire the singleton
        from whichever chunk currently owns it."""
        for det in outcome.new_detections:
            key = det.true_instance_id
            if key is None:
                chunk.anonymous_n1 += 1.0
            elif key not in self._singleton_owner:
                chunk.singletons[key] = frame
                self._singleton_owner[key] = chunk
        for det in outcome.second_sightings:
            key = det.true_instance_id
            if key is None:
                chunk.anonymous_n1 = max(0.0, chunk.anonymous_n1 - 1.0)
                continue
            owner = self._singleton_owner.pop(key, None)
            if owner is not None:
                owner.singletons.pop(key, None)

    def _thompson_pick(self) -> int:
        """Gamma-Thompson draw over the current partition (Eq. III.4)."""
        np = backend.np
        alphas = np.array([c.n1 for c in self._chunks]) + self._alpha0
        betas = np.array([float(c.n) for c in self._chunks]) + self._beta0
        draws = self._rng.gamma(shape=alphas, scale=1.0 / betas)
        draws[np.array([c.exhausted for c in self._chunks])] = -np.inf
        return int(np.argmax(draws))

    def _maybe_split(self, idx: int) -> None:
        chunk = self._chunks[idx]
        if (
            len(self._chunks) < self._max_chunks
            and chunk.n >= self._split_after
            and chunk.n1 >= self._split_min_n1
            and chunk.num_frames >= 2 * self._min_chunk_frames
        ):
            left, right = chunk.split()
            self._chunks[idx : idx + 1] = [left, right]
            for child in (left, right):
                for key in child.singletons:
                    self._singleton_owner[key] = child
            self._splits_performed += 1
