"""The Gamma belief over per-chunk future reward (Eq. III.4).

§III-C models the uncertainty of the point estimate R̂_j = N1_j / n_j with

    R_j(n_j + 1) ~ Gamma(alpha = N1_j + alpha0, beta = n_j + beta0)

chosen so that the belief mean ``alpha/beta`` matches Eq. III.1 and the
belief variance ``alpha/beta²`` matches the variance bound of Eq. III.3
(Var[R̂] <= E[R̂]/n).  The pseudo-counts ``alpha0 = 0.1`` and ``beta0 = 1``
keep the distribution defined when N1 = 0 or n = 0 — the state at the
start of a query, when results are rare, and when a chunk is exhausted —
so Thompson sampling keeps producing non-zero draws and the sampler can
recover from early bad luck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from .estimator import ChunkStatistics

__all__ = ["GammaBelief", "DEFAULT_ALPHA0", "DEFAULT_BETA0"]

DEFAULT_ALPHA0 = 0.1
DEFAULT_BETA0 = 1.0


@dataclass(frozen=True)
class GammaBelief:
    """The Gamma(N1 + alpha0, n + beta0) belief family of Eq. III.4.

    Stateless: all chunk state lives in :class:`ChunkStatistics`; this
    object only carries the prior pseudo-counts and turns statistics into
    distributions.  §III-C reports no strong sensitivity to the prior, a
    claim the prior-ablation bench re-checks.
    """

    alpha0: float = DEFAULT_ALPHA0
    beta0: float = DEFAULT_BETA0

    def __post_init__(self) -> None:
        if self.alpha0 <= 0 or self.beta0 <= 0:
            raise ValueError("alpha0 and beta0 must be positive (Gamma support)")

    # ------------------------------------------------------------ parameters

    def alphas(self, stats: ChunkStatistics) -> np.ndarray:
        return stats.n1 + self.alpha0

    def betas(self, stats: ChunkStatistics) -> np.ndarray:
        return stats.n + self.beta0

    # ----------------------------------------------------------------- query

    def mean(self, stats: ChunkStatistics) -> np.ndarray:
        """Belief means alpha/beta — the regularized Eq. III.1 estimate."""
        return self.alphas(stats) / self.betas(stats)

    def variance(self, stats: ChunkStatistics) -> np.ndarray:
        """Belief variances alpha/beta² — matching the Eq. III.3 bound."""
        betas = self.betas(stats)
        return self.alphas(stats) / (betas * betas)

    def sample(
        self, stats: ChunkStatistics, rng: np.random.Generator, size: int = 1
    ) -> np.ndarray:
        """Thompson draws: a ``(size, M)`` array of independent samples.

        One row is one Thompson-sampling round (Alg. 1 line 4); ``size > 1``
        produces the draws for a batched round (§III-F).
        """
        if size <= 0:
            raise ValueError("size must be positive")
        alphas = self.alphas(stats)
        betas = self.betas(stats)
        return rng.gamma(shape=alphas, scale=1.0 / betas, size=(size, stats.num_chunks))

    def quantile(self, stats: ChunkStatistics, q: float) -> np.ndarray:
        """Per-chunk belief quantiles, used by the Bayes-UCB policy."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must lie in (0, 1)")
        return _scipy_stats.gamma.ppf(q, a=self.alphas(stats), scale=1.0 / self.betas(stats))

    def density(self, n1: float, n: float, grid: np.ndarray) -> np.ndarray:
        """Belief pdf for a single (N1, n) pair on ``grid`` — the orange
        curve of Fig. 2."""
        return _scipy_stats.gamma.pdf(
            grid, a=n1 + self.alpha0, scale=1.0 / (n + self.beta0)
        )
