"""The Gamma belief over per-chunk future reward (Eq. III.4).

§III-C models the uncertainty of the point estimate R̂_j = N1_j / n_j with

    R_j(n_j + 1) ~ Gamma(alpha = N1_j + alpha0, beta = n_j + beta0)

chosen so that the belief mean ``alpha/beta`` matches Eq. III.1 and the
belief variance ``alpha/beta²`` matches the variance bound of Eq. III.3
(Var[R̂] <= E[R̂]/n).  The pseudo-counts ``alpha0 = 0.1`` and ``beta0 = 1``
keep the distribution defined when N1 = 0 or n = 0 — the state at the
start of a query, when results are rare, and when a chunk is exhausted —
so Thompson sampling keeps producing non-zero draws and the sampler can
recover from early bad luck.

Sampling dispatches on the generator type: a
:class:`~repro.core.rng.DecisionRng` takes the backend-independent bulk
contract (:meth:`DecisionRng.gamma_matrix` — bit-identical with and
without numpy), while a ``numpy.random.Generator`` keeps the historical
``rng.gamma`` stream so existing experiment seeds reproduce unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import backend
from .estimator import ChunkStatistics
from .rng import DecisionRng

__all__ = ["GammaBelief", "DEFAULT_ALPHA0", "DEFAULT_BETA0"]

DEFAULT_ALPHA0 = 0.1
DEFAULT_BETA0 = 1.0


@dataclass(frozen=True)
class GammaBelief:
    """The Gamma(N1 + alpha0, n + beta0) belief family of Eq. III.4.

    Stateless: all chunk state lives in :class:`ChunkStatistics`; this
    object only carries the prior pseudo-counts and turns statistics into
    distributions.  §III-C reports no strong sensitivity to the prior, a
    claim the prior-ablation bench re-checks.
    """

    alpha0: float = DEFAULT_ALPHA0
    beta0: float = DEFAULT_BETA0

    def __post_init__(self) -> None:
        if self.alpha0 <= 0 or self.beta0 <= 0:
            raise ValueError("alpha0 and beta0 must be positive (Gamma support)")

    # ------------------------------------------------------------ parameters

    def alphas(self, stats: ChunkStatistics):
        if backend.use_numpy():
            np = backend.np
            return np.frombuffer(stats.n1_buffer, dtype=np.float64) + self.alpha0
        return [v + self.alpha0 for v in stats.n1_buffer]

    def betas(self, stats: ChunkStatistics):
        if backend.use_numpy():
            np = backend.np
            return np.frombuffer(stats.n_buffer, dtype=np.int64) + self.beta0
        return [v + self.beta0 for v in stats.n_buffer]

    # ----------------------------------------------------------------- query

    def mean(self, stats: ChunkStatistics):
        """Belief means alpha/beta — the regularized Eq. III.1 estimate."""
        alphas = self.alphas(stats)
        betas = self.betas(stats)
        if backend.use_numpy():
            return alphas / betas
        return [a / b for a, b in zip(alphas, betas)]

    def variance(self, stats: ChunkStatistics):
        """Belief variances alpha/beta² — matching the Eq. III.3 bound."""
        alphas = self.alphas(stats)
        betas = self.betas(stats)
        if backend.use_numpy():
            return alphas / (betas * betas)
        return [a / (b * b) for a, b in zip(alphas, betas)]

    def sample(self, stats: ChunkStatistics, rng, size: int = 1):
        """Thompson draws: a ``(size, M)`` matrix of independent samples.

        One row is one Thompson-sampling round (Alg. 1 line 4); ``size > 1``
        produces the draws for a batched round (§III-F).  With a
        :class:`DecisionRng` the draw follows the backend-independent
        contract (ndarray under numpy, list-of-rows on the fallback);
        with a numpy ``Generator`` it is the historical vectorized
        ``rng.gamma`` call, bit-compatible with pre-contract seeds.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if isinstance(rng, DecisionRng):
            return rng.gamma_matrix(self.alphas(stats), self.betas(stats), size)
        # a numpy Generator implies numpy is importable even when the
        # fallback is forced; keep the historical array-in array-out call.
        np = backend.np
        alphas = np.asarray(self.alphas(stats), dtype=np.float64)
        betas = np.asarray(self.betas(stats), dtype=np.float64)
        return rng.gamma(shape=alphas, scale=1.0 / betas, size=(size, stats.num_chunks))

    def quantile(self, stats: ChunkStatistics, q: float):
        """Per-chunk belief quantiles, used by the Bayes-UCB policy."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must lie in (0, 1)")
        backend.require_numpy("Gamma belief quantiles (scipy)")
        from scipy import stats as _scipy_stats

        np = backend.np
        alphas = np.asarray(self.alphas(stats), dtype=np.float64)
        betas = np.asarray(self.betas(stats), dtype=np.float64)
        return _scipy_stats.gamma.ppf(q, a=alphas, scale=1.0 / betas)

    def density(self, n1: float, n: float, grid):
        """Belief pdf for a single (N1, n) pair on ``grid`` — the orange
        curve of Fig. 2."""
        backend.require_numpy("Gamma belief densities (scipy)")
        from scipy import stats as _scipy_stats

        return _scipy_stats.gamma.pdf(
            grid, a=n1 + self.alpha0, scale=1.0 / (n + self.beta0)
        )
