"""ExSample core: beliefs, policies, chunking, the Algorithm-1 loop, queries."""

from . import backend
from .adaptive import AdaptiveChunk, AdaptiveExSample
from .belief import DEFAULT_ALPHA0, DEFAULT_BETA0, GammaBelief
from .rng import DecisionRng, derive_key
from .chunking import (
    Chunk,
    FrameOrder,
    RandomPlusOrder,
    UniformOrder,
    chunks_from_clips,
    even_count_chunks,
    fixed_size_chunks,
    make_chunks,
)
from .estimator import ChunkStatistics
from .policies import (
    BayesUCB,
    ChunkPolicy,
    EpsilonGreedy,
    GreedyMean,
    ThompsonSampling,
    UniformPolicy,
)
from .multiquery import MultiQueryExSample, QueryState
from .progress import ProgressSnapshot, ProgressTracker, chao1_estimate, discovery_rate
from .query import METHODS, DistinctObjectQuery, QueryEngine, QueryResult
from .sampler import (
    ExSample,
    SamplingHistory,
    StepRecord,
    process_frame,
    process_frame_detailed,
)
from .scoring import (
    ConstantScorer,
    FrameScorer,
    OccupancyScorer,
    ProximityScorer,
    ScoredOrder,
    scored_even_count_chunks,
)

__all__ = [
    "AdaptiveChunk",
    "AdaptiveExSample",
    "DecisionRng",
    "backend",
    "derive_key",
    "DEFAULT_ALPHA0",
    "DEFAULT_BETA0",
    "GammaBelief",
    "Chunk",
    "FrameOrder",
    "RandomPlusOrder",
    "UniformOrder",
    "chunks_from_clips",
    "even_count_chunks",
    "fixed_size_chunks",
    "make_chunks",
    "ChunkStatistics",
    "BayesUCB",
    "ChunkPolicy",
    "EpsilonGreedy",
    "GreedyMean",
    "ThompsonSampling",
    "UniformPolicy",
    "METHODS",
    "DistinctObjectQuery",
    "QueryEngine",
    "QueryResult",
    "ExSample",
    "SamplingHistory",
    "StepRecord",
    "process_frame",
    "process_frame_detailed",
    "ConstantScorer",
    "FrameScorer",
    "OccupancyScorer",
    "ProximityScorer",
    "ScoredOrder",
    "scored_even_count_chunks",
    "MultiQueryExSample",
    "QueryState",
    "ProgressSnapshot",
    "ProgressTracker",
    "chao1_estimate",
    "discovery_rate",
]
