"""Distinct object queries: the library's top-level public API.

A *distinct object limit query* (§II-B) — "find 20 traffic lights in my
dataset" — is specified by an object category, a stopping rule (a result
LIMIT or, for evaluation, a recall target over ground-truth instances),
and a discriminator deciding which detections are new objects.
:class:`QueryEngine` wires a repository, detector, discriminator, chunking
and sampling method together and executes queries end to end, reporting
both result counts and modelled wall-clock cost.

Quickstart::

    repo = build_dataset("dashcam", categories=["bicycle"], scale=0.05)
    engine = QueryEngine(repo, category="bicycle", seed=7)
    result = engine.execute(DistinctObjectQuery("bicycle", limit=20))
    print(result.frames_processed, result.detector_seconds)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..baselines.blazeit import BlazeItSampler
from ..baselines.random_plus import RandomPlusSampler
from ..baselines.sequential import SequentialScanSampler
from ..baselines.uniform import UniformRandomSampler
from ..detection.costmodel import ThroughputModel
from ..detection.detector import Detector, OracleDetector, SimulatedDetector
from ..detection.execution import wrap_parallel
from ..distributed.coordinator import ShardCoordinator
from ..distributed.worker import DetectorSpec
from ..tracking.discriminator import (
    Discriminator,
    OracleDiscriminator,
    TrackingDiscriminator,
)
from ..video.repository import VideoRepository
from . import backend
from .chunking import make_chunks
from .policies import ChunkPolicy, ThompsonSampling
from .sampler import ExSample, SamplingHistory

__all__ = ["DistinctObjectQuery", "QueryResult", "QueryEngine", "METHODS"]

METHODS = ("exsample", "random", "random_plus", "sequential", "blazeit")


@dataclass(frozen=True)
class DistinctObjectQuery:
    """A distinct-object search with a stopping rule.

    Exactly one of ``limit`` (the LIMIT clause: stop after this many
    distinct results) and ``recall_target`` (stop once this fraction of
    ground-truth instances has been found — an evaluation-only rule, since
    real deployments do not know the instance count) should be set;
    ``max_samples`` optionally caps the frame budget either way.
    """

    category: str
    limit: int | None = None
    recall_target: float | None = None
    max_samples: int | None = None

    def __post_init__(self) -> None:
        if (self.limit is None) == (self.recall_target is None):
            raise ValueError("set exactly one of limit / recall_target")
        if self.limit is not None and self.limit <= 0:
            raise ValueError("limit must be positive")
        if self.recall_target is not None and not 0.0 < self.recall_target <= 1.0:
            raise ValueError("recall_target must lie in (0, 1]")
        if self.max_samples is not None and self.max_samples <= 0:
            raise ValueError("max_samples must be positive")


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    query: DistinctObjectQuery
    method: str
    history: SamplingHistory
    frames_processed: int
    results_returned: int
    distinct_instances_found: int
    ground_truth_instances: int
    scan_frames_charged: int  # nonzero only for proxy methods
    detector_seconds: float
    scan_seconds: float
    satisfied: bool

    @property
    def recall(self) -> float:
        """Fraction of ground-truth distinct instances found (§V-A)."""
        if self.ground_truth_instances == 0:
            return 0.0
        return self.distinct_instances_found / self.ground_truth_instances

    @property
    def total_seconds(self) -> float:
        """Modelled end-to-end time: upfront scan (if any) plus detection."""
        return self.scan_seconds + self.detector_seconds


class QueryEngine:
    """Executes distinct-object queries over one repository + category.

    Parameters mirror the paper's experimental setup: chunking defaults to
    the repository's natural layout (``chunk_frames=None`` → one chunk per
    clip), detection defaults to the noisy simulated detector, and the
    discriminator defaults to the IoU tracking discriminator when the
    ground truth carries boxes (``oracle=False``) or the oracle otherwise.
    """

    def __init__(
        self,
        repository: VideoRepository,
        category: str,
        chunk_frames: int | None = None,
        policy: ChunkPolicy | None = None,
        throughput: ThroughputModel | None = None,
        use_random_plus: bool = True,
        batch_size: int = 1,
        workers: int = 1,
        detector_latency: float = 0.0,
        shards: int = 1,
        oracle: bool = True,
        detector_factory: Callable[[], Detector] | None = None,
        discriminator_factory: Callable[[], Discriminator] | None = None,
        proxy_noise: float = 0.1,
        proxy_min_gap: int = 0,
        seed: int = 0,
    ):
        if category not in repository.categories():
            raise ValueError(
                f"category {category!r} not present in repository "
                f"{repository.name!r}; available: {repository.categories()}"
            )
        self._repository = repository
        self._category = category
        self._chunk_frames = chunk_frames
        self._policy = policy
        self._throughput = throughput if throughput is not None else ThroughputModel()
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if detector_latency < 0.0:
            raise ValueError("detector_latency must be non-negative")
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if shards > 1 and workers > 1:
            raise ValueError(
                "workers is the in-process pool knob; sharded execution "
                "runs its own worker processes (use shards alone)"
            )
        if shards > 1 and detector_factory is not None:
            raise ValueError(
                "sharded execution builds detectors inside the workers; "
                "detector_factory is local-only"
            )
        self._use_random_plus = use_random_plus
        self._batch_size = batch_size
        self._workers = workers
        self._detector_latency = detector_latency
        self._shards = shards
        self._oracle = oracle
        self._detector_factory = detector_factory
        self._discriminator_factory = discriminator_factory
        self._proxy_noise = proxy_noise
        self._proxy_min_gap = proxy_min_gap
        self._seed = seed

    # --------------------------------------------------------------- factory

    def _make_detector(self) -> Detector:
        if self._shards > 1:
            # shard-parallel execution: detectors live in worker processes,
            # built from a spec mirroring the local defaults below; the
            # coordinator is score-equivalent to them by construction
            spec = DetectorSpec(
                kind="oracle" if self._oracle else "simulated",
                category=self._category,
                seed=self._seed,
            )
            return ShardCoordinator(
                self._repository,
                self._shards,
                detector_spec=spec,
                latency=self._detector_latency,
            )
        if self._detector_factory is not None:
            detector = self._detector_factory()
        elif self._oracle:
            detector = OracleDetector(self._repository, category=self._category)
        else:
            detector = SimulatedDetector(
                self._repository, category=self._category, seed=self._seed
            )
        # execution-layer wrapper: score-equivalent, only faster/slower
        return wrap_parallel(detector, self._workers, self._detector_latency)

    def _make_discriminator(self) -> Discriminator:
        if self._discriminator_factory is not None:
            return self._discriminator_factory()
        if self._oracle:
            return OracleDiscriminator()
        return TrackingDiscriminator(self._repository.instances_of(self._category))

    def _make_sampler(self, method: str, rng, detector=None):
        if detector is None:
            detector = self._make_detector()
        discriminator = self._make_discriminator()
        if method == "exsample":
            chunks = make_chunks(
                self._repository,
                rng,
                chunk_frames=self._chunk_frames,
                use_random_plus=self._use_random_plus,
            )
            return ExSample(
                chunks,
                detector,
                discriminator,
                policy=self._policy if self._policy is not None else ThompsonSampling(),
                rng=rng,
                batch_size=self._batch_size,
                repository=self._repository,
            )
        if method == "random":
            return UniformRandomSampler(self._repository, detector, discriminator, rng)
        if method == "random_plus":
            return RandomPlusSampler(self._repository, detector, discriminator, rng)
        if method == "sequential":
            return SequentialScanSampler(self._repository, detector, discriminator)
        if method == "blazeit":
            return BlazeItSampler(
                self._repository,
                detector,
                discriminator,
                category=self._category,
                noise=self._proxy_noise,
                min_gap=self._proxy_min_gap,
                seed=self._seed,
            )
        raise ValueError(f"unknown method {method!r}; options: {METHODS}")

    # ------------------------------------------------------------- execution

    def execute(
        self,
        query: DistinctObjectQuery,
        method: str = "exsample",
        seed: int | None = None,
    ) -> QueryResult:
        """Run ``query`` with ``method`` and return the accounting."""
        if query.category != self._category:
            raise ValueError(
                f"engine is bound to category {self._category!r}, "
                f"query asks for {query.category!r}"
            )
        # the experiment engine keeps the historical numpy streams so
        # published seeds reproduce; it is not on the no-numpy decision path.
        backend.require_numpy("the experiment query engine")
        rng = backend.np.random.default_rng(self._seed if seed is None else seed)
        detector = self._make_detector()
        sampler = self._make_sampler(method, rng, detector)
        ground_truth = len(self._repository.instances_of(self._category))

        try:
            if query.limit is not None:
                sampler.run(result_limit=query.limit, max_samples=query.max_samples)
                satisfied = sampler.results_found >= query.limit
            else:
                target = max(1, math.ceil(query.recall_target * ground_truth))
                satisfied = self._run_to_recall(sampler, target, query.max_samples)
        finally:
            closer = getattr(detector, "close", None)
            if closer is not None:  # release any worker pool promptly
                closer()

        distinct = len(sampler.discriminator.distinct_true_instances())
        scan_frames = getattr(sampler, "scan_frames_charged", 0)
        return QueryResult(
            query=query,
            method=method,
            history=sampler.history,
            frames_processed=sampler.frames_processed,
            results_returned=sampler.results_found,
            distinct_instances_found=distinct,
            ground_truth_instances=ground_truth,
            scan_frames_charged=scan_frames,
            detector_seconds=self._throughput.detection_seconds(
                sampler.frames_processed
            ),
            scan_seconds=self._throughput.scan_seconds(scan_frames),
            satisfied=satisfied,
        )

    @staticmethod
    def _run_to_recall(sampler, target_instances: int, max_samples: int | None) -> bool:
        """Step until the discriminator has found ``target_instances``
        distinct ground-truth instances (evaluation stopping rule).
        Mirrors :meth:`ExSample.steps`: when ``max_samples`` binds
        mid-batch, the final batch shrinks so the budget is exact."""
        while not sampler.exhausted:
            if len(sampler.discriminator.distinct_true_instances()) >= target_instances:
                return True
            if max_samples is not None and sampler.frames_processed >= max_samples:
                return False
            if max_samples is not None and isinstance(sampler, ExSample):
                size = min(sampler.batch_size, max_samples - sampler.frames_processed)
                sampler.commit(sampler.plan(batch_size=size))
            else:  # baselines step one frame at a time
                sampler.step()
        return len(sampler.discriminator.distinct_true_instances()) >= target_instances
