"""Network front door for the serving stack.

``repro.server`` puts a stdlib-only asyncio TCP server in front of a
:class:`~repro.serving.service.QueryService`: newline-delimited JSON
requests (:mod:`repro.server.protocol`), a bounded admission queue with
explicit 429-style backpressure, per-tenant concurrent-session quotas,
and graceful drain/restart riding the existing replay-based
snapshot/restore — so a restarted server resumes every session
bit-identically.  :mod:`repro.server.thread` hosts a server in a
background thread for tests and benchmarks; the matching blocking
client lives in :mod:`repro.serving.client`.
"""

from .app import AsyncQueryServer, ServerConfig, restore_state, TENANTS_FILENAME
from .protocol import (
    MAX_REQUEST_BYTES,
    OPS,
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from .thread import ServerThread

__all__ = [
    "AsyncQueryServer",
    "ServerConfig",
    "ServerThread",
    "restore_state",
    "TENANTS_FILENAME",
    "MAX_REQUEST_BYTES",
    "OPS",
    "ProtocolError",
    "encode",
    "error_response",
    "ok_response",
    "parse_request",
]
