"""The wire protocol: newline-delimited JSON requests and responses.

One request is one JSON object on one ``\\n``-terminated line; one
response is the same coming back.  The framing is deliberately the
simplest thing that a load generator, a shell one-liner (``nc`` + a
here-doc), and the blocking client in :mod:`repro.serving.client` can
all speak — no HTTP parser, no content-length arithmetic, no protocol
state beyond "lines".

Requests carry an ``op`` naming the endpoint plus op-specific fields::

    {"op": "submit", "dataset": "dashcam", "category": "bicycle",
     "limit": 5, "tenant": "team-a"}
    {"op": "status", "session_id": "s1"}

Responses always carry ``ok``.  Success responses add op-specific
payload fields; error responses add a stable machine-readable ``error``
code, a human ``message``, and — for the backpressure rejections
(``queue-full`` / ``quota-exceeded`` / ``draining``) — a
``retry_after`` hint in seconds, the NDJSON spelling of an HTTP 429
with a ``Retry-After`` header::

    {"ok": true, "session_id": "s1"}
    {"ok": false, "error": "queue-full", "message": "...",
     "retry_after": 0.05}

Error-code contract (what clients may dispatch on):

``bad-json`` / ``bad-request``
    The line was not a JSON object, or ``op``/required fields are
    missing or of the wrong type.  The connection stays usable — line
    framing survives garbage *content* (only garbage *framing*, an
    over-long line, forces a close; see ``oversized``).
``unknown-op``
    A well-formed request naming no known endpoint.
``oversized``
    The request line exceeded the server's byte limit.  The server
    cannot know where the over-long line would have ended, so after
    answering it closes the connection; the *server* keeps serving
    other connections.
``queue-full`` / ``quota-exceeded`` / ``draining``
    Admission control: the bounded submit/ingest queue is full, the
    tenant is at its concurrent-session quota, or the server is
    shutting down.  All carry ``retry_after``.
``unknown-session`` / ``unknown-dataset`` / ``invalid``
    The request was understood but names something that does not exist
    or fails domain validation (a non-positive limit, say).

Everything here is pure data-plane: no sockets, no asyncio — which is
what makes the robustness tests able to hammer the parser directly.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

__all__ = [
    "MAX_REQUEST_BYTES",
    "OPS",
    "ProtocolError",
    "parse_request",
    "encode",
    "ok_response",
    "error_response",
]

# one request line may carry at most this many bytes (newline included);
# generous for every real request (the largest is a submit with every
# optional field set, well under 1 KiB) while bounding what one client
# can make the server buffer
MAX_REQUEST_BYTES = 64 * 1024

OPS = ("ping", "submit", "status", "results", "ingest", "stats", "watch", "drain")


class ProtocolError(ValueError):
    """A request that cannot be honored; carries the wire error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def parse_request(line: bytes, max_bytes: int = MAX_REQUEST_BYTES) -> dict:
    """Decode one request line into its payload dict.

    Raises :class:`ProtocolError` with the contract's error codes; the
    caller turns that into an error response.  ``op`` presence and type
    are validated here; op-*specific* fields are validated by the
    endpoint (which knows what it needs).
    """
    if len(line) > max_bytes:
        raise ProtocolError(
            "oversized",
            f"request line of {len(line)} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("bad-json", f"request is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-request",
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("bad-request", "request needs a string 'op' field")
    return payload


def encode(response: Mapping[str, Any]) -> bytes:
    """One response as a compact, newline-terminated JSON line.

    ``sort_keys`` keeps every response byte-deterministic — the property
    the load benchmark's decision-stream parity check leans on when it
    compares served results byte-for-byte with an in-process run.
    """
    return (
        json.dumps(response, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def ok_response(**fields: Any) -> dict:
    return {"ok": True, **fields}


def error_response(
    code: str, message: str, retry_after: float | None = None
) -> dict:
    body: dict[str, Any] = {"ok": False, "error": code, "message": message}
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body
