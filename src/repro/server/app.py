"""The asyncio front door: a TCP server around one :class:`QueryService`.

Everything the serving stack promises — per-session decision streams
that depend only on the session's own seed and step count, replay-based
snapshots, a shared detection cache — survives putting a network in
front of it because the async layer owns **only I/O**:

* connection handlers parse newline-delimited JSON requests
  (:mod:`repro.server.protocol`) and answer read-only ops (``status``,
  ``results``, ``stats``, ``ping``) directly — safe because asyncio is
  cooperative and :meth:`QueryService.tick` never yields mid-call, so a
  read can never observe a half-applied tick;
* mutating ops (``submit``, ``ingest``) are enqueued on a **bounded
  admission queue** and applied by the tick-loop task, in arrival
  order, between ticks — the service itself stays single-threaded and
  its tick loop byte-deterministic;
* when the queue is full, a tenant is at its concurrent-session quota,
  or the server is draining, admission answers an explicit 429-style
  reject with a ``retry_after`` hint instead of queueing unboundedly —
  backpressure is part of the protocol, not an accident of TCP buffers.

Graceful drain (SIGTERM/SIGINT, or the ``drain`` op): stop admitting,
apply the commands already accepted, finish the tick in flight, persist
every session snapshot (and the tenant ledger) to the state directory,
and exit cleanly.  A restarted server restores those snapshots through
the existing replay machinery, so every session resumes bit-identically
— the network tier adds no new state the replay contract does not
already cover.

Telemetry (``repro_server_*``; observational only, like every layer):
request/accept/reject counters, inflight-connection and queue-depth
gauges, and a submit-to-first-result histogram — the metric the
closed-loop load benchmark gates at p99.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

from .. import telemetry
from ..telemetry.history import SnapshotHistory
from ..telemetry.registry import parse_series_key
from ..serving import state as serving_state
from ..serving import ingest as serving_ingest
from ..serving.ingest import IngestEntry
from ..serving.service import QueryService
from ..video.repository import VideoRepository, empty_repository
from .protocol import (
    MAX_REQUEST_BYTES,
    OPS,
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_request,
)

__all__ = ["ServerConfig", "AsyncQueryServer", "restore_state", "TENANTS_FILENAME"]

TENANTS_FILENAME = "tenants.json"

_REJECT_REASONS = ("queue-full", "quota-exceeded", "draining")


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the network tier (the service has its own, separately).

    ``max_queue`` bounds the admission queue — submits and ingests
    waiting for the tick loop; past it, requests are rejected with
    ``queue-full`` + ``retry_after``.  ``tenant_quota`` caps one
    tenant's concurrent non-terminal sessions (queued submits count);
    ``None`` disables quotas.  ``idle_poll`` is how long the tick loop
    sleeps when there is neither queued work nor a schedulable session
    — purely a liveness knob, it cannot affect any session's decisions.

    ``history_capacity`` / ``history_interval`` size the telemetry
    time-series ring behind the ``watch`` op: at most that many samples,
    recorded between ticks no more often than the interval.  Recording
    only reads snapshots — another observational surface, never an
    input to any session's decisions.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port from .address
    max_queue: int = 64
    tenant_quota: int | None = None
    max_request_bytes: int = MAX_REQUEST_BYTES
    retry_after: float = 0.05
    idle_poll: float = 0.02
    history_capacity: int = 120
    history_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise ValueError("tenant_quota must be at least 1")
        if self.max_request_bytes < 1024:
            raise ValueError("max_request_bytes must be at least 1024")
        if self.retry_after <= 0 or self.idle_poll <= 0:
            raise ValueError("retry_after and idle_poll must be positive")
        if self.history_capacity < 2:
            raise ValueError("history_capacity must be at least 2")
        if self.history_interval < 0:
            raise ValueError("history_interval must be non-negative")


def restore_state(
    service: QueryService,
    state_dir,
    base_seed: int,
    dataset_factory: Callable[[str], VideoRepository] | None = None,
) -> int:
    """Load a state directory into a fresh service: replay the ingest
    journal (so horizon-logged snapshots see the clip sequence their
    live runs absorbed), then restore every session snapshot.  Returns
    the journal cursor the server should continue ingesting from."""
    factory = dataset_factory if dataset_factory is not None else empty_repository
    cursor = serving_ingest.apply_journal(
        service, state_dir, base_seed, 0, on_missing_dataset=factory
    )
    for snap in serving_state.load_snapshots(state_dir):
        try:
            service.repository(snap.dataset)
        except KeyError:
            service.register(snap.dataset, factory(snap.dataset))
        service.restore(snap)
    return cursor


class AsyncQueryServer:
    """One listening socket, one admission queue, one tick-loop task.

    Parameters
    ----------
    service:
        The :class:`QueryService` to front.  After :meth:`start`, the
        loop task owns every mutation; reads stay safe because nothing
        here ever awaits while the service is mid-mutation.
    config:
        Network-tier knobs; see :class:`ServerConfig`.
    state_dir:
        When given, drain persists session snapshots + the tenant
        ledger there (and ``ingest`` ops are journaled there first, so
        a restart re-materializes identical footage).  ``None`` runs a
        purely in-memory server — fine for tests, no restart story.
    base_seed / journal_cursor / dataset_factory:
        Ingest determinism: the seed journal replay mixes into clip
        content, the index the next journal entry will get, and how to
        build a repository for a dataset name the service has not seen.
    """

    def __init__(
        self,
        service: QueryService,
        config: ServerConfig | None = None,
        state_dir=None,
        base_seed: int = 0,
        journal_cursor: int = 0,
        dataset_factory: Callable[[str], VideoRepository] | None = None,
    ):
        self._service = service
        self._config = config if config is not None else ServerConfig()
        self._state_dir = state_dir
        self._base_seed = base_seed
        self._journal_cursor = journal_cursor
        self._dataset_factory = (
            dataset_factory if dataset_factory is not None else empty_repository
        )
        # admission queue: (kind, payload, future) applied FIFO by the
        # tick loop.  A deque + wake event (not asyncio.Queue) because
        # rejection must be synchronous in the handler — backpressure
        # that parks the client in put() would just move the unbounded
        # buffer into the event loop
        self._pending: deque[tuple[str, dict, asyncio.Future]] = deque()
        self._wake = asyncio.Event()
        self._draining = False
        self._drained = asyncio.Event()
        self._tenants: dict[str, str] = {}  # session_id -> tenant label
        self._queued_by_tenant: dict[str, int] = {}
        # sessions admitted but yet to yield their first result:
        # session_id -> perf_counter at admission (drives the
        # submit-to-first-result histogram)
        self._awaiting_first: dict[str, float] = {}
        self._counts = {
            "accepted": 0, "rejected": 0, "requests": 0,
            "protocol_errors": 0, "connections": 0,
        }
        self._server: asyncio.AbstractServer | None = None
        self._loop_task: asyncio.Task | None = None
        self._fatal: BaseException | None = None
        self._address: tuple[str, int] | None = None
        self._tel_memo: tuple | None = None
        self._history = SnapshotHistory(capacity=self._config.history_capacity)
        self._history_last = float("-inf")
        if state_dir is not None:
            self._tenants = _load_tenants(state_dir)

    # ------------------------------------------------------------ lifecycle

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — read after :meth:`start` (the
        config's port 0 means "let the kernel pick")."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    @property
    def service(self) -> QueryService:
        return self._service

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> tuple[str, int]:
        """Bind the listener and spawn the tick-loop task."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_conn,
            self._config.host,
            self._config.port,
            # the stream limit is the oversized-request guard: readline
            # raises before buffering more than one legal line's bytes
            limit=self._config.max_request_bytes + 2,
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._loop_task = asyncio.ensure_future(self._run_loop())
        return self._address

    def request_drain(self) -> None:
        """Begin a graceful shutdown (idempotent; signal-handler safe
        when called from the server's own event loop thread): stop
        admitting, finish what was accepted, persist, stop."""
        self._draining = True
        self._wake.set()

    async def wait_drained(self) -> None:
        """Block until the drain (requested or future) has fully landed:
        queue applied, final tick done, snapshots persisted."""
        await self._drained.wait()

    async def run_until_drained(self) -> None:
        """The serve-forever entry point the CLI awaits: runs until a
        drain request completes, then tears the listener down.  An
        exception that killed the tick loop (or the final persist)
        re-raises here, after the listener is down."""
        if self._server is None:
            await self.start()
        await self.wait_drained()
        self._server.close()
        await self._server.wait_closed()
        if self._fatal is not None:
            raise self._fatal

    # ------------------------------------------------------------- tick loop

    async def _run_loop(self) -> None:
        """Apply admitted commands, tick while there is work, idle-poll
        otherwise; on drain, settle everything and persist."""
        try:
            while True:
                self._apply_commands()
                if self._draining and not self._pending:
                    break
                if self._service.schedulable_sessions():
                    self._service.tick()
                    self._note_first_results()
                    self._record_history()
                    # yield so connection handlers run between ticks —
                    # the whole fairness story of the cooperative design
                    await asyncio.sleep(0)
                else:
                    self._wake.clear()
                    # re-check after clearing: a handler may have queued
                    # between the drain check and here
                    if self._pending or self._draining:
                        continue
                    try:
                        await asyncio.wait_for(
                            self._wake.wait(), self._config.idle_poll
                        )
                    except asyncio.TimeoutError:
                        pass
        except BaseException as exc:  # noqa: BLE001 — a dead tick loop
            # must still persist, settle waiters, and mark itself drained;
            # the exception re-raises from run_until_drained
            self._fatal = exc
        finally:
            try:
                self._persist()
            except BaseException as exc:  # noqa: BLE001
                if self._fatal is None:
                    self._fatal = exc
            # commands admitted but never applied: fail them explicitly
            # rather than leaving their clients awaiting forever
            while self._pending:
                _, _, future = self._pending.popleft()
                if not future.done():
                    future.set_result(
                        error_response("internal", "server loop terminated")
                    )
            self._drained.set()

    def _apply_commands(self) -> None:
        while self._pending:
            kind, payload, future = self._pending.popleft()
            tenant = _tenant_of(payload)
            self._queued_by_tenant[tenant] = self._queued_by_tenant.get(tenant, 1) - 1
            try:
                if kind == "submit":
                    response = self._apply_submit(payload)
                else:
                    response = self._apply_ingest(payload)
            except ProtocolError as exc:
                response = error_response(exc.code, str(exc))
            except Exception as exc:  # noqa: BLE001 — one bad command
                # must never kill the loop that serves everyone else
                response = error_response(
                    "internal", f"{type(exc).__name__}: {exc}"
                )
            if not future.done():
                future.set_result(response)
        inst = self._instruments()
        if inst is not None:
            inst["queue_depth"].set(len(self._pending))

    def _apply_submit(self, payload: dict) -> dict:
        dataset = _str_field(payload, "dataset")
        category = _str_field(payload, "category")
        tenant = _tenant_of(payload)
        kwargs = {
            "limit": _int_field(payload, "limit"),
            "max_samples": _int_field(payload, "max_samples"),
            "priority": _num_field(payload, "priority", default=1.0),
            "seed": _int_field(payload, "seed", minimum=0),
            "batch_size": _int_field(payload, "batch_size"),
            "follow": bool(payload.get("follow", False)),
            # warm-start replays whatever the cache holds *at admission*,
            # which depends on arrival timing; parity workloads submit
            # warm_start=false so decisions are pure functions of the seed
            "warm_start": bool(payload.get("warm_start", True)),
        }
        if kwargs["batch_size"] is None:
            del kwargs["batch_size"]
        try:
            try:
                session_id = self._service.submit(dataset, category, **kwargs)
            except KeyError:
                if not kwargs["follow"]:
                    raise
                # a follow query may precede its footage: materialize the
                # dataset (an empty live repository by default) the same
                # way an ingest for it would — the CLI's live-dataset
                # semantics, reachable over the wire
                self._service.register(dataset, self._dataset_factory(dataset))
                session_id = self._service.submit(dataset, category, **kwargs)
        except KeyError as exc:
            raise ProtocolError("unknown-dataset", str(exc)) from exc
        except ValueError as exc:
            raise ProtocolError("invalid", str(exc)) from exc
        self._tenants[session_id] = tenant
        self._awaiting_first[session_id] = time.perf_counter()
        self._counts["accepted"] += 1
        inst = self._instruments()
        if inst is not None:
            inst["accepted"].inc()
        return ok_response(session_id=session_id, tenant=tenant)

    def _apply_ingest(self, payload: dict) -> dict:
        try:
            entry = IngestEntry(
                dataset=_str_field(payload, "dataset"),
                frames=_int_field(payload, "frames", required=True),
                clips=_int_field(payload, "clips", default=1),
                category=(
                    None if payload.get("category") is None
                    else _str_field(payload, "category")
                ),
                instances=_int_field(payload, "instances", default=0, minimum=0),
                mean_duration=_num_field(payload, "mean_duration", default=60.0),
                fps=_num_field(payload, "fps"),
            )
        except ValueError as exc:
            raise ProtocolError("invalid", str(exc)) from exc
        # durability first: the journal is what a restarted server
        # replays, so footage must hit it before any session sees a
        # frame of it — otherwise restored sessions would replay against
        # a world the dead server invented
        if self._state_dir is not None:
            serving_ingest.append_entry(self._state_dir, entry)
            self._journal_cursor = serving_ingest.apply_journal(
                self._service,
                self._state_dir,
                self._base_seed,
                self._journal_cursor,
                on_missing_dataset=self._dataset_factory,
            )
        else:
            try:
                self._service.repository(entry.dataset)
            except KeyError:
                self._service.register(
                    entry.dataset, self._dataset_factory(entry.dataset)
                )
            serving_ingest.apply_entry(
                self._service, entry, self._journal_cursor, self._base_seed
            )
            self._journal_cursor += 1
        return ok_response(
            dataset=entry.dataset,
            frames=entry.frames * entry.clips,
            entry_index=self._journal_cursor - 1,
        )

    def _note_first_results(self) -> None:
        """Settle the submit-to-first-result clock for sessions that just
        produced (or can no longer produce) their first result."""
        if not self._awaiting_first:
            return
        sessions = self._service.sessions
        inst = self._instruments()
        now = time.perf_counter()
        for session_id in list(self._awaiting_first):
            session = sessions.get(session_id)
            if session is None:
                del self._awaiting_first[session_id]
                continue
            if session.results_found > 0:
                started = self._awaiting_first.pop(session_id)
                if inst is not None:
                    inst["first_result"].observe(now - started)
            elif session.state.terminal:
                # exhausted/cancelled without a result: no observation —
                # the histogram measures time-to-result, not time-to-fate
                del self._awaiting_first[session_id]

    def _persist(self) -> None:
        if self._state_dir is None:
            return
        serving_state.save_sessions(self._service, self._state_dir)
        _save_tenants(self._state_dir, self._tenants)
        self._service.cache.flush()

    # ------------------------------------------------------------ admission

    def _active_tenant_sessions(self, tenant: str) -> int:
        live = sum(
            1
            for session_id, owner in self._tenants.items()
            if owner == tenant
            and (session := self._service.sessions.get(session_id)) is not None
            and not session.state.terminal
        )
        return live + self._queued_by_tenant.get(tenant, 0)

    async def _admit(self, kind: str, payload: dict) -> dict:
        inst = self._instruments()
        if self._draining:
            return self._reject("draining", "server is draining", inst)
        if len(self._pending) >= self._config.max_queue:
            return self._reject(
                "queue-full",
                f"admission queue is full ({self._config.max_queue} waiting)",
                inst,
            )
        tenant = _tenant_of(payload)
        if (
            kind == "submit"
            and self._config.tenant_quota is not None
            and self._active_tenant_sessions(tenant) >= self._config.tenant_quota
        ):
            return self._reject(
                "quota-exceeded",
                f"tenant {tenant!r} is at its quota of "
                f"{self._config.tenant_quota} concurrent sessions",
                inst,
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((kind, payload, future))
        self._queued_by_tenant[tenant] = self._queued_by_tenant.get(tenant, 0) + 1
        if inst is not None:
            inst["queue_depth"].set(len(self._pending))
        self._wake.set()
        return await future

    def _reject(self, reason: str, message: str, inst) -> dict:
        self._counts["rejected"] += 1
        if inst is not None:
            inst["rejected"][reason].inc()
        return error_response(reason, message, retry_after=self._config.retry_after)

    # ----------------------------------------------------------- connections

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._counts["connections"] += 1
        inst = self._instruments()
        if inst is not None:
            inst["connections"].inc()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # the stream limit tripped: an over-long line whose
                    # end we can no longer find.  Answer, then close —
                    # framing on this connection is unrecoverable, the
                    # server itself is unharmed.
                    self._count_protocol_error("oversized", inst)
                    writer.write(encode(error_response(
                        "oversized",
                        f"request line exceeds "
                        f"{self._config.max_request_bytes} bytes",
                    )))
                    await writer.drain()
                    break
                if not line:
                    break  # clean EOF between requests
                if not line.endswith(b"\n"):
                    break  # peer died mid-request; nothing to answer
                try:
                    payload = parse_request(line, self._config.max_request_bytes)
                except ProtocolError as exc:
                    self._count_protocol_error(exc.code, inst)
                    response: Mapping = error_response(exc.code, str(exc))
                else:
                    response = await self._dispatch(payload)
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass  # peer vanished; its sessions live on server-side
        finally:
            if inst is not None:
                inst["connections"].dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass  # teardown may cancel the close wait; socket is closed

    async def _dispatch(self, payload: dict) -> dict:
        op = str(payload["op"])
        self._counts["requests"] += 1
        inst = self._instruments()
        if inst is not None:
            # op is a label: clamp unknown names to one bucket so a
            # misbehaving client cannot mint unbounded series
            inst["requests"][op if op in OPS else "unknown"].inc()
        try:
            if op == "ping":
                return ok_response(pong=True)
            if op == "status":
                return self._op_status(payload)
            if op == "results":
                return self._op_results(payload)
            if op == "stats":
                return self._op_stats()
            if op == "watch":
                return self._op_watch()
            if op == "drain":
                self.request_drain()
                return ok_response(draining=True)
            if op in ("submit", "ingest"):
                return await self._admit(op, payload)
        except ProtocolError as exc:
            self._count_protocol_error(exc.code, inst)
            return error_response(exc.code, str(exc))
        self._count_protocol_error("unknown-op", inst)
        return error_response(
            "unknown-op", f"unknown op {op!r}; known: {', '.join(OPS)}"
        )

    def _op_status(self, payload: dict) -> dict:
        session_id = payload.get("session_id")
        if session_id is None:
            return ok_response(
                sessions=[s.to_dict() for s in self._service.statuses()]
            )
        try:
            status = self._service.status(str(session_id))
        except KeyError as exc:
            raise ProtocolError("unknown-session", str(exc)) from exc
        return ok_response(session=status.to_dict())

    def _op_results(self, payload: dict) -> dict:
        session_id = payload.get("session_id")
        if not isinstance(session_id, str):
            raise ProtocolError("bad-request", "results needs a 'session_id'")
        try:
            results = self._service.results(session_id)
        except KeyError as exc:
            raise ProtocolError("unknown-session", str(exc)) from exc
        return ok_response(results=results)

    def _op_stats(self) -> dict:
        sessions = self._service.sessions
        stats = {
            "requests": self._counts["requests"],
            "accepted": self._counts["accepted"],
            "rejected": self._counts["rejected"],
            "protocol_errors": self._counts["protocol_errors"],
            "connections_total": self._counts["connections"],
            "queue_depth": len(self._pending),
            "sessions": len(sessions),
            "sessions_active": sum(
                1 for s in sessions.values() if not s.state.terminal
            ),
            "ticks": self._service.ticks,
            "detector_calls": self._service.detector_calls,
            "draining": self._draining,
        }
        # with telemetry on, the response carries the *fleet* snapshot —
        # worker processes harvested just now, so one stats op shows
        # every layer, including per-shard worker cache tiering
        snapshot = self._fleet_snapshot()
        if snapshot is not None:
            stats["metrics"] = snapshot
        return ok_response(stats=stats)

    def _op_watch(self) -> dict:
        """The live dashboard feed behind ``repro top``: current server
        counters, per-tenant session states, per-shard worker summaries,
        and windowed deltas/rates from the between-ticks history ring.
        Read-only over snapshots, like every observability surface."""
        sessions = self._service.sessions
        tenants: dict[str, dict[str, int]] = {}
        for session_id, session in sessions.items():
            tenant = self._tenants.get(session_id, "default")
            states = tenants.setdefault(tenant, {})
            state = session.state.value
            states[state] = states.get(state, 0) + 1
        snapshot = self._fleet_snapshot()
        return ok_response(
            watch={
                "server": {
                    "queue_depth": len(self._pending),
                    "draining": self._draining,
                    "requests": self._counts["requests"],
                    "accepted": self._counts["accepted"],
                    "rejected": self._counts["rejected"],
                    "protocol_errors": self._counts["protocol_errors"],
                    "sessions": len(sessions),
                    "sessions_active": sum(
                        1 for s in sessions.values() if not s.state.terminal
                    ),
                    "ticks": self._service.ticks,
                    "detector_calls": self._service.detector_calls,
                },
                "tenants": {t: tenants[t] for t in sorted(tenants)},
                "shards": _shard_summary(snapshot) if snapshot else {},
                "history": self._history.summary(),
                "slow_queries": (
                    len(snapshot.get("slow_queries", ())) if snapshot else 0
                ),
                "telemetry": snapshot is not None,
            }
        )

    def _fleet_snapshot(self) -> dict | None:
        """Harvest worker registries (sharded execution only), then one
        merged snapshot of every layer; ``None`` with telemetry off."""
        tel = telemetry.get()
        if not tel.enabled:
            return None
        self._service.collect_worker_telemetry()
        return tel.snapshot()

    def _record_history(self) -> None:
        """One history sample between ticks, throttled by the config's
        interval so a hot tick loop cannot turn sampling into overhead."""
        tel = telemetry.get()
        if not tel.enabled:
            return
        now = time.monotonic()
        if now - self._history_last < self._config.history_interval:
            return
        self._history_last = now
        self._service.collect_worker_telemetry()
        self._history.record(tel.snapshot(), stamp=now)

    def _count_protocol_error(self, code: str, inst) -> None:
        self._counts["protocol_errors"] += 1
        if inst is not None:
            inst["protocol_errors"].inc()

    # ------------------------------------------------------------- telemetry

    def _instruments(self) -> dict | None:
        """Memoized ``repro_server_*`` handles, rebuilt per pipeline
        (identity-checked like ``QueryService._tick_instruments``)."""
        tel = telemetry.get()
        if not tel.enabled:
            return None
        memo = self._tel_memo
        if memo is None or memo[0] is not tel:
            handles = {
                "requests": {
                    op: tel.counter("repro_server_requests_total", {"op": op})
                    for op in (*OPS, "unknown")
                },
                "accepted": tel.counter("repro_server_accepted_total"),
                "rejected": {
                    reason: tel.counter(
                        "repro_server_rejected_total", {"reason": reason}
                    )
                    for reason in _REJECT_REASONS
                },
                "protocol_errors": tel.counter(
                    "repro_server_protocol_errors_total"
                ),
                "connections": tel.gauge("repro_server_inflight_connections"),
                "queue_depth": tel.gauge("repro_server_queue_depth_requests"),
                "first_result": tel.histogram(
                    "repro_server_submit_to_first_result_seconds"
                ),
            }
            self._tel_memo = memo = (tel, handles)
        return memo[1]


# ------------------------------------------------------------ field helpers

def _shard_summary(snapshot: dict) -> dict[str, dict]:
    """Fold a merged fleet snapshot into per-shard scalar summaries.

    Worker series carry a ``shard_id`` label (stamped at ingest by the
    coordinator); everything else is coordinator-local and skipped.  The
    summary adds a derived ``hit_rate`` from the worker cache counters —
    the number ``repro top`` renders per shard.
    """
    shards: dict[str, dict[str, float]] = {}
    for section in ("counters", "gauges"):
        for key, value in snapshot.get(section, {}).items():
            try:
                name, labels = parse_series_key(key)
            except ValueError:
                continue
            shard = labels.get("shard_id")
            if shard is None:
                continue
            bucket = shards.setdefault(shard, {})
            bucket[name] = bucket.get(name, 0) + value
    for bucket in shards.values():
        hits = bucket.get("repro_worker_cache_hits_total", 0)
        misses = bucket.get("repro_worker_cache_misses_total", 0)
        lookups = hits + misses
        bucket["hit_rate"] = (hits / lookups) if lookups else 0.0
    return {shard: shards[shard] for shard in sorted(shards)}


def _tenant_of(payload: dict) -> str:
    tenant = payload.get("tenant", "default")
    return tenant if isinstance(tenant, str) and tenant else "default"


def _str_field(payload: dict, name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            "bad-request", f"{payload.get('op', '?')} needs a string {name!r}"
        )
    return value


def _int_field(
    payload: dict,
    name: str,
    default: int | None = None,
    minimum: int = 1,
    required: bool = False,
) -> int | None:
    value = payload.get(name)
    if value is None:
        if required:
            raise ProtocolError("bad-request", f"missing required field {name!r}")
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError("bad-request", f"{name!r} must be an integer")
    if value < minimum:
        raise ProtocolError("bad-request", f"{name!r} must be >= {minimum}")
    return value


def _num_field(
    payload: dict, name: str, default: float | None = None
) -> float | None:
    value = payload.get(name)
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("bad-request", f"{name!r} must be a number")
    return float(value)


# --------------------------------------------------------- tenant ledger

def _tenants_path(state_dir):
    import pathlib

    return pathlib.Path(state_dir) / TENANTS_FILENAME


def _load_tenants(state_dir) -> dict[str, str]:
    import json

    path = _tenants_path(state_dir)
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    return {str(k): str(v) for k, v in data.items()}


def _save_tenants(state_dir, tenants: Mapping[str, str]) -> None:
    import json

    path = _tenants_path(state_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(dict(sorted(tenants.items())), indent=2) + "\n",
        encoding="utf-8",
    )
