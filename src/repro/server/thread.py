"""Host an :class:`AsyncQueryServer` in a background thread.

The server's own design is one event loop, one thread — this module is
for the *embedder*: tests and the load benchmark need a live server
while the test body stays synchronous.  The thread runs the event loop;
the owning thread talks to it only through the socket (clients) or
``loop.call_soon_threadsafe`` (drain).  Nothing else crosses the
boundary, so the single-threaded determinism story is untouched.

Pass either a built server or a zero-argument factory.  A factory is
*called on the loop thread* — required whenever the service holds
thread-bound resources (the sqlite cache backend refuses cross-thread
use), and the right default habit regardless::

    with ServerThread(lambda: AsyncQueryServer(make_service())) as host:
        client = ServingClient(*host.address)
        ...
    # exiting the block drains the server and joins the thread
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Union

from .app import AsyncQueryServer

__all__ = ["ServerThread"]


class ServerThread:
    """Run one server's event loop in a daemon thread.

    ``__enter__`` blocks until the listener is bound (so ``.address``
    is immediately usable); ``__exit__`` requests a drain and joins.
    A failure on the loop thread — at startup (port in use, a factory
    error) or during the run (a fatal tick-loop exception) — re-raises
    in the owning thread from ``start()`` or ``join()``.
    """

    def __init__(
        self,
        server: Union[AsyncQueryServer, Callable[[], AsyncQueryServer]],
        join_timeout: float = 30.0,
    ):
        self._source = server
        self._join_timeout = join_timeout
        self._server: AsyncQueryServer | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._address: tuple[str, int] | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise RuntimeError("server thread is not running")
        return self._address

    @property
    def server(self) -> AsyncQueryServer:
        if self._server is None:
            raise RuntimeError("server thread is not running")
        return self._server

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._address is None:  # startup failed before binding
            self._thread.join(timeout=self._join_timeout)
            error = self._error
            raise error if error is not None else RuntimeError(
                "server thread failed to start"
            )
        return self

    def drain(self) -> None:
        """Ask the server to drain, from any thread (idempotent)."""
        loop, server = self._loop, self._server
        if loop is not None and server is not None and loop.is_running():
            loop.call_soon_threadsafe(server.request_drain)

    def join(self) -> None:
        """Drain, wait for the loop thread, re-raise its failure if any."""
        self.drain()
        if self._thread is not None:
            self._thread.join(timeout=self._join_timeout)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not drain in time")
        if self._error is not None:
            raise self._error

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced by join()
            self._error = exc
        finally:
            self._ready.set()  # unblock start() on pre-bind failures

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = self._source() if callable(self._source) else self._source
        self._server = server
        await server.start()
        self._address = server.address
        self._ready.set()
        try:
            await server.run_until_drained()
        finally:
            # a factory-built service was born on this thread; close it
            # here too (sqlite handles are thread-bound).  A pre-built
            # server's service belongs to whoever built it.
            if callable(self._source):
                server.service.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.join()
