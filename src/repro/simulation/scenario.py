"""Seed-driven scenario generation for the simulation harness.

A :class:`Scenario` is a complete, declarative description of one
randomized end-to-end run: what footage exists (and when it arrives),
which queries are submitted (and when), which faults strike (and when),
and every execution-layer knob (scheduler, budget, batch sizes, workers,
cache backend, detector noise).  Scenarios are plain frozen dataclasses
— JSON-able, diffable, and **pure functions of one integer seed** — so a
failing run is fully described by the seed that generated it.

:func:`generate_scenario` draws a scenario from a profile's bounds.  The
profiles trade scale for wall-clock: ``quick`` is the CI smoke sweep
(hundreds of scenarios per minute), ``default`` the local / nightly
sweep, ``stress`` the large-workload variant with real (if tiny)
latency spikes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

from ..core.rng import DecisionRng

__all__ = [
    "ClipPlan",
    "DatasetPlan",
    "SessionPlan",
    "IngestPlan",
    "FaultPlan",
    "OpPlan",
    "Scenario",
    "PROFILES",
    "generate_scenario",
    "sharded_variant",
]

# categories the generator draws from; real names keep logs readable
_CATEGORIES = ("car", "bus", "person", "bicycle")

# fault kinds the runner understands (see runner._apply_fault);
# worker_kill is sharded-execution only: it hard-kills one shard worker
# process per dataset, proving the coordinator's respawn-from-spec path
FAULT_KINDS = (
    "crash_restart",
    "cache_drop",
    "detector_error",
    "latency_spike",
    "latency_clear",
    "journal_torn_write",
    "worker_kill",
)


@dataclass(frozen=True)
class ClipPlan:
    """One initial clip of a dataset: length plus its ground truth."""

    frames: int
    category: str | None = None
    instances: int = 0
    mean_duration: float = 40.0
    skew_fraction: float | None = None


@dataclass(frozen=True)
class DatasetPlan:
    """One dataset and its footage at scenario start (may be empty: a
    live dataset whose content arrives only through mid-run ingestion)."""

    name: str
    clips: tuple[ClipPlan, ...] = ()

    def categories(self) -> list[str]:
        out = []
        for clip in self.clips:
            if clip.category is not None and clip.instances > 0:
                if clip.category not in out:
                    out.append(clip.category)
        return out


@dataclass(frozen=True)
class SessionPlan:
    """One query submission and the tick at which it arrives."""

    at_tick: int
    dataset: str
    category: str
    limit: int | None = None
    max_samples: int | None = None
    priority: float = 1.0
    batch_size: int = 1
    follow: bool = False
    warm_start: bool = True


@dataclass(frozen=True)
class IngestPlan:
    """Mid-run footage arrival: one journal entry appended at a tick."""

    at_tick: int
    dataset: str
    frames: int
    clips: int = 1
    category: str | None = None
    instances: int = 0
    mean_duration: float = 40.0
    skew_fraction: float | None = None


@dataclass(frozen=True)
class FaultPlan:
    """One injected fault.  ``value`` is kind-specific: calls to fail for
    ``detector_error``, seconds for ``latency_spike``, unused otherwise."""

    at_tick: int
    kind: str
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass(frozen=True)
class OpPlan:
    """A user lifecycle action against the n-th submitted session."""

    at_tick: int
    op: str  # pause | resume | cancel
    session_index: int


@dataclass(frozen=True)
class Scenario:
    """Everything one simulated run needs, derived from one seed."""

    seed: int
    profile: str
    datasets: tuple[DatasetPlan, ...]
    sessions: tuple[SessionPlan, ...]
    ingests: tuple[IngestPlan, ...] = ()
    faults: tuple[FaultPlan, ...] = ()
    ops: tuple[OpPlan, ...] = ()
    scheduler: str = "round-robin"
    frames_per_tick: int = 16
    ticks: int = 12
    chunk_frames: int | None = None
    workers: int = 1
    detector_latency: float = 0.0
    cache_backend: str = "memory"  # memory | sqlite | jsonl
    detector: str = "oracle"  # oracle | noisy
    miss_rate: float = 0.0
    false_positive_rate: float = 0.0
    execution: str = "local"  # local | sharded
    shards: int = 1  # worker processes under sharded execution

    @property
    def has_faults(self) -> bool:
        return bool(self.faults)

    def fault_kinds(self) -> list[str]:
        return sorted({f.kind for f in self.faults})

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class Profile:
    """Generator bounds (inclusive ranges unless noted)."""

    datasets: tuple[int, int] = (1, 2)
    clips_per_dataset: tuple[int, int] = (1, 4)
    clip_frames: tuple[int, int] = (60, 240)
    instances_per_clip: tuple[int, int] = (1, 6)
    sessions: tuple[int, int] = (1, 3)
    ticks: tuple[int, int] = (5, 16)
    frames_per_tick: tuple[int, int] = (4, 24)
    batch_size: tuple[int, int] = (1, 4)
    limit: tuple[int, int] = (2, 8)
    max_samples: tuple[int, int] = (20, 120)
    ingests: tuple[int, int] = (0, 3)
    faults: tuple[int, int] = (0, 3)
    ops: tuple[int, int] = (0, 2)
    workers: tuple[int, int] = (1, 2)
    max_latency: float = 0.0  # latency-spike ceiling, seconds
    backends: tuple[str, ...] = ("memory", "memory", "sqlite", "jsonl")
    noisy_detector_prob: float = 0.25
    sharded_prob: float = 0.0  # chance a scenario runs the sharded backend
    shard_counts: tuple[int, int] = (2, 3)


PROFILES: Mapping[str, Profile] = {
    "quick": Profile(),
    "default": Profile(
        datasets=(1, 3),
        clips_per_dataset=(1, 6),
        clip_frames=(80, 400),
        instances_per_clip=(1, 10),
        sessions=(1, 5),
        ticks=(8, 30),
        frames_per_tick=(4, 40),
        batch_size=(1, 6),
        limit=(2, 12),
        max_samples=(30, 300),
        ingests=(0, 5),
        faults=(0, 4),
        ops=(0, 3),
        workers=(1, 4),
        max_latency=0.0005,
        noisy_detector_prob=0.35,
    ),
    "stress": Profile(
        datasets=(2, 4),
        clips_per_dataset=(2, 10),
        clip_frames=(150, 900),
        instances_per_clip=(1, 20),
        sessions=(2, 8),
        ticks=(15, 60),
        frames_per_tick=(8, 64),
        batch_size=(1, 8),
        limit=(3, 20),
        max_samples=(50, 800),
        ingests=(1, 8),
        faults=(1, 6),
        ops=(0, 4),
        workers=(1, 4),
        max_latency=0.002,
        noisy_detector_prob=0.4,
        sharded_prob=0.25,
        shard_counts=(2, 4),
    ),
}

_SKEW_CHOICES = (None, None, 0.5, 0.25, 1.0 / 32.0)


def _int(rng: DecisionRng, bounds: tuple[int, int]) -> int:
    lo, hi = bounds
    return int(rng.integers(lo, hi + 1))


def generate_scenario(seed: int, profile: str = "default") -> Scenario:
    """The scenario for ``seed`` under ``profile`` — a pure function.

    All randomness flows through one generator in a fixed draw order, so
    the same (seed, profile) always yields the same scenario, on any
    machine — the first half of the harness's replayability contract
    (the second half is the runner's own determinism).
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; options: {sorted(PROFILES)}")
    p = PROFILES[profile]
    rng = DecisionRng((int(seed), 0x51A1))

    # ------------------------------------------------------------- datasets
    datasets: list[DatasetPlan] = []
    for d in range(_int(rng, p.datasets)):
        name = f"cam{d}"
        # the first dataset always starts with footage; later ones may be
        # live (empty until ingestion delivers)
        empty = d > 0 and rng.random() < 0.3
        clips: list[ClipPlan] = []
        if not empty:
            pool = list(rng.choice(_CATEGORIES, size=2, replace=False))
            for _ in range(_int(rng, p.clips_per_dataset)):
                frames = _int(rng, p.clip_frames)
                # bursty ground truth: some clips are object-free, some
                # carry a burst of instances of one category
                if rng.random() < 0.25:
                    clips.append(ClipPlan(frames=frames))
                    continue
                category = str(pool[int(rng.integers(len(pool)))])
                clips.append(
                    ClipPlan(
                        frames=frames,
                        category=category,
                        instances=_int(rng, p.instances_per_clip),
                        mean_duration=float(
                            rng.uniform(5.0, max(6.0, frames / 3.0))
                        ),
                        skew_fraction=_SKEW_CHOICES[
                            int(rng.integers(len(_SKEW_CHOICES)))
                        ],
                    )
                )
        datasets.append(DatasetPlan(name=name, clips=tuple(clips)))

    ticks = _int(rng, p.ticks)

    # -------------------------------------------------------------- ingests
    ingests: list[IngestPlan] = []
    for _ in range(_int(rng, p.ingests)):
        target = datasets[int(rng.integers(len(datasets)))].name
        if rng.random() < 0.15:
            target = "cam-live"  # a dataset nobody knew at startup
        category = str(_CATEGORIES[int(rng.integers(len(_CATEGORIES)))])
        frames = _int(rng, p.clip_frames)
        ingests.append(
            IngestPlan(
                at_tick=int(rng.integers(1, max(2, ticks))),
                dataset=target,
                frames=frames,
                clips=int(rng.integers(1, 3)),
                category=category,
                instances=_int(rng, p.instances_per_clip),
                mean_duration=float(rng.uniform(5.0, max(6.0, frames / 3.0))),
                skew_fraction=_SKEW_CHOICES[int(rng.integers(len(_SKEW_CHOICES)))],
            )
        )
    ingests.sort(key=lambda i: i.at_tick)

    # ------------------------------------------------------------- sessions
    ingested_categories: dict[str, list[str]] = {}
    for ing in ingests:
        if ing.category is not None and ing.instances > 0:
            ingested_categories.setdefault(ing.dataset, [])
            if ing.category not in ingested_categories[ing.dataset]:
                ingested_categories[ing.dataset].append(ing.category)
    sessions: list[SessionPlan] = []
    for _ in range(_int(rng, p.sessions)):
        ds = datasets[int(rng.integers(len(datasets)))]
        initial = ds.categories()
        future = ingested_categories.get(ds.name, [])
        follow = bool(rng.random() < 0.25)
        if initial and (not follow or rng.random() < 0.7):
            category = initial[int(rng.integers(len(initial)))]
        elif future:
            category = future[int(rng.integers(len(future)))]
            follow = True  # the category may not have been recorded yet
        elif initial:
            category = initial[int(rng.integers(len(initial)))]
        else:
            # nothing recorded and nothing scheduled: a follow query that
            # may idle forever — still a legal, invariant-checked run
            category = str(_CATEGORIES[int(rng.integers(len(_CATEGORIES)))])
            follow = True
        limit = _int(rng, p.limit) if rng.random() < 0.6 else None
        max_samples = _int(rng, p.max_samples) if rng.random() < 0.5 else None
        if limit is None and max_samples is None and follow:
            # keep unbounded follow queries from dominating wall-clock
            max_samples = _int(rng, p.max_samples)
        sessions.append(
            SessionPlan(
                at_tick=(
                    0 if rng.random() < 0.6 else int(rng.integers(0, max(1, ticks // 2)))
                ),
                dataset=ds.name,
                category=category,
                limit=limit,
                max_samples=max_samples,
                priority=float(round(rng.uniform(0.5, 4.0), 2)),
                batch_size=_int(rng, p.batch_size),
                follow=follow,
                warm_start=bool(rng.random() < 0.85),
            )
        )
    sessions.sort(key=lambda s: s.at_tick)

    # --------------------------------------------------------------- faults
    faults: list[FaultPlan] = []
    for _ in range(_int(rng, p.faults)):
        kind = FAULT_KINDS[int(rng.integers(4))]  # spikes/clears added below
        at = int(rng.integers(1, max(2, ticks)))
        if kind == "detector_error":
            faults.append(FaultPlan(at, kind, value=float(rng.integers(1, 4))))
        elif kind == "latency_spike":
            if p.max_latency <= 0.0:
                faults.append(FaultPlan(at, "cache_drop"))
            else:
                faults.append(
                    FaultPlan(at, kind, value=float(rng.uniform(0.0, p.max_latency)))
                )
                faults.append(
                    FaultPlan(min(ticks - 1, at + int(rng.integers(1, 4))),
                              "latency_clear")
                )
        else:
            faults.append(FaultPlan(at, kind))
    if rng.random() < 0.2:
        faults.append(
            FaultPlan(int(rng.integers(1, max(2, ticks))), "journal_torn_write")
        )
    faults.sort(key=lambda f: (f.at_tick, FAULT_KINDS.index(f.kind)))

    # ------------------------------------------------------------------ ops
    ops: list[OpPlan] = []
    for _ in range(_int(rng, p.ops)):
        idx = int(rng.integers(len(sessions)))
        at = int(rng.integers(1, max(2, ticks)))
        kind = ("pause", "cancel")[int(rng.integers(2))]
        ops.append(OpPlan(at, kind, idx))
        if kind == "pause":
            ops.append(
                OpPlan(min(ticks - 1, at + int(rng.integers(1, 5))), "resume", idx)
            )
    ops.sort(key=lambda o: (o.at_tick, o.session_index, o.op))

    # --------------------------------------------------------------- knobs
    scheduler = ("round-robin", "priority", "thompson")[int(rng.integers(3))]
    chunk_frames = None if rng.random() < 0.5 else int(rng.integers(40, 200))
    noisy = rng.random() < p.noisy_detector_prob
    scenario = Scenario(
        seed=int(seed),
        profile=profile,
        datasets=tuple(datasets),
        sessions=tuple(sessions),
        ingests=tuple(ingests),
        faults=tuple(faults),
        ops=tuple(ops),
        scheduler=scheduler,
        frames_per_tick=_int(rng, p.frames_per_tick),
        ticks=ticks,
        chunk_frames=chunk_frames,
        workers=_int(rng, p.workers),
        detector_latency=0.0,
        cache_backend=str(p.backends[int(rng.integers(len(p.backends)))]),
        detector="noisy" if noisy else "oracle",
        miss_rate=float(round(rng.uniform(0.02, 0.2), 3)) if noisy else 0.0,
        false_positive_rate=(
            float(round(rng.uniform(0.0, 0.05), 3)) if noisy else 0.0
        ),
    )
    # the sharded-execution draw comes last, and only for profiles that
    # enable it, so profiles with sharded_prob=0 generate bit-identical
    # scenarios to before the knob existed
    if p.sharded_prob > 0.0 and rng.random() < p.sharded_prob:
        scenario = sharded_variant(scenario, _int(rng, p.shard_counts))
    return scenario


def sharded_variant(scenario: Scenario, shards: int) -> Scenario:
    """The sharded twin of ``scenario``: same world, sessions, and
    schedule, executed on the shard-parallel backend.

    In-process detector faults have no seam inside worker processes
    (:class:`~repro.simulation.faults.FlakyDetector` lives in the
    coordinator's process), so they are mapped to their distributed
    analogue: ``detector_error`` and ``latency_spike`` become
    ``worker_kill``, ``latency_clear`` drops.  One ``worker_kill`` is
    always added at a seed-derived tick, so every sharded scenario
    exercises the coordinator's respawn-from-spec path.  ``workers`` is
    forced to 1 — the in-process pool and the sharded backend are
    mutually exclusive by design.
    """
    import dataclasses

    if shards < 1:
        raise ValueError("shards must be at least 1")
    faults: list[FaultPlan] = []
    for fault in scenario.faults:
        if fault.kind in ("detector_error", "latency_spike"):
            faults.append(FaultPlan(fault.at_tick, "worker_kill", value=fault.value))
        elif fault.kind == "latency_clear":
            continue
        else:
            faults.append(fault)
    # the guaranteed kill must land on a tick the runner actually
    # executes (range(ticks)); single-tick scenarios kill at tick 0
    if scenario.ticks > 1:
        kill_tick = 1 + scenario.seed % (scenario.ticks - 1)
    else:
        kill_tick = 0
    faults.append(
        FaultPlan(kill_tick, "worker_kill", value=float(scenario.seed % shards))
    )
    faults.sort(key=lambda f: (f.at_tick, FAULT_KINDS.index(f.kind)))
    return dataclasses.replace(
        scenario,
        execution="sharded",
        shards=int(shards),
        workers=1,
        faults=tuple(faults),
    )

