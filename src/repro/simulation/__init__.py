"""Deterministic simulation testing for the whole serving stack.

The paper's core claim — the adaptive sampler finds distinct instances
with far fewer detector invocations than scanning — has to keep holding
as the system grows batching, caching, snapshots, schedulers, and live
ingestion.  The strongest guard for a stack this stateful is
FoundationDB-style deterministic simulation: generate thousands of
randomized full-stack scenarios from a single seed, inject the faults a
deployment would actually see (crash-restart, cache loss, detector
errors, torn journal writes), and check every run against a brute-force
reference model plus a battery of invariants.  A failure prints one
replayable seed; re-running that seed reproduces the run bit-for-bit.

* :mod:`repro.simulation.scenario` — the scenario model and the
  seed-driven generator (dataset shapes, session mixes, ingestion
  schedules, fault plans, execution matrices);
* :mod:`repro.simulation.faults` — the fault-injection seams
  (:class:`FlakyDetector` and its controller);
* :mod:`repro.simulation.runner` — drives one scenario against a real
  :class:`~repro.serving.service.QueryService` tick by tick, recording a
  deterministic event log;
* :mod:`repro.simulation.oracle` — the reference model: a standalone
  per-session sampler over the same RNG contract, no service, no cache,
  no coalescing;
* :mod:`repro.simulation.invariants` — the checks every run must pass.

The CLI front door is ``python -m repro simulate`` (see
:mod:`repro.cli`); ``tests/test_simulation.py`` runs a smaller sweep in
the unit suite and proves the harness catches deliberately injected
bugs.
"""

from .invariants import InvariantViolation
from .oracle import reference_check
from .runner import SimulationReport, run_scenario
from .scenario import PROFILES, Scenario, generate_scenario

__all__ = [
    "InvariantViolation",
    "PROFILES",
    "Scenario",
    "SimulationReport",
    "generate_scenario",
    "reference_check",
    "run_scenario",
]
