"""Fault-injection seams for the simulation harness.

The faults a deployed service actually sees fall into two groups.
*Process-level* faults — crash-restart, cache loss, torn journal writes —
are injected by the runner directly against the service and its state
directory (they need no hooks).  *Detector-level* faults — transient
errors and latency spikes — need a seam inside the detection stack;
:class:`FlakyDetector` is that seam, installed by the runner's detector
factory so it sits **inside** the service's
:class:`~repro.detection.cache.CachingDetector` and (when workers are
configured) :class:`~repro.detection.execution.ParallelDetector`, exactly
where a real GPU detector would fail.

All faults are armed from the scenario's deterministic fault plan, never
from ambient randomness, so an injected failure strikes the same
detector call in every replay of the same seed.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..detection.detector import Detection, Detector

__all__ = ["FaultError", "FaultController", "FlakyDetector"]


class FaultError(RuntimeError):
    """The injected transient detector failure.

    Deliberately *not* a subclass of any domain error: the serving layer
    promises containment for arbitrary detector exceptions (a failed
    tick loses nothing but the tick in flight), and an exotic type is the
    honest test of that promise.
    """


class FaultController:
    """Shared mutable fault state, flipped by the runner's fault plan.

    ``fail_next(n)`` arms the next ``n`` real detector calls to raise
    :class:`FaultError`; ``latency`` adds a per-call sleep (a simulated
    overload spike).  One controller serves every dataset's detector so
    a fault plan needs no per-dataset bookkeeping.
    """

    def __init__(self) -> None:
        self.latency = 0.0
        self._fail_remaining = 0
        self.faults_raised = 0

    def fail_next(self, calls: int) -> None:
        if calls < 0:
            raise ValueError("calls must be non-negative")
        self._fail_remaining += int(calls)

    @property
    def armed_failures(self) -> int:
        return self._fail_remaining

    def before_detect(self, frame_index: int) -> None:
        """Called by :class:`FlakyDetector` ahead of every real call."""
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            self.faults_raised += 1
            raise FaultError(f"injected detector failure at frame {frame_index}")
        if self.latency > 0.0:
            time.sleep(self.latency)


class FlakyDetector:
    """A detector wrapper that consults a :class:`FaultController`.

    Shares the wrapped detector's ``stats`` object, so invocation
    accounting (the paper's cost metric) keeps counting only calls that
    actually executed — an injected failure charges nothing, exactly
    like a real failed RPC.
    """

    def __init__(self, detector: Detector, controller: FaultController):
        self._detector = detector
        self._controller = controller
        self.stats = detector.stats

    @property
    def wrapped(self) -> Detector:
        return self._detector

    def detect(self, frame_index: int) -> list[Detection]:
        self._controller.before_detect(int(frame_index))
        return self._detector.detect(int(frame_index))

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        return [self.detect(int(f)) for f in frame_indices]
