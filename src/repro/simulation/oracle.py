"""The reference model: one session, brute force, no serving stack.

The serving layer's central theorem is that a session's sampling
decisions are a pure function of its own seed, step count, warm-start
frames, and chunk-set evolution — never of tick boundaries, budget
splits, coalescing, caching, worker pools, restarts, or which other
sessions ran.  This module is the *other side* of that equation: given a
session's snapshot (spec + warm frames + horizon log + step count), it
re-runs the session **standalone** — a bare :class:`ExSample` engine over
an up-front-materialized repository, a fresh detector, no cache, no
scheduler — and :func:`reference_check` demands the decision stream match
the one the full stack logged, frame for frame.

Any hidden coupling anywhere in the stack (a cache that leaks into
decisions, a scheduler that perturbs a session's RNG, a restore that
diverges from the live run, dict-order nondeterminism in coalescing)
shows up here as a first-divergence diff with a replayable seed.

The oracle deliberately re-implements the replay contract rather than
importing the serving layer's replay helpers: a differential test is
only as strong as the independence of its two sides.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.chunking import IncrementalChunker
from ..core.rng import DecisionRng
from ..core.sampler import ExSample
from ..detection.cache import CategoryFilterDetector
from ..detection.detector import Detector
from ..serving.ingest import IngestEntry, RepositoryFeeder, apply_entry
from ..serving.session import SessionSnapshot
from ..tracking.discriminator import OracleDiscriminator
from ..video.repository import VideoRepository, empty_repository
from .invariants import InvariantViolation, check_ground_truth_containment

__all__ = [
    "ReferenceResult",
    "materialize_repositories",
    "reference_run",
    "reference_check",
]


def materialize_repositories(
    dataset_names: Sequence[str],
    entries: Sequence[IngestEntry],
    base_seed: int,
) -> dict[str, VideoRepository]:
    """The world *after* the whole journal: every dataset fully grown.

    This is the up-front materialization the ingestion-parity contract
    references — the same clips and ground truth the live run received
    incrementally, rebuilt in one pass over bare repositories.
    """
    feeder = RepositoryFeeder(
        {name: empty_repository(name) for name in dataset_names}
    )
    for index, entry in enumerate(entries):
        try:
            feeder.repository(entry.dataset)
        except KeyError:
            feeder.register(entry.dataset, empty_repository(entry.dataset))
        apply_entry(feeder, entry, index, base_seed)
    return feeder.repositories


@dataclass
class ReferenceResult:
    """What the standalone re-run produced, ready for comparison.

    The per-step sequences take the history's backend layout — ndarray
    under numpy, plain lists on the fallback; the parity check only
    indexes and measures them, which both support."""

    frames: Sequence[int]  # sampled frame per committed step
    d0: Sequence[int]  # new results per committed step
    results: Sequence[int]  # cumulative results per committed step
    results_found: int
    result_frames: list[int]  # sorted; warm-start and sampled alike
    distinct_true: set[int]
    false_positive_results: int


def reference_run(
    snapshot: SessionSnapshot,
    repository: VideoRepository,
    detector: Detector,
    chunk_frames: int | None,
    use_random_plus: bool = True,
) -> ReferenceResult:
    """Re-run one session from scratch against the materialized world.

    ``detector`` must be content-equivalent to the live run's (same
    ground truth, same noise seed): detection content is a function of
    ``(detector seed, frame, instance)``, so a detector built over the
    fully grown repository reproduces exactly what the live, growing
    repository served — frame indices are immutable under append.
    """
    spec = snapshot.spec
    rng = DecisionRng(spec.seed)
    chunker = IncrementalChunker(
        repository, rng, chunk_frames=chunk_frames, use_random_plus=use_random_plus
    )
    horizon_log = [(int(s), int(h)) for s, h in snapshot.horizons]
    if not horizon_log:
        horizon_log = [(0, repository.horizon)]
    chunks = chunker.take(up_to_horizon=horizon_log[0][1])
    discriminator = OracleDiscriminator()
    engine = ExSample(
        chunks,
        CategoryFilterDetector(detector, spec.category),
        discriminator,
        rng=rng,
        batch_size=spec.batch_size,
    )

    # warm start, brute force: every recorded frame re-detected and fed
    # through the fresh discriminator into the owning chunk's statistics
    warm_result_frames: list[int] = []
    starts = [c.start_frame for c in engine.chunks]
    ends = [c.end_frame for c in engine.chunks]
    for frame in snapshot.warm_start_frames or ():
        frame = int(frame)
        pos = bisect.bisect_right(starts, frame) - 1
        if pos < 0 or frame >= ends[pos]:
            continue  # outside the admission-time chunk spans
        detections = [
            d for d in detector.detect(frame) if d.category == spec.category
        ]
        outcome = discriminator.observe(frame, detections)
        engine.stats.record(pos, outcome.d0, outcome.d1)
        if outcome.d0 > 0:
            warm_result_frames.append(frame)

    def step_to(target: int) -> None:
        while engine.frames_processed < target and not engine.exhausted:
            size = spec.batch_size
            if spec.max_samples is not None:
                size = max(1, min(size, spec.max_samples - engine.frames_processed))
            engine.commit(engine.plan(batch_size=size))

    for at_steps, horizon in horizon_log[1:]:
        step_to(at_steps)
        engine.extend(chunker.take(up_to_horizon=horizon))
    step_to(snapshot.steps_taken)

    sampled_result_frames = [int(f) for f in engine.history.new_result_frames]
    return ReferenceResult(
        frames=engine.history.frame_indices,
        d0=engine.history.d0_counts,
        results=engine.history.results,
        results_found=engine.results_found,
        result_frames=sorted(set(warm_result_frames) | set(sampled_result_frames)),
        distinct_true=discriminator.distinct_true_instances(),
        false_positive_results=discriminator.false_positive_results,
    )


def reference_check(
    seed: int,
    snapshot: SessionSnapshot,
    logged_stream: Sequence[tuple[int, int, int]],
    repository: VideoRepository,
    detector_factory: Callable[[VideoRepository], Detector],
    chunk_frames: int | None,
    use_random_plus: bool = True,
    noisy_detector: bool = False,
) -> ReferenceResult:
    """Oracle parity for one session; raises :class:`InvariantViolation`
    at the first divergence between the stack's logged decision stream
    (``(frame, d0, results)`` per committed step) and the standalone
    re-run, then applies the ground-truth containment invariants to the
    reference's own results.
    """
    sid = snapshot.session_id
    reference = reference_run(
        snapshot,
        repository,
        detector_factory(repository),
        chunk_frames,
        use_random_plus=use_random_plus,
    )
    if len(reference.frames) != len(logged_stream):
        raise InvariantViolation(
            seed,
            f"session {sid}: oracle re-run committed {len(reference.frames)} "
            f"steps, the service logged {len(logged_stream)}",
        )
    for i, (frame, d0, results) in enumerate(logged_stream):
        got = (int(reference.frames[i]), int(reference.d0[i]), int(reference.results[i]))
        if got != (int(frame), int(d0), int(results)):
            raise InvariantViolation(
                seed,
                f"session {sid}: decision stream diverges at step {i + 1}: "
                f"service logged frame={frame} d0={d0} results={results}, "
                f"oracle computed frame={got[0]} d0={got[1]} results={got[2]}",
            )
    if reference.results_found != snapshot.results_found:
        raise InvariantViolation(
            seed,
            f"session {sid}: service reports {snapshot.results_found} results, "
            f"oracle found {reference.results_found}",
        )
    if list(snapshot.result_frames) != reference.result_frames:
        raise InvariantViolation(
            seed,
            f"session {sid}: result frames differ: service "
            f"{list(snapshot.result_frames)}, oracle {reference.result_frames}",
        )
    ground_truth = {
        inst.instance_id for inst in repository.instances_of(snapshot.category)
    }
    check_ground_truth_containment(
        seed,
        sid,
        snapshot.category,
        reference.distinct_true,
        reference.false_positive_results,
        reference.results_found,
        ground_truth,
        noisy_detector,
    )
    return reference
