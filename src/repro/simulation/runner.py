"""Drive one scenario against the real serving stack, deterministically.

The runner owns the whole lifecycle of a simulated deployment: it
journals the scenario's initial footage, builds a real
:class:`~repro.serving.service.QueryService` (real cache backend, real
schedulers, real worker pools), submits the scenario's sessions at their
arrival ticks, applies mid-run ingestion through the same journal path
the CLI uses, injects the fault plan, and ticks the service — recording
every externally visible decision into a flat **event log**.

The event log is the harness's currency.  It contains only quantities
that are deterministic by design (frame indices, d0 counts, result
totals, integer allocations, state transitions) and none that are not
(wall-clock, thread interleavings, raw-detector call counts under
parallel faults), so two runs of the same scenario must produce
*byte-identical* logs — asserted by the test suite — and the log doubles
as the decision stream the oracle parity check replays.

Crash-restart is the strongest fault: the runner persists the state
directory, discards the entire process state (service, sessions,
schedulers, in-memory caches — a crash loses what memory held), rebuilds
from disk exactly as ``python -m repro serve`` would, and then *proves*
the restore: every rebuilt session's replayed decision stream must match
what the live run already logged, and every status field must survive
the round trip.
"""

from __future__ import annotations

import hashlib
import pathlib
import tempfile
from dataclasses import dataclass, field

from ..detection.cache import (
    DetectionCache,
    JsonlBackend,
    SqliteBackend,
)
from ..detection.detector import OracleDetector, SimulatedDetector
from ..distributed.worker import DetectorSpec
from ..serving import ingest as serving_ingest
from ..serving import state as serving_state
from ..serving.ingest import IngestEntry
from ..serving.scheduler import (
    PriorityScheduler,
    RoundRobinScheduler,
    ThompsonSumScheduler,
)
from ..serving.service import QueryService
from ..video.repository import VideoRepository, empty_repository
from .faults import FaultController, FaultError, FlakyDetector
from .invariants import (
    InvariantViolation,
    check_allocation_records,
    check_budget_conservation,
    check_session_consistency,
    check_tick_overshoot,
)
from .oracle import materialize_repositories, reference_check
from .scenario import Scenario

__all__ = ["RecordingScheduler", "SimulationReport", "SimulationRunner", "run_scenario"]


class RecordingScheduler:
    """Wraps a budget policy and records every grant for the invariant
    checker — the scheduler-facing equivalent of the event log."""

    def __init__(self, inner, records: list):
        self._inner = inner
        self._records = records

    def allocate(self, sessions, budget, rng):
        allocation = self._inner.allocate(sessions, budget, rng)
        self._records.append(
            (tuple(s.session_id for s in sessions), int(budget), dict(allocation))
        )
        return allocation


@dataclass
class SimulationReport:
    """The outcome of one scenario run (checks already passed)."""

    scenario: Scenario
    event_log: list[str] = field(default_factory=list)
    ticks_run: int = 0
    detector_calls: int = 0
    steps_committed: int = 0
    sessions: dict[str, dict] = field(default_factory=dict)
    crashes: int = 0
    detector_errors: int = 0
    #: deterministic per-run observability summary (``simulate --json``
    #: surfaces it as the scenario's ``metrics`` block) — only quantities
    #: that are reproducible by design, never wall-clock
    metrics: dict = field(default_factory=dict)

    def log_digest(self) -> str:
        """SHA-256 over the event log — the bit-reproducibility witness."""
        payload = "\n".join(self.event_log).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


def _sid_key(sid: str) -> tuple[int, str]:
    """Numeric-aware session-id ordering (s2 before s10)."""
    return (int(sid[1:]), sid) if sid[1:].isdigit() else (1 << 30, sid)


def _fmt(processed: dict[str, int]) -> str:
    if not processed:
        return "-"
    return " ".join(
        f"{sid}={processed[sid]}" for sid in sorted(processed, key=_sid_key)
    )


class SimulationRunner:
    """One scenario, start to finish.  See the module docstring."""

    def __init__(self, scenario: Scenario, workdir: str | pathlib.Path):
        self.scenario = scenario
        self.state_dir = pathlib.Path(workdir) / f"scenario-{scenario.seed}"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.log: list[str] = []
        self.controller = FaultController()
        self.alloc_records: list[tuple[tuple[str, ...], int, dict[str, int]]] = []
        self.logged_steps: dict[str, int] = {}
        self.logged_stream: dict[str, list[tuple[int, int, int]]] = {}
        self.last_state: dict[str, str] = {}
        self.session_ids: list[str] = []
        self.per_tick_growth: list[dict[str, int]] = []
        self.total_allocated: dict[str, int] = {}
        self.crashes = 0
        self.detector_errors = 0
        self.cursor = 0
        self.cache: DetectionCache | None = None
        self.service: QueryService | None = None

    # ------------------------------------------------------------ plumbing

    def _emit(self, line: str) -> None:
        self.log.append(line)

    def _raw_detector(self, repository: VideoRepository):
        if self.scenario.detector == "noisy":
            return SimulatedDetector(
                repository,
                miss_rate=self.scenario.miss_rate,
                false_positive_rate=self.scenario.false_positive_rate,
                seed=self.scenario.seed,
            )
        return OracleDetector(repository)

    def _make_cache(self) -> DetectionCache:
        backend = self.scenario.cache_backend
        if backend == "sqlite":
            return DetectionCache(SqliteBackend(self.state_dir / "cache.sqlite"))
        if backend == "jsonl":
            return DetectionCache(JsonlBackend(self.state_dir / "cache.jsonl"))
        return DetectionCache()

    def _make_policy(self):
        name = self.scenario.scheduler
        if name == "priority":
            inner = PriorityScheduler()
        elif name == "thompson":
            inner = ThompsonSumScheduler()
        else:
            inner = RoundRobinScheduler()
        return RecordingScheduler(inner, self.alloc_records)

    def _dataset_names(self) -> list[str]:
        names = [d.name for d in self.scenario.datasets]
        for entry in serving_ingest.load_entries(self.state_dir):
            if entry.dataset not in names:
                names.append(entry.dataset)
        return names

    def _build_service(self) -> QueryService:
        repos = {name: empty_repository(name) for name in self._dataset_names()}
        if self.scenario.execution == "sharded":
            # detectors are built *inside* the worker processes from a
            # picklable spec; the FlakyDetector seam stays out (its
            # controller cannot cross a process boundary), which is why
            # sharded scenarios carry worker_kill faults instead of
            # detector_error ones (see scenario.sharded_variant)
            noisy = self.scenario.detector == "noisy"
            return QueryService(
                repos,
                cache=self.cache,
                scheduler=self._make_policy(),
                frames_per_tick=self.scenario.frames_per_tick,
                chunk_frames=self.scenario.chunk_frames,
                batch_size=1,
                execution="sharded",
                shards=self.scenario.shards,
                detector_spec=DetectorSpec(
                    kind="simulated" if noisy else "oracle",
                    miss_rate=self.scenario.miss_rate if noisy else 0.1,
                    false_positive_rate=(
                        self.scenario.false_positive_rate if noisy else 0.02
                    ),
                    seed=self.scenario.seed,
                ),
                detector_latency=self.scenario.detector_latency,
                seed=self.scenario.seed,
            )
        return QueryService(
            repos,
            cache=self.cache,
            scheduler=self._make_policy(),
            frames_per_tick=self.scenario.frames_per_tick,
            chunk_frames=self.scenario.chunk_frames,
            detector_factory=lambda repo: FlakyDetector(
                self._raw_detector(repo), self.controller
            ),
            batch_size=1,
            workers=self.scenario.workers,
            detector_latency=self.scenario.detector_latency,
            seed=self.scenario.seed,
        )

    def _register_missing(self, name: str) -> VideoRepository:
        return empty_repository(name)

    def _apply_journal(self) -> None:
        self.cursor = serving_ingest.apply_journal(
            self.service,
            self.state_dir,
            base_seed=self.scenario.seed,
            start_index=self.cursor,
            on_missing_dataset=self._register_missing,
        )

    # ------------------------------------------------------------- phases

    def _journal_initial_world(self) -> None:
        for plan in self.scenario.datasets:
            for clip in plan.clips:
                entry = IngestEntry(
                    dataset=plan.name,
                    frames=clip.frames,
                    clips=1,
                    category=clip.category if clip.instances > 0 else None,
                    instances=clip.instances if clip.category else 0,
                    mean_duration=clip.mean_duration,
                    skew_fraction=clip.skew_fraction,
                )
                index = serving_ingest.append_entry(self.state_dir, entry)
                self._emit(
                    f"journal entry={index} dataset={entry.dataset} "
                    f"frames={entry.frames} category={entry.category} "
                    f"instances={entry.instances}"
                )

    def _submit(self, tick: int, plan) -> None:
        try:
            sid = self.service.submit(
                plan.dataset,
                plan.category,
                limit=plan.limit,
                max_samples=plan.max_samples,
                priority=plan.priority,
                warm_start=plan.warm_start,
                batch_size=plan.batch_size,
                follow=plan.follow,
            )
        except (ValueError, KeyError) as exc:
            self._emit(
                f"submit-rejected tick={tick} dataset={plan.dataset} "
                f"category={plan.category}: {exc}"
            )
            self.session_ids.append("")  # keep op indices aligned
            return
        session = self.service.sessions[sid]
        self.session_ids.append(sid)
        self.logged_steps.setdefault(sid, 0)
        self.logged_stream.setdefault(sid, [])
        self.last_state[sid] = session.state.value
        self._emit(
            f"submit {sid} tick={tick} dataset={plan.dataset} "
            f"category={plan.category} limit={plan.limit} "
            f"max_samples={plan.max_samples} batch={plan.batch_size} "
            f"follow={plan.follow} seed={session.spec.seed} "
            f"warm={session.warm_frames_replayed}"
        )

    def _apply_op(self, tick: int, op) -> None:
        if op.session_index >= len(self.session_ids):
            self._emit(f"op-skipped tick={tick} {op.op} #{op.session_index}")
            return
        sid = self.session_ids[op.session_index]
        if not sid:
            self._emit(f"op-skipped tick={tick} {op.op} #{op.session_index}")
            return
        try:
            getattr(self.service, op.op)(sid)
            self._emit(f"op {op.op} {sid} tick={tick}")
        except (ValueError, KeyError) as exc:
            self._emit(f"op-rejected {op.op} {sid} tick={tick}: {exc}")

    def _apply_ingest(self, tick: int, plan) -> None:
        entry = IngestEntry(
            dataset=plan.dataset,
            frames=plan.frames,
            clips=plan.clips,
            category=plan.category if plan.instances > 0 else None,
            instances=plan.instances if plan.category else 0,
            mean_duration=plan.mean_duration,
            skew_fraction=plan.skew_fraction,
        )
        index = serving_ingest.append_entry(self.state_dir, entry)
        self._apply_journal()
        self._emit(
            f"ingest tick={tick} entry={index} dataset={entry.dataset} "
            f"clips={entry.clips} frames={entry.frames} "
            f"category={entry.category} instances={entry.instances}"
        )

    def _apply_fault(self, tick: int, fault) -> None:
        kind = fault.kind
        if kind == "cache_drop":
            self.service.cache.clear()
            self._emit(f"fault tick={tick} cache_drop")
        elif kind == "detector_error":
            self.controller.fail_next(int(fault.value))
            self._emit(f"fault tick={tick} detector_error calls={int(fault.value)}")
        elif kind == "latency_spike":
            self.controller.latency = float(fault.value)
            self._emit(f"fault tick={tick} latency_spike")
        elif kind == "latency_clear":
            self.controller.latency = 0.0
            self._emit(f"fault tick={tick} latency_clear")
        elif kind == "journal_torn_write":
            path = serving_ingest.journal_path(self.state_dir)
            with open(path, "a", encoding="utf-8") as handle:
                handle.write('{"dataset": "torn')  # no newline: a torn append
            self._emit(f"fault tick={tick} journal_torn_write")
        elif kind == "worker_kill":
            self._worker_kill(tick, int(fault.value))
        elif kind == "crash_restart":
            self._crash_restart(tick)
        else:  # pragma: no cover - scenario validation rejects these
            raise ValueError(f"unknown fault kind {kind!r}")

    def _worker_kill(self, tick: int, which: int) -> None:
        """Hard-kill one shard worker in every dataset's coordinator.

        The strongest distributed fault the coordinator promises to
        absorb transparently: the next batch routed to the dead shard
        respawns a replacement from the worker's spec, loses only the
        worker-local cache, and — the property the oracle check enforces
        — changes no logged decision.  A no-op (logged as such) under
        local execution or before any worker was spawned.
        """
        killed: list[str] = []
        for name in self.service.dataset_names():
            coordinator = self.service.shard_backend(name)
            if coordinator is None:
                continue
            shard = which % coordinator.num_shards
            if coordinator.kill_worker(shard):
                killed.append(f"{name}:{shard}")
        self._emit(
            f"fault tick={tick} worker_kill "
            f"killed={','.join(killed) if killed else '-'}"
        )

    def _crash_restart(self, tick: int) -> None:
        """Kill the process state, rebuild from disk, prove the restore."""
        pre_statuses = {
            sid: s.status().to_dict() for sid, s in self.service.sessions.items()
        }
        # a restart clears in-flight transient faults: armed-but-unfired
        # detector failures belong to the process that died, and leaving
        # them armed would make the restore's own replay detections fail
        self.controller = FaultController()
        self.controller.latency = 0.0
        serving_state.save_sessions(self.service, self.state_dir)
        self.service.cache.flush()
        self.service.close()
        # everything in memory dies with the process: service, sessions,
        # scheduler state, deficits — and the cache too unless its
        # backend is on disk
        self.cache = self._make_cache()
        self.service = self._build_service()
        self.cursor = 0
        self._apply_journal()
        for snap in serving_state.load_snapshots(self.state_dir):
            self.service.restore(snap)
        self.crashes += 1
        # the restore proof: every rebuilt session must land exactly
        # where the live run logged it
        for sid, session in self.service.sessions.items():
            post = session.status().to_dict()
            pre = pre_statuses.get(sid)
            if pre != post:
                raise InvariantViolation(
                    self.scenario.seed,
                    f"crash-restart at tick {tick}: session {sid} status "
                    f"changed across restore: {pre} -> {post}",
                )
            if session.engine is None:
                continue
            hist = session.engine.history
            expected = self.logged_stream.get(sid, [])
            if len(hist) != len(expected):
                raise InvariantViolation(
                    self.scenario.seed,
                    f"crash-restart at tick {tick}: session {sid} replayed "
                    f"{len(hist)} steps, live run had logged {len(expected)}",
                )
            frames = hist.frame_indices
            d0 = hist.d0_counts
            results = hist.results
            for i, (frame, dd, rr) in enumerate(expected):
                got = (int(frames[i]), int(d0[i]), int(results[i]))
                if got != (frame, dd, rr):
                    raise InvariantViolation(
                        self.scenario.seed,
                        f"crash-restart at tick {tick}: session {sid} replay "
                        f"diverges at step {i + 1}: logged {(frame, dd, rr)}, "
                        f"replayed {got}",
                    )
        self._emit(
            f"fault tick={tick} crash_restart "
            f"restored={len(self.service.sessions)}"
        )

    def _log_new_steps(self) -> dict[str, int]:
        growth: dict[str, int] = {}
        for sid, session in self.service.sessions.items():
            engine = session.engine
            if engine is None:
                continue
            hist = engine.history
            done = self.logged_steps.get(sid, 0)
            if len(hist) <= done:
                continue
            frames = hist.frame_indices
            d0 = hist.d0_counts
            results = hist.results
            for i in range(done, len(hist)):
                record = (int(frames[i]), int(d0[i]), int(results[i]))
                self.logged_stream.setdefault(sid, []).append(record)
                self._emit(
                    f"step {sid} n={i + 1} frame={record[0]} d0={record[1]} "
                    f"results={record[2]}"
                )
            growth[sid] = len(hist) - done
            self.logged_steps[sid] = len(hist)
        return growth

    def _log_state_changes(self, tick: int) -> None:
        for sid, session in self.service.sessions.items():
            state = session.state.value
            if self.last_state.get(sid) != state:
                self._emit(f"state {sid} {self.last_state.get(sid)}->{state} tick={tick}")
                self.last_state[sid] = state

    # ---------------------------------------------------------------- run

    def run(self) -> SimulationReport:
        scenario = self.scenario
        self._emit(
            f"scenario seed={scenario.seed} profile={scenario.profile} "
            f"scheduler={scenario.scheduler} fpt={scenario.frames_per_tick} "
            f"ticks={scenario.ticks} chunk={scenario.chunk_frames} "
            f"backend={scenario.cache_backend} workers={scenario.workers} "
            f"detector={scenario.detector} execution={scenario.execution} "
            f"shards={scenario.shards}"
        )
        self._journal_initial_world()
        self.cache = self._make_cache()
        self.service = self._build_service()
        self._apply_journal()

        ticks_run = 0
        try:
            last_event = max(
                [s.at_tick for s in scenario.sessions]
                + [i.at_tick for i in scenario.ingests]
                + [f.at_tick for f in scenario.faults]
                + [o.at_tick for o in scenario.ops]
                + [0]
            )
            for tick in range(scenario.ticks):
                for plan in scenario.sessions:
                    if plan.at_tick == tick:
                        self._submit(tick, plan)
                for op in scenario.ops:
                    if op.at_tick == tick:
                        self._apply_op(tick, op)
                for ingest in scenario.ingests:
                    if ingest.at_tick == tick:
                        self._apply_ingest(tick, ingest)
                for fault in scenario.faults:
                    if fault.at_tick == tick:
                        self._apply_fault(tick, fault)

                alloc_before = len(self.alloc_records)
                if self.service.schedulable_sessions():
                    try:
                        processed = self.service.tick()
                        self._emit(f"tick {tick} processed {_fmt(processed)}")
                    except FaultError:
                        self.detector_errors += 1
                        self._emit(f"tick {tick} detector-error")
                    ticks_run += 1
                else:
                    self._emit(f"tick {tick} idle")
                    if tick >= last_event and all(
                        s.state.terminal
                        for s in self.service.sessions.values()
                    ) and self.service.sessions:
                        self._emit(f"terminal-exit tick={tick}")
                        break
                for ids, budget, alloc in self.alloc_records[alloc_before:]:
                    self._emit(f"alloc tick={tick} {_fmt(alloc)}")
                    for sid, share in alloc.items():
                        self.total_allocated[sid] = (
                            self.total_allocated.get(sid, 0) + share
                        )
                self.per_tick_growth.append(self._log_new_steps())
                self._log_state_changes(tick)

            serving_state.save_sessions(self.service, self.state_dir)
            self.service.cache.flush()
            return self._finalize(ticks_run)
        finally:
            if self.service is not None:
                self.service.close()

    def _finalize(self, ticks_run: int) -> SimulationReport:
        scenario = self.scenario
        service = self.service
        statuses = {st.session_id: st.to_dict() for st in service.statuses()}
        for sid in sorted(statuses, key=_sid_key):
            st = statuses[sid]
            self._emit(
                f"final {sid} state={st['state']} results={st['results_found']} "
                f"frames={st['frames_processed']}"
            )
        self._emit(f"detector-calls {service.detector_calls}")

        batch_sizes = {
            sid: s.spec.batch_size for sid, s in service.sessions.items()
        }
        clean = self.crashes == 0 and self.detector_errors == 0
        check_allocation_records(
            scenario.seed, self.alloc_records, scenario.frames_per_tick
        )
        check_tick_overshoot(
            scenario.seed,
            self.per_tick_growth,
            scenario.frames_per_tick,
            batch_sizes,
        )
        check_budget_conservation(
            scenario.seed,
            self.total_allocated,
            {sid: n for sid, n in self.logged_steps.items()},
            batch_sizes,
            service.deficits,
            clean,
        )
        for status in statuses.values():
            check_session_consistency(scenario.seed, status)

        # oracle parity: replay every session standalone over the fully
        # materialized world and diff the decision streams
        entries = serving_ingest.load_entries(self.state_dir)
        world = materialize_repositories(
            self._dataset_names(), entries, scenario.seed
        )
        for snapshot in service.snapshot_all():
            reference_check(
                scenario.seed,
                snapshot,
                self.logged_stream.get(snapshot.session_id, []),
                world[snapshot.dataset],
                self._raw_detector,
                scenario.chunk_frames,
                noisy_detector=scenario.detector == "noisy",
            )

        cache_stats = service.cache.stats
        return SimulationReport(
            scenario=scenario,
            event_log=list(self.log),
            ticks_run=ticks_run,
            detector_calls=service.detector_calls,
            steps_committed=sum(self.logged_steps.values()),
            sessions={
                sid: service.results(sid)
                for sid in sorted(service.sessions, key=_sid_key)
            },
            crashes=self.crashes,
            detector_errors=self.detector_errors,
            metrics={
                "ticks_run": ticks_run,
                "steps_committed": sum(self.logged_steps.values()),
                "detector_calls": service.detector_calls,
                # post-clear when a cache_drop fault fired (clear() resets
                # accounting), so rates always describe one population
                "cache_hits": cache_stats.hits,
                "cache_misses": cache_stats.misses,
                "cache_inserts": cache_stats.inserts,
                "cache_batches": cache_stats.batches,
                "crashes": self.crashes,
                "detector_errors": self.detector_errors,
            },
        )


def run_scenario(
    scenario: Scenario, workdir: str | pathlib.Path | None = None
) -> SimulationReport:
    """Run one scenario end to end; raises
    :class:`~repro.simulation.invariants.InvariantViolation` on any
    oracle-parity or invariant failure.  ``workdir`` keeps the state
    directory around for inspection; by default it lives and dies in a
    temp dir."""
    if workdir is not None:
        return SimulationRunner(scenario, workdir).run()
    with tempfile.TemporaryDirectory(prefix="repro-sim-") as tmp:
        return SimulationRunner(scenario, tmp).run()
