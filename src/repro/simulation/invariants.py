"""The invariants every simulated run must satisfy.

Each check raises :class:`InvariantViolation` carrying the scenario seed,
so a CI sweep failure is one `--seed` flag away from a local repro.  The
checks deliberately say *why* an expectation holds, because each one is a
design guarantee of a specific layer:

* **ground truth containment / no duplicates** — the discriminator layer:
  with the oracle detector every result is a real instance and no
  instance is counted twice; with a noisy detector, false positives are
  accounted separately and exactly;
* **budget conservation** — the scheduler layer: per-tick grants sum to
  the configured budget, and no session can outrun its grants by more
  than one engine batch;
* **state-machine consistency** — the session layer: terminal states
  imply their stopping clauses and caps are never exceeded;
* **replay exactness** — the snapshot layer: a restored session's
  decision stream is byte-identical to what the live run already logged
  (checked by the runner at every crash-restart, and end-to-end by the
  oracle parity pass in :mod:`repro.simulation.oracle`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "InvariantViolation",
    "check_allocation_records",
    "check_tick_overshoot",
    "check_budget_conservation",
    "check_session_consistency",
    "check_ground_truth_containment",
]


class InvariantViolation(AssertionError):
    """A simulated run broke a system guarantee.

    ``seed`` replays the scenario: ``python -m repro simulate --seed N
    --scenarios 1 --profile P``.
    """

    def __init__(self, seed: int, message: str):
        super().__init__(f"[scenario seed {seed}] {message}")
        self.seed = seed


def check_allocation_records(
    seed: int,
    records: Sequence[tuple[tuple[str, ...], int, dict[str, int]]],
    frames_per_tick: int,
) -> None:
    """Every scheduler grant covers exactly the requesting sessions,
    is non-negative, and sums to the configured budget."""
    for ids, budget, alloc in records:
        if budget != frames_per_tick:
            raise InvariantViolation(
                seed, f"scheduler asked for budget {budget}, configured "
                f"{frames_per_tick}"
            )
        if set(alloc) != set(ids):
            raise InvariantViolation(
                seed, f"allocation keys {sorted(alloc)} != sessions {sorted(ids)}"
            )
        if any(v < 0 for v in alloc.values()):
            raise InvariantViolation(seed, f"negative allocation: {alloc}")
        if sum(alloc.values()) != budget:
            raise InvariantViolation(
                seed,
                f"allocations sum to {sum(alloc.values())}, budget {budget}: {alloc}",
            )


def check_tick_overshoot(
    seed: int,
    per_tick_growth: Sequence[Mapping[str, int]],
    frames_per_tick: int,
    batch_sizes: Mapping[str, int],
) -> None:
    """No session advances more than ``frames_per_tick + batch - 1``
    frames in any single tick: a session's in-tick allowance is at most
    the whole budget, and it may only finish the one batch in flight."""
    for tick, growth in enumerate(per_tick_growth):
        for sid, frames in growth.items():
            bound = frames_per_tick + batch_sizes.get(sid, 1) - 1
            if frames > bound:
                raise InvariantViolation(
                    seed,
                    f"session {sid} advanced {frames} frames in tick {tick}, "
                    f"bound {bound}",
                )


def check_budget_conservation(
    seed: int,
    total_allocated: Mapping[str, int],
    total_processed: Mapping[str, int],
    batch_sizes: Mapping[str, int],
    deficits: Mapping[str, int],
    clean: bool,
) -> None:
    """Across a whole run, a session never outruns its cumulative grants
    by more than one engine batch.

    Only asserted for *clean* runs (no crash-restarts, no injected
    detector errors): a crash forgets in-memory deficits and a failed
    tick withholds its credit, both of which legitimately loosen the
    bound by a bounded amount per event — the per-tick bound
    (:func:`check_tick_overshoot`) still holds there.
    """
    if not clean:
        return
    for sid, processed in total_processed.items():
        allowed = total_allocated.get(sid, 0) + batch_sizes.get(sid, 1) - 1
        if processed > allowed:
            raise InvariantViolation(
                seed,
                f"session {sid} processed {processed} frames against "
                f"{total_allocated.get(sid, 0)} allocated (+{batch_sizes.get(sid, 1) - 1} "
                "batch slack)",
            )
    for sid, debt in deficits.items():
        if debt > batch_sizes.get(sid, 1) - 1:
            raise InvariantViolation(
                seed,
                f"session {sid} carries deficit {debt} > batch overshoot bound "
                f"{batch_sizes.get(sid, 1) - 1}",
            )


def check_session_consistency(seed: int, status: Mapping) -> None:
    """Terminal states imply their stopping clauses; caps are exact."""
    sid = status["session_id"]
    state = status["state"]
    limit = status["limit"]
    max_samples = status["max_samples"]
    results = status["results_found"]
    frames = status["frames_processed"]
    if max_samples is not None and frames > max_samples:
        raise InvariantViolation(
            seed, f"session {sid} processed {frames} frames over its "
            f"max_samples={max_samples} cap"
        )
    if state == "completed":
        if limit is None or results < limit:
            raise InvariantViolation(
                seed,
                f"session {sid} completed with {results} results, limit {limit}",
            )
    if limit is not None and state == "active" and results >= limit:
        raise InvariantViolation(
            seed, f"session {sid} is active with limit {limit} already met"
        )


def check_ground_truth_containment(
    seed: int,
    session_id: str,
    category: str,
    distinct_true: set[int],
    false_positive_results: int,
    results_found: int,
    ground_truth_ids: set[int],
    noisy_detector: bool,
) -> None:
    """Matches ⊆ ground truth, and no instance is ever counted twice.

    ``results_found == |distinct true matches| + false positives`` is the
    no-duplicates identity: the oracle discriminator keys results by true
    instance id, so any double-count would break the equation.  With the
    oracle detector there are no false positives at all.
    """
    rogue = distinct_true - ground_truth_ids
    if rogue:
        raise InvariantViolation(
            seed,
            f"session {session_id} matched instance ids {sorted(rogue)} that do "
            f"not exist in the {category!r} ground truth",
        )
    if not noisy_detector and false_positive_results:
        raise InvariantViolation(
            seed,
            f"session {session_id} produced {false_positive_results} false-positive "
            "results under the oracle detector",
        )
    expected = len(distinct_true) + false_positive_results
    if results_found != expected:
        raise InvariantViolation(
            seed,
            f"session {session_id} reports {results_found} results but matched "
            f"{len(distinct_true)} distinct instances + {false_positive_results} "
            "false positives — a duplicate or lost result",
        )
