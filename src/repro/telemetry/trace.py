"""Causal query tracing: deterministic trace contexts, Chrome export.

A trace follows one submitted query (one ``QuerySession``) from admission
through every tick's plan/commit and across the coordinator wire into
shard workers.  Two constraints shape the design, both inherited from
the serving layer's determinism contract:

* **ids are derived, never drawn** — ``trace_id`` is a pure function of
  the session id and every ``span_id`` a pure function of the trace id
  plus a per-trace step counter (:func:`derive_trace_id`,
  :func:`derive_span_id`, both ``blake2b``).  No wall clock, no RNG, no
  pid ever enters an id, so a replayed run names every span identically
  and tracing can never perturb (or be perturbed by) the decision
  stream.  Wall-clock time appears only in measured ``ts``/``dur``
  *values*, never in structure.
* **off means free** — the tracer hangs off the telemetry pipeline and
  defaults to :data:`NULL_TRACER` even when metrics are enabled
  (``telemetry.enable(trace=True)`` opts in), so the tick loop's
  per-session timing work is guarded by one ``tracer.enabled`` check
  and the 3% overhead gate keeps meaning what it measured.

Completed spans buffer as Chrome trace-event ``"X"`` (complete) events —
the JSON dialect ``chrome://tracing`` and Perfetto load directly — in a
bounded ring.  ``repro serve --trace-out FILE`` dumps them as JSONL and
``repro trace`` wraps/validates them into a ``{"traceEvents": [...]}``
document (see :func:`validate_trace`, the shipped checker CI runs).

Traces whose admission-to-terminal extent meets ``slow_query_threshold``
are retained as full span *trees* in a bounded slow-query ring — the
per-query upgrade of the slow-tick log: it names the cause, not just
the tick.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque

__all__ = [
    "derive_trace_id",
    "derive_span_id",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "validate_trace",
    "trace_document",
]

_ID_BYTES = 8  # 16 hex chars; plenty against collision at repro scale


def derive_trace_id(session_id: str) -> str:
    """The trace id for a session: ``blake2b(session_id)`` — replayable."""
    return hashlib.blake2b(
        session_id.encode("utf-8"), digest_size=_ID_BYTES
    ).hexdigest()


def derive_span_id(trace_id: str, seq: int) -> str:
    """The ``seq``-th span id of a trace — a counter, never a clock."""
    return hashlib.blake2b(
        f"{trace_id}:{seq}".encode("utf-8"), digest_size=_ID_BYTES
    ).hexdigest()


# one retained-span cap per trace: a pathological million-tick session
# must not grow the slow-query tree without bound.  Events have their own
# ring; this caps only the per-trace tree material.
_MAX_SPANS_PER_TRACE = 512


class Tracer:
    """Per-query span recording behind the telemetry pipeline.

    All state mutations happen under one lock; the tick loop is
    single-threaded but admission (asyncio) and tests may interleave.
    ``ts`` values are microseconds relative to the tracer's construction
    instant (``perf_counter``), which keeps exported timelines starting
    near zero — measured values, deterministic structure.
    """

    ROOT_SPAN = "session"
    enabled = True

    def __init__(
        self,
        capacity: int = 8192,
        slow_query_threshold: float = 0.25,
        slow_query_capacity: int = 32,
    ):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if slow_query_threshold < 0.0:
            raise ValueError("slow_query_threshold must be non-negative")
        if slow_query_capacity < 1:
            raise ValueError("slow_query_capacity must be at least 1")
        self.slow_query_threshold = slow_query_threshold
        self._origin = time.perf_counter()
        self._events: deque[dict] = deque(maxlen=capacity)
        self._slow_queries: deque[dict] = deque(maxlen=slow_query_capacity)
        self._traces: dict[str, dict] = {}
        self._lock = threading.Lock()
        # the in-flight detect batch's participating traces, set by the
        # tick loop around each coalesced detect call so the coordinator
        # (which only sees frames) can parent its shard-dispatch spans.
        # The tick loop is single-threaded, so a plain attribute suffices.
        self._dispatch: tuple[tuple[str, str], ...] = ()

    # ------------------------------------------------------- trace lifecycle

    def begin_trace(self, session_id: str) -> str:
        """Register (idempotently) the trace for a session; returns its id.

        Seq 0 is reserved for the synthesized root ``session`` span, so
        the first recorded child is always seq 1 — stable numbering.
        """
        trace_id = derive_trace_id(session_id)
        with self._lock:
            if trace_id not in self._traces:
                self._traces[trace_id] = {
                    "session": session_id,
                    "root": derive_span_id(trace_id, 0),
                    "seq": 1,
                    "spans": [],
                    "dropped": 0,
                }
        return trace_id

    def root_span_id(self, trace_id: str) -> str:
        """The (reserved, seq-0) root span id of a registered trace."""
        with self._lock:
            state = self._traces.get(trace_id)
        if state is None:
            return derive_span_id(trace_id, 0)
        return state["root"]

    def record_span(
        self,
        trace_id: str,
        name: str,
        start: float,
        duration: float,
        parent_id: str | None = None,
        tid: int = 0,
        **args,
    ) -> str:
        """File one completed span; returns its derived span id.

        ``parent_id=None`` parents under the trace's root ``session``
        span.  ``tid`` picks the display lane (0 = coordinator process,
        ``shard_id + 1`` = that shard's worker) — presentation only,
        never identity.
        """
        with self._lock:
            state = self._traces.get(trace_id)
            if state is None:
                # an unregistered trace (e.g. warm-up detect): drop rather
                # than invent structure a replay could not reproduce
                return ""
            seq = state["seq"]
            state["seq"] = seq + 1
            span_id = derive_span_id(trace_id, seq)
            parent = parent_id if parent_id is not None else state["root"]
            span = {
                "name": name,
                "span_id": span_id,
                "parent_id": parent,
                "start": float(start),
                "duration": float(duration),
                "tid": int(tid),
                "args": {k: args[k] for k in sorted(args)},
            }
            if len(state["spans"]) < _MAX_SPANS_PER_TRACE:
                state["spans"].append(span)
            else:
                state["dropped"] += 1
            self._events.append(self._event(trace_id, span))
        return span_id

    def finish_trace(self, trace_id: str, state_name: str = "") -> None:
        """Close a trace: synthesize its root span event and, when the
        admission-to-last-span extent meets the threshold, retain the
        full span tree in the slow-query ring."""
        with self._lock:
            state = self._traces.pop(trace_id, None)
            if state is None or not state["spans"]:
                return
            first = min(span["start"] for span in state["spans"])
            last = max(span["start"] + span["duration"] for span in state["spans"])
            root = {
                "name": self.ROOT_SPAN,
                "span_id": state["root"],
                "parent_id": "",
                "start": first,
                "duration": max(0.0, last - first),
                "tid": 0,
                "args": {"session": state["session"]},
            }
            if state_name:
                root["args"]["state"] = state_name
            if state["dropped"]:
                root["args"]["dropped_spans"] = state["dropped"]
            self._events.append(self._event(trace_id, root))
            if root["duration"] >= self.slow_query_threshold:
                self._slow_queries.append(
                    {
                        "session": state["session"],
                        "trace_id": trace_id,
                        "duration_seconds": root["duration"],
                        "spans": _span_tree(root, state["spans"]),
                    }
                )

    # -------------------------------------------------- dispatch propagation

    def begin_dispatch(self, contexts) -> None:
        """Declare the traces participating in the next coalesced detect
        call: ``[(trace_id, parent_span_id), ...]``."""
        self._dispatch = tuple(contexts)

    def end_dispatch(self) -> None:
        self._dispatch = ()

    def dispatch_contexts(self) -> tuple[tuple[str, str], ...]:
        """What the coordinator reads to parent shard-dispatch spans."""
        return self._dispatch

    # ----------------------------------------------------------- output

    def _event(self, trace_id: str, span: dict) -> dict:
        args = dict(span["args"])
        args["trace_id"] = trace_id
        args["span_id"] = span["span_id"]
        args["parent_id"] = span["parent_id"]
        return {
            "name": span["name"],
            "cat": "repro",
            "ph": "X",
            "ts": round((span["start"] - self._origin) * 1e6, 3),
            "dur": round(span["duration"] * 1e6, 3),
            "pid": 1,
            "tid": span["tid"],
            "args": args,
        }

    def events(self) -> list[dict]:
        """The buffered Chrome trace events, oldest first."""
        with self._lock:
            return [dict(event) for event in self._events]

    def slow_queries(self) -> list[dict]:
        """Retained slow-query span trees, oldest first."""
        with self._lock:
            return list(self._slow_queries)

    def finish_all(self, state_names=None) -> None:
        """Close every open trace (end of a serving run): sessions that
        never reached terminal still get a root span in the export."""
        names = dict(state_names or {})
        with self._lock:
            open_ids = list(self._traces)
        for trace_id in open_ids:
            self.finish_trace(trace_id, names.get(trace_id, ""))


def _span_tree(root: dict, spans: list[dict]) -> dict:
    """Nest flat parent-linked spans into one tree under the root."""
    children: dict[str, list[dict]] = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)

    def build(span: dict) -> dict:
        node = {
            "name": span["name"],
            "span_id": span["span_id"],
            "duration_seconds": span["duration"],
        }
        if span["args"]:
            node["args"] = dict(span["args"])
        kids = children.get(span["span_id"], [])
        if kids:
            node["children"] = [build(kid) for kid in kids]
        return node

    return build(root)


class NullTracer:
    """The off switch: every operation a no-op, ``enabled`` false —
    instrumented sites guard their timing work on this one attribute."""

    enabled = False

    def begin_trace(self, session_id):
        return ""

    def root_span_id(self, trace_id):
        return ""

    def record_span(self, trace_id, name, start, duration, parent_id=None,
                    tid=0, **args):
        return ""

    def finish_trace(self, trace_id, state_name=""):
        pass

    def finish_all(self, state_names=None):
        pass

    def begin_dispatch(self, contexts):
        pass

    def end_dispatch(self):
        pass

    def dispatch_contexts(self):
        return ()

    def events(self):
        return []

    def slow_queries(self):
        return []


NULL_TRACER = NullTracer()


# --------------------------------------------------------------- validation

_HEX_ID = frozenset("0123456789abcdef")
_REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args")


def _is_id(value) -> bool:
    return (
        isinstance(value, str)
        and len(value) == _ID_BYTES * 2
        and set(value) <= _HEX_ID
    )


def validate_trace(events) -> list[str]:
    """Every violation of the Chrome trace-event contract this exporter
    promises; empty list = valid.  Accepts a raw event list or a
    ``{"traceEvents": [...]}`` document (what ``repro trace`` writes).

    Beyond JSON shape it checks the *causal* contract: ids are derived
    hex, every span's parent exists within its own trace, and each trace
    has exactly one root (the ``session`` span with an empty parent).
    """
    if isinstance(events, dict):
        if "traceEvents" not in events:
            return ["document missing 'traceEvents'"]
        events = events["traceEvents"]
    if not isinstance(events, list):
        return ["trace must be a list of events"]
    errors: list[str] = []
    spans_by_trace: dict[str, set[str]] = {}
    parents: list[tuple[int, str, str]] = []
    roots: dict[str, int] = {}
    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = [key for key in _REQUIRED_EVENT_KEYS if key not in event]
        if missing:
            errors.append(f"{where}: missing keys {missing}")
            continue
        if event["ph"] != "X":
            errors.append(f"{where}: ph must be 'X', got {event['ph']!r}")
        for key in ("ts", "dur"):
            value = event[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                errors.append(f"{where}: {key} must be a number")
            elif value < 0:
                errors.append(f"{where}: {key} is negative ({value})")
        args = event["args"]
        if not isinstance(args, dict):
            errors.append(f"{where}: args must be an object")
            continue
        trace_id, span_id = args.get("trace_id"), args.get("span_id")
        parent_id = args.get("parent_id")
        if not _is_id(trace_id):
            errors.append(f"{where}: bad trace_id {trace_id!r}")
            continue
        if not _is_id(span_id):
            errors.append(f"{where}: bad span_id {span_id!r}")
            continue
        if parent_id == "":
            roots[trace_id] = roots.get(trace_id, 0) + 1
            if event["name"] != Tracer.ROOT_SPAN:
                errors.append(
                    f"{where}: root span must be named "
                    f"{Tracer.ROOT_SPAN!r}, got {event['name']!r}"
                )
        elif not _is_id(parent_id):
            errors.append(f"{where}: bad parent_id {parent_id!r}")
        else:
            parents.append((index, trace_id, parent_id))
        seen = spans_by_trace.setdefault(trace_id, set())
        if span_id in seen:
            errors.append(f"{where}: duplicate span_id {span_id}")
        seen.add(span_id)
    for index, trace_id, parent_id in parents:
        if parent_id not in spans_by_trace.get(trace_id, ()):
            errors.append(
                f"event[{index}]: parent {parent_id} not found in "
                f"trace {trace_id}"
            )
    for trace_id, count in roots.items():
        if count != 1:
            errors.append(f"trace {trace_id}: {count} root spans, expected 1")
    for trace_id in spans_by_trace:
        if trace_id not in roots:
            errors.append(f"trace {trace_id}: no root span (trace never finished)")
    return errors


def trace_document(events) -> dict:
    """Wrap raw events into the document Perfetto / chrome://tracing
    load directly."""
    if isinstance(events, dict) and "traceEvents" in events:
        return events
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}
