"""A minimal JSON-Schema-subset validator for metrics snapshots.

CI validates every ``--metrics-out`` snapshot against the checked-in
``metrics_schema.json`` before uploading it, so a refactor that silently
changes the snapshot shape fails the build instead of breaking whatever
dashboards consume the artifacts.  The container ships no ``jsonschema``
package, so this module implements exactly the subset the schema file
uses — ``type``, ``required``, ``properties``, ``additionalProperties``,
``items``, ``enum``, ``minimum`` — and nothing more.  An unsupported
keyword in the schema is a hard error, not a silent pass: a schema that
says more than the validator checks would be a false promise.
"""

from __future__ import annotations

import json
import pathlib

__all__ = ["SCHEMA_PATH", "load_schema", "validate", "validation_errors"]

SCHEMA_PATH = pathlib.Path(__file__).parent / "metrics_schema.json"

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
}

_SUPPORTED = {
    "$comment", "type", "required", "properties",
    "additionalProperties", "items", "enum", "minimum",
}


def load_schema(path: str | pathlib.Path | None = None) -> dict:
    """The checked-in snapshot schema (or any schema file)."""
    target = pathlib.Path(path) if path is not None else SCHEMA_PATH
    return json.loads(target.read_text(encoding="utf-8"))


def _check_type(value, expected: str, where: str, errors: list[str]) -> bool:
    python_type = _TYPES[expected]
    # bool is an int subclass in Python; "integer"/"number" must not
    # accept True, or a snapshot bug could hide behind a boolean
    if isinstance(value, bool) and expected != "boolean":
        errors.append(f"{where}: expected {expected}, got boolean")
        return False
    if not isinstance(value, python_type):
        errors.append(f"{where}: expected {expected}, got {type(value).__name__}")
        return False
    if expected == "integer" and isinstance(value, float):
        errors.append(f"{where}: expected integer, got float")
        return False
    return True


def _validate(value, schema: dict, where: str, errors: list[str]) -> None:
    unsupported = set(schema) - _SUPPORTED
    if unsupported:
        raise ValueError(
            f"schema at {where} uses unsupported keywords: {sorted(unsupported)}"
        )
    expected = schema.get("type")
    if expected is not None:
        if expected not in _TYPES:
            raise ValueError(f"schema at {where}: unknown type {expected!r}")
        if not _check_type(value, expected, where, errors):
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{where}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            errors.append(f"{where}: {value!r} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for name in schema.get("required", []):
            if name not in value:
                errors.append(f"{where}: missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, subschema in properties.items():
            if name in value:
                _validate(value[name], subschema, f"{where}.{name}", errors)
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for name, item in value.items():
                if name not in properties:
                    _validate(item, extra, f"{where}.{name}", errors)
        elif extra is False:
            for name in value:
                if name not in properties:
                    errors.append(f"{where}: unexpected key {name!r}")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _validate(item, schema["items"], f"{where}[{index}]", errors)


def validation_errors(snapshot: dict, schema: dict | None = None) -> list[str]:
    """Every violation found, as ``path: message`` strings; empty = valid."""
    if schema is None:
        schema = load_schema()
    errors: list[str] = []
    _validate(snapshot, schema, "$", errors)
    return errors


def validate(snapshot: dict, schema: dict | None = None) -> None:
    """Raise ``ValueError`` listing every violation; no-op when valid."""
    errors = validation_errors(snapshot, schema)
    if errors:
        raise ValueError(
            "metrics snapshot failed schema validation:\n  " + "\n  ".join(errors)
        )
