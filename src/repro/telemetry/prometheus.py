"""Render a metrics snapshot in the Prometheus text exposition format.

This is the wire format of the future network serving tier: a scrape
endpoint will call :func:`render` on a live snapshot and return the text
verbatim.  Until then it is reachable through ``python -m repro stats
--format prometheus``, so dashboards can be prototyped against file
snapshots before any socket exists.

The renderer works from the *snapshot* (plain dicts), not the registry,
so it can format metrics written by another process — which is the whole
point of ``--metrics-out``.  Histograms are emitted with cumulative
``_bucket`` lines (``le`` labels), ``_sum`` and ``_count``, per the
exposition format; counters and gauges are single sample lines.  Series
arrive already sorted from the snapshot and are emitted in that order,
so rendered output is deterministic too.

Label values are escaped at series-creation time
(:func:`~repro.telemetry.registry.escape_label_value`, per the
exposition format's backslash/quote/newline rules), so every key a
snapshot carries is already exposition-safe; :func:`parse_sample`
inverts one rendered sample line back to ``(name, labels, value)`` —
the round-trip the hostile-label tests pin down.
"""

from __future__ import annotations

from .registry import parse_series_key

__all__ = ["render", "parse_sample"]


def _split_series(key: str) -> tuple[str, str]:
    """``name{a="b"}`` -> (``name``, ``a="b"``); bare names get ``""``."""
    if key.endswith("}") and "{" in key:
        name, _, labels = key.partition("{")
        return name, labels[:-1]
    return key, ""


def _with_label(labels: str, extra: str) -> str:
    return f"{labels},{extra}" if labels else extra


def _format_value(value: float) -> str:
    # integers render bare (Prometheus accepts both; bare diffs cleaner)
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _type_lines(out: list[str], seen: set[str], name: str, kind: str) -> None:
    if name not in seen:
        seen.add(name)
        out.append(f"# TYPE {name} {kind}")


def parse_sample(line: str) -> tuple[str, dict[str, str], float]:
    """One exposition sample line back to ``(name, labels, value)`` with
    label values unescaped — the exact inverse of what :func:`render`
    emits for a series key built by ``series_key``.  Raises
    ``ValueError`` on comment lines or malformed samples."""
    if line.startswith("#"):
        raise ValueError(f"not a sample line: {line!r}")
    series, _, value = line.rpartition(" ")
    if not series:
        raise ValueError(f"not a sample line: {line!r}")
    name, labels = parse_series_key(series)
    return name, labels, float(value)


def render(snapshot: dict) -> str:
    """The snapshot as Prometheus exposition text (trailing newline)."""
    out: list[str] = []
    typed: set[str] = set()
    for key, value in snapshot.get("counters", {}).items():
        name, labels = _split_series(key)
        _type_lines(out, typed, name, "counter")
        suffix = f"{{{labels}}}" if labels else ""
        out.append(f"{name}{suffix} {_format_value(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _split_series(key)
        _type_lines(out, typed, name, "gauge")
        suffix = f"{{{labels}}}" if labels else ""
        out.append(f"{name}{suffix} {_format_value(value)}")
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = _split_series(key)
        _type_lines(out, typed, name, "histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            le = _with_label(labels, f'le="{_format_value(bound)}"')
            out.append(f"{name}_bucket{{{le}}} {cumulative}")
        cumulative += hist["counts"][-1]
        le = _with_label(labels, 'le="+Inf"')
        out.append(f"{name}_bucket{{{le}}} {cumulative}")
        suffix = f"{{{labels}}}" if labels else ""
        out.append(f"{name}_sum{suffix} {repr(float(hist['sum']))}")
        out.append(f"{name}_count{suffix} {hist['count']}")
    return "\n".join(out) + "\n"
