"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Three constraints shape this module, all downstream of the serving
layer's determinism contract:

* **dependency-free** — the registry must import nothing beyond the
  stdlib, because it is loaded by every layer (core, detection, serving,
  distributed, simulation) and must never become a reason a layer cannot;
* **deterministic output** — histogram bucket bounds are fixed at
  registration (never adapted to observed data) and snapshots serialize
  series in sorted order, so two runs that do the same work produce
  snapshots that differ only in measured durations, never in structure;
* **thread-safe** — counters and gauges are touched from
  :class:`~repro.detection.execution.ParallelDetector` worker threads,
  so every mutation happens under the instrument's lock.

Series identity is ``name`` plus an optional label mapping, rendered
Prometheus-style (``repro_shard_frames_total{shard="2"}``) with label
keys sorted, so the same logical series always lands under the same key
no matter which call site created it first.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "FRAMES_BUCKETS",
    "series_key",
    "parse_series_key",
    "escape_label_value",
    "unescape_label_value",
    "merge_histogram_dicts",
    "merge_snapshot_bodies",
]

# fixed default bucket bounds (upper-inclusive; +Inf is implicit).  Two
# scales cover every metric in the catalog: wall-clock durations and
# frame/batch counts.  Fixed bounds are what make snapshots structurally
# deterministic — an adaptive histogram would shape its output by timing.
SECONDS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
FRAMES_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0)


def escape_label_value(value: object) -> str:
    """A label value escaped per the Prometheus exposition format:
    backslash, double-quote, and newline — in that order, so escaping is
    unambiguous and :func:`unescape_label_value` is its exact inverse."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """The inverse of :func:`escape_label_value` (single left-to-right
    pass, so ``\\\\n`` round-trips as a backslash + ``n``, not a newline)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def series_key(name: str, labels: Mapping[str, object] | None = None) -> str:
    """The canonical series identity: ``name`` or ``name{k="v",...}``
    with label keys sorted (so call-site dict ordering never matters)
    and values escaped (so a hostile value can never forge a different
    series or corrupt the exposition output)."""
    if not labels:
        return name
    rendered = ",".join(
        f'{k}="{escape_label_value(labels[k])}"' for k in sorted(labels)
    )
    return f"{name}{{{rendered}}}"


def parse_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`series_key`: ``name{k="v",...}`` back into
    ``(name, labels)`` with values unescaped.  Raises ``ValueError`` on
    keys this module could not have produced."""
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed series key: {key!r}")
    name, body = key[:brace], key[brace + 1 : -1]
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.find('="', i)
        if eq < 0:
            raise ValueError(f"malformed series key: {key!r}")
        label = body[i:eq]
        j = eq + 2
        while j < len(body):
            if body[j] == "\\":
                j += 2
                continue
            if body[j] == '"':
                break
            j += 1
        if j >= len(body):
            raise ValueError(f"malformed series key: {key!r}")
        labels[label] = unescape_label_value(body[eq + 2 : j])
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"malformed series key: {key!r}")
            i += 1
    return name, labels


def merge_histogram_dicts(base: dict, other: dict) -> dict:
    """Bucket-merge two histogram bodies sharing the same bounds:
    element-wise count addition plus summed ``sum``/``count``.  Mismatched
    bounds are a catalog bug and raise rather than silently mangle."""
    if list(base["buckets"]) != list(other["buckets"]):
        raise ValueError(
            f"cannot merge histograms with different buckets: "
            f"{base['buckets']} vs {other['buckets']}"
        )
    return {
        "buckets": list(base["buckets"]),
        "counts": [a + b for a, b in zip(base["counts"], other["counts"])],
        "sum": base["sum"] + other["sum"],
        "count": base["count"] + other["count"],
    }


def merge_snapshot_bodies(base: dict, other: dict) -> dict:
    """Fold one registry snapshot body into another (fleet aggregation):
    counter-sum, gauge-last (``other`` wins), histogram-bucket-merge.
    Returns a new body with series re-sorted; inputs are not mutated."""
    counters = dict(base.get("counters", {}))
    for key, value in other.get("counters", {}).items():
        counters[key] = counters.get(key, 0) + value
    gauges = dict(base.get("gauges", {}))
    gauges.update(other.get("gauges", {}))
    histograms = dict(base.get("histograms", {}))
    for key, body in other.get("histograms", {}).items():
        if key in histograms:
            histograms[key] = merge_histogram_dicts(histograms[key], body)
        else:
            histograms[key] = dict(body)
    return {
        "counters": {key: counters[key] for key in sorted(counters)},
        "gauges": {key: gauges[key] for key in sorted(gauges)},
        "histograms": {key: histograms[key] for key in sorted(histograms)},
    }


class Counter:
    """A monotonically increasing count (events, frames, round-trips)."""

    __slots__ = ("key", "_value", "_lock")

    def __init__(self, key: str):
        self.key = key
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, deficit, last grant)."""

    __slots__ = ("key", "_value", "_lock")

    def __init__(self, key: str):
        self.key = key
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set_max(self, value: int | float) -> None:
        """Ratchet: keep the largest value ever seen (peak tracking)."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> int | float:
        return self._value


class Histogram:
    """A distribution over fixed, registration-time bucket bounds.

    ``counts[i]`` is the number of observations ``<= bounds[i]``
    (non-cumulative, one extra overflow bucket at the end), plus running
    ``sum``/``count`` — exactly what the Prometheus text renderer needs
    to emit cumulative ``_bucket`` lines.
    """

    __slots__ = ("key", "bounds", "counts", "_sum", "_count", "_lock")

    def __init__(self, key: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.key = key
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)  # +1: the +Inf overflow bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: int | float) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self._sum,
            "count": self._count,
        }


class MetricsRegistry:
    """Get-or-create instrument store, keyed by series identity.

    ``counter``/``gauge``/``histogram`` are idempotent: the first call
    for a series creates it, later calls return the same instrument —
    so instrumentation sites never hold registry state, only names.
    Registering one series under two different instrument kinds is a
    programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _guard(self, key: str, own: dict, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not own and key in table:
                raise ValueError(
                    f"series {key!r} is already registered as a {other_kind}, "
                    f"cannot re-register as a {kind}"
                )

    def counter(self, name: str, labels: Mapping[str, object] | None = None) -> Counter:
        key = series_key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                self._guard(key, self._counters, "counter")
                instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(self, name: str, labels: Mapping[str, object] | None = None) -> Gauge:
        key = series_key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                self._guard(key, self._gauges, "gauge")
                instrument = self._gauges[key] = Gauge(key)
        return instrument

    def histogram(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> Histogram:
        key = series_key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                self._guard(key, self._histograms, "histogram")
                instrument = self._histograms[key] = Histogram(key, buckets)
        return instrument

    def snapshot(self) -> dict:
        """All series, sorted by key — the stable JSON body ``--metrics-out``
        dumps (values are whatever was measured; the *structure* is a pure
        function of the work performed)."""
        with self._lock:
            return {
                "counters": {
                    key: self._counters[key].value for key in sorted(self._counters)
                },
                "gauges": {
                    key: self._gauges[key].value for key in sorted(self._gauges)
                },
                "histograms": {
                    key: self._histograms[key].to_dict()
                    for key in sorted(self._histograms)
                },
            }

    def reset(self) -> None:
        """Drop every series (a fresh registry, not zeroed instruments —
        old instrument handles go stale by design)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
