"""Telemetry: the measurement plane under every serving-stack layer.

The paper's core claim is *economic* — more instances found per detector
invocation — so the system must be able to report its own spend while it
runs: detector calls, cache savings, scheduler fairness, tick latency.
This package is that measurement plane, and the substrate every later
performance PR cites its deltas from.

Three pieces:

* :mod:`~repro.telemetry.registry` — counters, gauges, and fixed-bucket
  histograms behind a get-or-create registry (deterministic snapshot
  structure, thread-safe mutation, stdlib only);
* :mod:`~repro.telemetry.spans` — structured per-tick trace spans
  (plan/detect/commit) and the bounded slow-tick ring buffer;
* the surfaces — a stable JSON snapshot (``--metrics-out``, validated
  against :mod:`~repro.telemetry.schema` in CI), the Prometheus text
  format (:mod:`~repro.telemetry.prometheus`), and the ``repro stats``
  CLI renderer.

**The off switch is the design.**  The module-level default is a
:class:`NullTelemetry` whose instruments are shared, allocation-free
no-ops, so an uninstrumented-feeling hot path costs one attribute lookup
and an empty method call per metric site — and because telemetry only
ever *observes* (it never touches an RNG, a schedule, or a decision),
decision streams are bit-identical with telemetry enabled or disabled
(asserted across a seed matrix in ``tests/test_telemetry.py``).

Usage::

    from repro import telemetry

    telemetry.enable()                 # install a live pipeline
    ... run a service ...
    snap = telemetry.get().snapshot()  # stable JSON-able dict
    telemetry.disable()                # back to the no-op default

Metric names follow ``repro_<layer>_<name>_<unit>`` (see
CONTRIBUTING.md); layers in the catalog today: ``serving``, ``cache``,
``exec``, ``shard``, ``ingest``, ``server``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .registry import (
    FRAMES_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_key,
)
from .spans import NULL_SPAN, SpanCollector, SpanRecord

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanCollector",
    "SpanRecord",
    "Telemetry",
    "NullTelemetry",
    "SECONDS_BUCKETS",
    "FRAMES_BUCKETS",
    "series_key",
    "get",
    "enable",
    "disable",
    "render_prometheus",
]

SNAPSHOT_VERSION = 1


class Telemetry:
    """A live telemetry pipeline: one registry plus one span collector."""

    enabled = True

    def __init__(
        self,
        slow_tick_threshold: float = 0.1,
        slow_tick_capacity: int = 32,
    ):
        self.registry = MetricsRegistry()
        self.spans = SpanCollector(
            slow_tick_threshold=slow_tick_threshold,
            slow_tick_capacity=slow_tick_capacity,
        )

    # -------------------------------------------------------- instruments

    def counter(self, name: str, labels: Mapping[str, object] | None = None) -> Counter:
        return self.registry.counter(name, labels)

    def gauge(self, name: str, labels: Mapping[str, object] | None = None) -> Gauge:
        return self.registry.gauge(name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> Histogram:
        return self.registry.histogram(name, labels, buckets)

    def span(self, name: str, **meta):
        return self.spans.span(name, **meta)

    def record_span(self, name: str, duration: float, **meta) -> None:
        self.spans.record(name, duration, **meta)

    # ------------------------------------------------------------ output

    def snapshot(self) -> dict:
        """The stable JSON body: registry series (sorted) + slow ticks."""
        body = self.registry.snapshot()
        return {
            "version": SNAPSHOT_VERSION,
            "enabled": True,
            "counters": body["counters"],
            "gauges": body["gauges"],
            "histograms": body["histograms"],
            "slow_ticks": self.spans.slow_ticks(),
        }


class _NullInstrument:
    """One shared object standing in for every disabled instrument."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The module default: every operation is a shared no-op.

    ``counter``/``gauge``/``histogram`` hand back one preallocated
    instrument and ``span`` one preallocated context manager, so the
    disabled path allocates nothing and branches nowhere — the property
    the overhead benchmark (``test_bench_telemetry_overhead``) holds the
    *enabled* path to within 3% of.
    """

    enabled = False

    def counter(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, labels=None, buckets=SECONDS_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name, **meta):
        return NULL_SPAN

    def record_span(self, name, duration, **meta) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "version": SNAPSHOT_VERSION,
            "enabled": False,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "slow_ticks": [],
        }


_NULL = NullTelemetry()
_active: Telemetry | NullTelemetry = _NULL


def get() -> Telemetry | NullTelemetry:
    """The active pipeline — the one call every instrumented site makes."""
    return _active


def enable(
    slow_tick_threshold: float = 0.1,
    slow_tick_capacity: int = 32,
) -> Telemetry:
    """Install (and return) a fresh live pipeline.

    Always fresh: enabling twice starts clean rather than accumulating
    across runs, so a snapshot always describes exactly one enablement
    window.
    """
    global _active
    _active = Telemetry(
        slow_tick_threshold=slow_tick_threshold,
        slow_tick_capacity=slow_tick_capacity,
    )
    return _active


def disable() -> None:
    """Reinstall the shared no-op default."""
    global _active
    _active = _NULL


def render_prometheus(snapshot: dict | None = None) -> str:
    """The snapshot (default: the active pipeline's) as Prometheus text."""
    from .prometheus import render

    return render(snapshot if snapshot is not None else _active.snapshot())
