"""Telemetry: the measurement plane under every serving-stack layer.

The paper's core claim is *economic* — more instances found per detector
invocation — so the system must be able to report its own spend while it
runs: detector calls, cache savings, scheduler fairness, tick latency.
This package is that measurement plane, and the substrate every later
performance PR cites its deltas from.

Three pieces:

* :mod:`~repro.telemetry.registry` — counters, gauges, and fixed-bucket
  histograms behind a get-or-create registry (deterministic snapshot
  structure, thread-safe mutation, stdlib only);
* :mod:`~repro.telemetry.spans` — structured per-tick trace spans
  (plan/detect/commit) and the bounded slow-tick ring buffer;
* the surfaces — a stable JSON snapshot (``--metrics-out``, validated
  against :mod:`~repro.telemetry.schema` in CI), the Prometheus text
  format (:mod:`~repro.telemetry.prometheus`), and the ``repro stats``
  CLI renderer.

**The off switch is the design.**  The module-level default is a
:class:`NullTelemetry` whose instruments are shared, allocation-free
no-ops, so an uninstrumented-feeling hot path costs one attribute lookup
and an empty method call per metric site — and because telemetry only
ever *observes* (it never touches an RNG, a schedule, or a decision),
decision streams are bit-identical with telemetry enabled or disabled
(asserted across a seed matrix in ``tests/test_telemetry.py``).

Usage::

    from repro import telemetry

    telemetry.enable()                 # install a live pipeline
    ... run a service ...
    snap = telemetry.get().snapshot()  # stable JSON-able dict
    telemetry.disable()                # back to the no-op default

Metric names follow ``repro_<layer>_<name>_<unit>`` (see
CONTRIBUTING.md); layers in the catalog today: ``serving``, ``cache``,
``exec``, ``shard``, ``ingest``, ``server``.
"""

from __future__ import annotations

import os
import pathlib
import threading
from typing import Mapping, Sequence

from .registry import (
    FRAMES_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshot_bodies,
    parse_series_key,
    series_key,
)
from .spans import NULL_SPAN, SpanCollector, SpanRecord
from .trace import NULL_TRACER, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanCollector",
    "SpanRecord",
    "Telemetry",
    "NullTelemetry",
    "Tracer",
    "SECONDS_BUCKETS",
    "FRAMES_BUCKETS",
    "series_key",
    "parse_series_key",
    "get",
    "enable",
    "disable",
    "render_prometheus",
    "atomic_write_text",
]

SNAPSHOT_VERSION = 1

# worker-process series are re-published under this prefix in the fleet
# snapshot: ``repro_cache_tier_hits_total`` measured inside shard 2's
# worker becomes ``repro_worker_cache_tier_hits_total{shard_id="2",...}``
# in the coordinator's merged view — same catalog grammar, one new layer
WORKER_PREFIX = "repro_worker_"


class Telemetry:
    """A live telemetry pipeline: one registry, one span collector, and
    (opt-in) one query tracer plus externally ingested worker bodies."""

    enabled = True

    def __init__(
        self,
        slow_tick_threshold: float = 0.1,
        slow_tick_capacity: int = 32,
        trace: bool = False,
        slow_query_threshold: float = 0.25,
        trace_capacity: int = 8192,
    ):
        self.registry = MetricsRegistry()
        self.spans = SpanCollector(
            slow_tick_threshold=slow_tick_threshold,
            slow_tick_capacity=slow_tick_capacity,
        )
        self.tracer = (
            Tracer(
                capacity=trace_capacity,
                slow_query_threshold=slow_query_threshold,
            )
            if trace
            else NULL_TRACER
        )
        # registry bodies ingested from other processes (shard workers),
        # keyed by source so re-collection replaces instead of
        # double-counting; folded into every snapshot
        self._external: dict[tuple, dict] = {}
        self._external_lock = threading.Lock()

    # ---------------------------------------------------- fleet aggregation

    def ingest_external(
        self,
        body: Mapping[str, object],
        labels: Mapping[str, object],
        prefix: str = WORKER_PREFIX,
    ) -> None:
        """Fold another process's registry snapshot into this pipeline's
        fleet view.  Every series is renamed under ``prefix`` (its own
        ``repro_`` prefix stripped) and stamped with ``labels`` (e.g.
        ``shard_id``); ingesting again from the same ``labels`` source
        *replaces* the previous body, so periodic collection stays
        idempotent."""
        source = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        transformed: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for kind in transformed:
            for key, value in dict(body.get(kind, {})).items():
                name, series_labels = parse_series_key(key)
                if name.startswith("repro_"):
                    name = prefix + name[len("repro_"):]
                else:
                    name = prefix + name
                merged_labels = {**series_labels, **dict(labels)}
                transformed[kind][series_key(name, merged_labels)] = value
        with self._external_lock:
            self._external[source] = transformed

    def external_sources(self) -> int:
        """How many distinct processes have been ingested (tests/UI)."""
        with self._external_lock:
            return len(self._external)

    # -------------------------------------------------------- instruments

    def counter(self, name: str, labels: Mapping[str, object] | None = None) -> Counter:
        return self.registry.counter(name, labels)

    def gauge(self, name: str, labels: Mapping[str, object] | None = None) -> Gauge:
        return self.registry.gauge(name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        buckets: Sequence[float] = SECONDS_BUCKETS,
    ) -> Histogram:
        return self.registry.histogram(name, labels, buckets)

    def span(self, name: str, **meta):
        return self.spans.span(name, **meta)

    def record_span(self, name: str, duration: float, **meta) -> None:
        self.spans.record(name, duration, **meta)

    # ------------------------------------------------------------ output

    def snapshot(self) -> dict:
        """The stable JSON body: registry series (sorted) merged with
        every ingested worker body, plus slow ticks and slow queries."""
        body = self.registry.snapshot()
        with self._external_lock:
            externals = [self._external[src] for src in sorted(self._external)]
        for external in externals:
            body = merge_snapshot_bodies(body, external)
        return {
            "version": SNAPSHOT_VERSION,
            "enabled": True,
            "counters": body["counters"],
            "gauges": body["gauges"],
            "histograms": body["histograms"],
            "slow_ticks": self.spans.slow_ticks(),
            "slow_queries": self.tracer.slow_queries(),
        }


class _NullInstrument:
    """One shared object standing in for every disabled instrument."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def set_max(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The module default: every operation is a shared no-op.

    ``counter``/``gauge``/``histogram`` hand back one preallocated
    instrument and ``span`` one preallocated context manager, so the
    disabled path allocates nothing and branches nowhere — the property
    the overhead benchmark (``test_bench_telemetry_overhead``) holds the
    *enabled* path to within 3% of.
    """

    enabled = False
    tracer = NULL_TRACER

    def counter(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, labels=None, buckets=SECONDS_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def span(self, name, **meta):
        return NULL_SPAN

    def record_span(self, name, duration, **meta) -> None:
        pass

    def ingest_external(self, body, labels, prefix=WORKER_PREFIX) -> None:
        pass

    def external_sources(self) -> int:
        return 0

    def snapshot(self) -> dict:
        return {
            "version": SNAPSHOT_VERSION,
            "enabled": False,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "slow_ticks": [],
            "slow_queries": [],
        }


_NULL = NullTelemetry()
_active: Telemetry | NullTelemetry = _NULL


def get() -> Telemetry | NullTelemetry:
    """The active pipeline — the one call every instrumented site makes."""
    return _active


def enable(
    slow_tick_threshold: float = 0.1,
    slow_tick_capacity: int = 32,
    trace: bool = False,
    slow_query_threshold: float = 0.25,
) -> Telemetry:
    """Install (and return) a fresh live pipeline.

    Always fresh: enabling twice starts clean rather than accumulating
    across runs, so a snapshot always describes exactly one enablement
    window.  ``trace=True`` additionally attaches a query
    :class:`~repro.telemetry.trace.Tracer`; the default keeps tracing
    off so metrics-only runs pay nothing for the span plumbing.
    """
    global _active
    _active = Telemetry(
        slow_tick_threshold=slow_tick_threshold,
        slow_tick_capacity=slow_tick_capacity,
        trace=trace,
        slow_query_threshold=slow_query_threshold,
    )
    return _active


def disable() -> None:
    """Reinstall the shared no-op default."""
    global _active
    _active = _NULL


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically: tmp file in the same
    directory, fsync, then ``os.replace``.  Every observability sink
    (``--metrics-out``, ``--trace-out``, exported trace documents) goes
    through this, so a reader — ``repro stats --watch`` polling the
    file, CI picking up an artifact — sees either the previous complete
    document or the new one, never a torn write, even if the writer is
    SIGKILLed mid-dump."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if tmp.exists():  # an exception left the partial tmp behind
            try:
                tmp.unlink()
            except OSError:
                pass


def render_prometheus(snapshot: dict | None = None) -> str:
    """The snapshot (default: the active pipeline's) as Prometheus text."""
    from .prometheus import render

    return render(snapshot if snapshot is not None else _active.snapshot())
