"""Lightweight structured trace spans and the slow-tick ring buffer.

A span is a named, timed region with optional key/value annotations and
nested children — enough structure to answer "where did this tick's
time go" without dragging in a tracing framework.  Spans are collected
per thread (the tick loop is single-threaded; detector worker threads
deliberately record counters only, never spans), and completed *root*
spans named ``tick`` that exceed the configured threshold are copied
into a bounded ring buffer: the slow-tick log.  The buffer is sized in
entries, not time, so a misbehaving deployment can never grow it without
bound — new slow ticks evict the oldest.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SpanRecord", "SpanCollector", "NULL_SPAN"]


@dataclass
class SpanRecord:
    """One completed span: name, timing, annotations, children."""

    name: str
    start: float
    duration: float
    meta: dict = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "duration_seconds": self.duration}
        if self.meta:
            out["meta"] = {k: self.meta[k] for k in sorted(self.meta)}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _NullSpan:
    """The disabled-path span: a shared, allocation-free context manager.

    Every method is a no-op and ``__enter__`` returns the singleton
    itself, so instrumented code reads identically whether telemetry is
    on or off — and the off path costs one attribute lookup per region.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def note(self, **_kw) -> None:
        pass


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times itself and files into the collector's stack.

    ``duration`` is set on exit so enabled-path callers can reuse the
    span's own measurement (stage histograms) instead of timing twice.
    """

    __slots__ = ("_collector", "_name", "_meta", "_start", "duration")

    def __init__(self, collector: "SpanCollector", name: str, meta: dict):
        self._collector = collector
        self._name = name
        self._meta = meta
        self.duration = 0.0

    def note(self, **kw) -> None:
        """Attach measurements discovered mid-span (batch sizes, counts)."""
        self._meta.update(kw)

    def __enter__(self) -> "_Span":
        self._collector._push()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        self.duration = time.perf_counter() - self._start
        record = SpanRecord(
            name=self._name,
            start=self._start,
            duration=self.duration,
            meta=self._meta,
            children=self._collector._pop(),
        )
        self._collector._finish(record)
        return False


class SpanCollector:
    """Per-thread span stacks plus the slow-tick ring buffer.

    ``slow_tick_threshold`` is in seconds; a completed root span named
    ``tick`` whose duration meets it is recorded (as a plain dict tree)
    into a ``deque`` capped at ``slow_tick_capacity``.  The most recent
    completed root span is also kept for tests and the stats surface.
    """

    TICK_SPAN = "tick"

    def __init__(self, slow_tick_threshold: float = 0.1, slow_tick_capacity: int = 32):
        if slow_tick_threshold < 0.0:
            raise ValueError("slow_tick_threshold must be non-negative")
        if slow_tick_capacity < 1:
            raise ValueError("slow_tick_capacity must be at least 1")
        self.slow_tick_threshold = slow_tick_threshold
        self._slow_ticks: deque[dict] = deque(maxlen=slow_tick_capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.last_root: SpanRecord | None = None

    def span(self, name: str, **meta) -> _Span:
        return _Span(self, name, meta)

    def record(self, name: str, duration: float, **meta) -> None:
        """File a *pre-timed* span — a child of the currently open span,
        or a root when none is open.

        The escape hatch for hot loops: a tick's inner rounds accumulate
        stage durations with bare ``perf_counter`` arithmetic (tens of
        nanoseconds) and file one summed span per stage at tick end,
        instead of paying span bookkeeping per round.
        """
        self._finish(
            SpanRecord(name=name, start=0.0, duration=float(duration), meta=meta)
        )

    # ------------------------------------------------- stack bookkeeping

    def _stack(self) -> list[list[SpanRecord]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self) -> None:
        self._stack().append([])

    def _pop(self) -> list[SpanRecord]:
        return self._stack().pop()

    def _finish(self, record: SpanRecord) -> None:
        stack = self._stack()
        if stack:  # a child: file under the enclosing span
            stack[-1].append(record)
            return
        with self._lock:
            self.last_root = record
            if (
                record.name == self.TICK_SPAN
                and record.duration >= self.slow_tick_threshold
            ):
                self._slow_ticks.append(record.to_dict())

    # ----------------------------------------------------------- output

    def slow_ticks(self) -> list[dict]:
        """The retained slow-tick span trees, oldest first."""
        with self._lock:
            return list(self._slow_ticks)
