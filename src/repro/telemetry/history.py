"""A bounded ring of registry snapshots with delta/rate derivation.

Point-in-time snapshots answer "how much, ever"; operators ask "how fast,
*now*".  :class:`SnapshotHistory` keeps the last N scalar snapshots
(counters and gauges only — histogram bodies are heavy and their
``count``/``sum`` scalars carry the rate signal) stamped with a
monotonic clock, and derives windowed deltas and per-second rates
between the oldest and newest retained samples.  The ring is sized in
entries, so a long-lived server's history footprint is a constant.

This module never touches wall-clock structure that matters for replay:
history is read-only over snapshots, recorded outside the tick loop
(the server records between ticks; ``repro stats --watch`` records from
a file poller), and feeds only the ``watch`` op and ``repro top`` —
surfaces, not decisions.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["SnapshotHistory"]


def _scalars(snapshot: dict) -> tuple[dict, dict]:
    """Flatten one registry snapshot into (counters, gauges) scalar maps,
    folding each histogram's ``count``/``sum`` in as counter-like series
    (they are monotone, so deltas/rates are meaningful)."""
    counters = dict(snapshot.get("counters", {}))
    for key, body in snapshot.get("histograms", {}).items():
        counters[f"{key}:count"] = body.get("count", 0)
        counters[f"{key}:sum"] = body.get("sum", 0.0)
    return counters, dict(snapshot.get("gauges", {}))


class SnapshotHistory:
    """The bounded time-series ring behind ``watch`` and ``repro top``."""

    def __init__(self, capacity: int = 120, min_interval: float = 0.0):
        if capacity < 2:
            raise ValueError("history needs at least 2 samples to derive rates")
        self.min_interval = float(min_interval)
        self._ring: deque[tuple[float, dict, dict]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, snapshot: dict, stamp: float | None = None) -> bool:
        """Append one sample (skipped when ``min_interval`` hasn't elapsed
        since the last); returns whether it was recorded."""
        if stamp is None:
            stamp = time.monotonic()
        counters, gauges = _scalars(snapshot)
        with self._lock:
            if self._ring and stamp - self._ring[-1][0] < self.min_interval:
                return False
            self._ring.append((float(stamp), counters, gauges))
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def summary(self) -> dict:
        """The derived view: latest values plus windowed deltas and
        per-second rates across the retained window.

        Counters report ``{"value", "delta", "rate"}``; gauges report
        their latest value (a gauge's delta is rarely meaningful and its
        latest value always is).  Series appearing mid-window are rated
        from their first appearance as zero — a counter born at 100
        contributes a delta of 100, matching what an operator watching
        the ring would have seen.
        """
        with self._lock:
            samples = list(self._ring)
        if not samples:
            return {"samples": 0, "span_seconds": 0.0, "counters": {}, "gauges": {}}
        first_stamp, first_counters, _ = samples[0]
        last_stamp, last_counters, last_gauges = samples[-1]
        span = max(0.0, last_stamp - first_stamp)
        counters: dict[str, dict] = {}
        for key in sorted(last_counters):
            value = last_counters[key]
            delta = value - first_counters.get(key, 0)
            counters[key] = {
                "value": value,
                "delta": delta,
                "rate": (delta / span) if span > 0 else 0.0,
            }
        return {
            "samples": len(samples),
            "span_seconds": span,
            "counters": counters,
            "gauges": {key: last_gauges[key] for key in sorted(last_gauges)},
        }
