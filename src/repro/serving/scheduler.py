"""Allocating the global detector budget across active sessions.

The service's unit of work is a *tick*: a fixed number of detector frames
(the frames-per-tick budget — in a deployment, what one GPU sustains per
scheduling quantum).  A :class:`SchedulerPolicy` divides that budget among
the active sessions:

* :class:`RoundRobinScheduler` — equal shares with a rotating remainder:
  strict fairness, the baseline;
* :class:`PriorityScheduler` — shares proportional to each session's
  submitted priority: weighted fairness for paying tiers;
* :class:`ThompsonSumScheduler` — shares proportional to one Thompson
  sample of each session's best-chunk expected yield.  This generalizes
  :class:`~repro.core.multiquery.MultiQueryExSample`'s arg-max of summed
  draws from "which chunk should the single shared frame go to" to "how
  should many frames split across sessions": sessions whose beliefs
  promise more new results per frame bid higher, and the posterior noise
  keeps cold sessions explorable exactly as Thompson sampling keeps cold
  chunks explorable (§III-C).

All policies are deterministic given the service RNG and return integer
allocations summing to the budget (when any session is eligible).
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

from .session import QuerySession

__all__ = [
    "SchedulerPolicy",
    "RoundRobinScheduler",
    "PriorityScheduler",
    "ThompsonSumScheduler",
    "proportional_allocation",
]


class SchedulerPolicy(Protocol):
    """Maps (active sessions, budget) to per-session frame allocations."""

    def allocate(
        self,
        sessions: Sequence[QuerySession],
        budget: int,
        rng,
    ) -> dict[str, int]:  # pragma: no cover - protocol
        ...


def _validate(sessions: Sequence[QuerySession], budget: int) -> None:
    if budget <= 0:
        raise ValueError("budget must be positive")
    seen = {s.session_id for s in sessions}
    if len(seen) != len(sessions):
        raise ValueError("duplicate session ids in allocation request")


def proportional_allocation(
    ids: Sequence[str], weights: Sequence[float], budget: int
) -> dict[str, int]:
    """Integer shares of ``budget`` proportional to ``weights``.

    Largest-remainder rounding, with ties broken by list position so the
    result is deterministic.  Non-positive weight vectors fall back to an
    even split — a session set with nothing to say still gets served.
    """
    if not ids:
        return {}
    if len(ids) != len(weights):
        raise ValueError("ids and weights must align")
    w = [max(float(v), 0.0) for v in weights]
    total = math.fsum(w)
    if total <= 0.0 or not math.isfinite(total):
        w = [1.0] * len(ids)
        total = float(len(ids))
    shares = [budget * v / total for v in w]
    base = [math.floor(s) for s in shares]
    remainder = budget - sum(base)
    if remainder > 0:
        # stable sort: equal fractional parts resolve in list order
        order = sorted(range(len(ids)), key=lambda i: -(shares[i] - base[i]))
        for i in order[:remainder]:
            base[i] += 1
    return {sid: int(n) for sid, n in zip(ids, base)}


class RoundRobinScheduler:
    """Equal shares, with the leftover frames rotating across ticks.

    With ``budget = q * len(sessions) + r`` every session gets ``q``
    frames and the ``r`` extras go to the ``r`` sessions after a rotating
    offset, so no session is systematically favored by submission order.
    """

    def __init__(self) -> None:
        self._offset = 0

    def allocate(
        self,
        sessions: Sequence[QuerySession],
        budget: int,
        rng,
    ) -> dict[str, int]:
        _validate(sessions, budget)
        if not sessions:
            return {}
        count = len(sessions)
        share, extra = divmod(budget, count)
        alloc = {s.session_id: share for s in sessions}
        for k in range(extra):
            alloc[sessions[(self._offset + k) % count].session_id] += 1
        self._offset = (self._offset + 1) % count
        return alloc


class PriorityScheduler:
    """Shares proportional to each session's submitted priority.

    Fractional shares are **carried across ticks**: each tick a session
    accrues ``budget * w_i / W`` credit and is granted (close to) the
    integer part, with largest-remainder rounding keeping the per-tick
    grants summing to the budget exactly.  The carry is what rules out
    starvation — under plain per-tick rounding a session whose share
    rounds to zero (priority 1 next to priority 1000) would receive
    nothing *forever*, while with the carry its credit grows every tick
    and must eventually convert into a grant.  Cumulative grants stay
    within one frame of the exact proportional share on each side.

    Credit is keyed by session id and dropped once an id leaves the
    active set, so completed sessions do not leak state.
    """

    def __init__(self) -> None:
        self._credit: dict[str, float] = {}

    def allocate(
        self,
        sessions: Sequence[QuerySession],
        budget: int,
        rng,
    ) -> dict[str, int]:
        _validate(sessions, budget)
        if not sessions:
            return {}
        ids = [s.session_id for s in sessions]
        w = [max(float(s.priority), 0.0) for s in sessions]
        total = math.fsum(w)
        if total <= 0.0 or not math.isfinite(total):
            w = [1.0] * len(ids)
            total = float(len(ids))
        credit = [
            self._credit.get(sid, 0.0) + budget * v / total
            for sid, v in zip(ids, w)
        ]
        # a session that just consumed a rounded-up grant carries negative
        # credit; it simply earns nothing until the debt amortizes — a
        # grant itself can never be negative
        base = [max(math.floor(c), 0) for c in credit]
        # floors can overshoot the budget when prior ticks went granted
        # slightly under par; claw back from the *smallest* fractional
        # parts first (stable, so ties resolve in submission order)
        overshoot = sum(base) - budget
        if overshoot > 0:
            order = sorted(range(len(ids)), key=lambda i: credit[i] - base[i])
            for idx in order:
                take = min(base[idx], overshoot)
                base[idx] -= take
                overshoot -= take
                if overshoot == 0:
                    break
        # distribute what's left by largest remaining credit, looping
        # because the leftover can exceed the session count: credits sum
        # to the budget only while the active set is stable — a session
        # leaving mid-run takes its carried credit with it, so the
        # survivors' floors can undershoot by more than one frame each
        remainder = budget - sum(base)
        while remainder > 0:
            order = sorted(range(len(ids)), key=lambda i: -(credit[i] - base[i]))
            take = min(remainder, len(ids))
            for i in order[:take]:
                base[i] += 1
            remainder -= take
        self._credit = {
            sid: c - g for sid, c, g in zip(ids, credit, base)
        }
        return {sid: int(g) for sid, g in zip(ids, base)}


class ThompsonSumScheduler:
    """Yield-weighted shares: each session bids one Thompson draw of its
    best chunk's expected new-results-per-frame, and the budget splits in
    proportion — frames flow to the sessions most likely to convert them
    into results, re-balancing every tick as posteriors sharpen.

    ``priority_weighted=True`` multiplies each bid by the session's
    priority, composing both policies.
    """

    def __init__(self, priority_weighted: bool = False):
        self._priority_weighted = priority_weighted

    def allocate(
        self,
        sessions: Sequence[QuerySession],
        budget: int,
        rng,
    ) -> dict[str, int]:
        _validate(sessions, budget)
        if not sessions:
            return {}
        bids = []
        for session in sessions:
            bid = session.thompson_draw(rng)
            if self._priority_weighted:
                bid *= session.priority
            bids.append(bid)
        return proportional_allocation(
            [s.session_id for s in sessions], bids, budget
        )
