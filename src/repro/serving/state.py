"""State-directory persistence: a service that outlives its process.

A state directory is the on-disk form of a :class:`QueryService`:

    state/
      service.json        # dataset build config (scale, seed, ...)
      cache.sqlite        # the shared detection cache (SqliteBackend)
      ingest.jsonl        # live-ingestion journal (repro.serving.ingest)
      sessions/s1.json    # one SessionSnapshot per session
      sessions/s2.json

``python -m repro submit`` appends a pending snapshot without doing any
work; ``python -m repro serve --state-dir`` loads everything, runs the
scheduler, and writes the snapshots back.  Because snapshots are replayed
against the cache (see :mod:`repro.serving.session`), stopping the
process at any tick loses nothing but the tick in flight.
"""

from __future__ import annotations

import json
import pathlib
import re

from .service import QueryService
from .session import SessionSnapshot

__all__ = [
    "CACHE_FILENAME",
    "CONFIG_FILENAME",
    "StateError",
    "load_or_init_config",
    "load_snapshots",
    "next_session_id",
    "save_sessions",
    "write_snapshot",
]


class StateError(ValueError):
    """A state-directory file that cannot be read back.

    Snapshots are written atomically enough for our purposes (one small
    ``write_text`` per session), so a snapshot that does not parse means
    real corruption — the CLI surfaces this as a clean error naming the
    file instead of a traceback."""

CONFIG_FILENAME = "service.json"
CACHE_FILENAME = "cache.sqlite"
_SESSIONS_DIR = "sessions"
_SID_PATTERN = re.compile(r"^s(\d+)$")


def _sessions_dir(directory: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(directory) / _SESSIONS_DIR
    path.mkdir(parents=True, exist_ok=True)
    return path


def load_or_init_config(directory: str | pathlib.Path, **defaults) -> dict:
    """Read the directory's service config, creating it from ``defaults``
    on first use.  The stored config wins thereafter, so every process
    touching the directory builds identical repositories."""
    path = pathlib.Path(directory) / CONFIG_FILENAME
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(defaults, indent=2) + "\n", encoding="utf-8")
    return dict(defaults)


def next_session_id(directory: str | pathlib.Path) -> str:
    """The next free ``sN`` id given the snapshots already on disk."""
    highest = 0
    for path in _sessions_dir(directory).glob("*.json"):
        match = _SID_PATTERN.match(path.stem)
        if match:
            highest = max(highest, int(match.group(1)))
    return f"s{highest + 1}"


def write_snapshot(
    directory: str | pathlib.Path, snapshot: SessionSnapshot
) -> pathlib.Path:
    path = _sessions_dir(directory) / f"{snapshot.session_id}.json"
    path.write_text(json.dumps(snapshot.to_dict(), indent=2) + "\n", encoding="utf-8")
    return path


def load_snapshots(directory: str | pathlib.Path) -> list[SessionSnapshot]:
    """All stored snapshots, in session-id order."""
    snapshots = []
    for path in sorted(
        _sessions_dir(directory).glob("*.json"),
        key=lambda p: (
            int(_SID_PATTERN.match(p.stem).group(1))
            if _SID_PATTERN.match(p.stem)
            else 1 << 30,
            p.stem,
        ),
    ):
        try:
            snapshots.append(
                SessionSnapshot.from_dict(json.loads(path.read_text(encoding="utf-8")))
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise StateError(f"corrupt snapshot file {path.name}: {exc}") from exc
    return snapshots


def save_sessions(
    service: QueryService, directory: str | pathlib.Path
) -> list[pathlib.Path]:
    """Write every live session's snapshot back to the directory."""
    return [
        write_snapshot(directory, snapshot) for snapshot in service.snapshot_all()
    ]
