"""One query's resumable lifetime inside the serving layer.

A :class:`QuerySession` wraps an incremental
:class:`~repro.core.sampler.ExSample` engine (``batch_size=1`` by
default, so the session can be suspended after any frame; larger
batches trade suspension granularity for per-call amortization, §III-F)
around three serving-specific ideas:

* **shared detection** — the session's detector is a per-category view of
  the dataset's shared :class:`~repro.detection.cache.CachingDetector`,
  so every frame it samples is cached for all present and future queries;
* **warm start** — at admission, :func:`replay_cached_frames` feeds every
  already-cached frame through the session's own discriminator and
  records the (d0, d1) outcomes into its per-chunk ``(N1, n)`` beliefs:
  the session starts with the *posterior* an uninterrupted query would
  have had over those frames, and any results they contain, at zero
  detector cost;
* **replay-based snapshots** — a session is serialized as its spec, its
  warm-start frame list, and the number of engine steps taken
  (:class:`SessionSnapshot`, plain JSON).  Because every decision the
  engine makes is a deterministic function of the session seed and its
  own step count — never of how sessions were interleaved — restoring
  re-runs those steps against the cache (all hits, zero detector cost)
  and lands in the exact pre-pause state.  No RNG internals, stratum
  sets, or tracker state ever need to be pickled.

Live ingestion adds a fourth idea: a session's engine can **absorb new
footage** mid-query (:meth:`QuerySession.absorb_new_footage`), extending
its chunk set through its own
:class:`~repro.core.chunking.IncrementalChunker` without perturbing any
existing arm.  Each absorption is logged as a ``(frames_processed,
horizon)`` pair; the snapshot carries that *horizon log*, so a restore
replays the exact chunk-set evolution the live run saw — extension points
and all — and remains bit-exact even for sessions that caught up with
footage appended mid-flight.  A ``follow`` session additionally refuses
to call itself exhausted when its chunks drain: it idles, schedulable
again the moment ingestion delivers more frames.
"""

from __future__ import annotations

import bisect
import enum
import math
from dataclasses import asdict, dataclass
from typing import Sequence

from ..core import backend
from ..core.belief import GammaBelief
from ..core.sampler import ExSample
from ..detection.cache import DetectionCache
from ..detection.detector import Detector

__all__ = [
    "SessionState",
    "SessionSpec",
    "SessionSnapshot",
    "SessionStatus",
    "QuerySession",
    "derive_session_seed",
    "replay_cached_frames",
]


def derive_session_seed(base_seed: int, session_number: int) -> int:
    """The default per-submission sampling seed: a distinct stream per
    session off one base (service or state-dir) seed.

    Both submit paths — :meth:`QueryService.submit` and the CLI's
    state-dir ``submit`` — must use this same derivation so a session id
    means the same sampling sequence no matter which path queued it, and
    so two identical submissions never become identical samplers.
    """
    return (base_seed * 1_000_003 + session_number) & 0x7FFFFFFF


class SessionState(enum.Enum):
    """Lifecycle of a serving session."""

    ACTIVE = "active"  # eligible for detector budget
    PAUSED = "paused"  # suspended by the user; resumable
    COMPLETED = "completed"  # its result limit is satisfied
    EXHAUSTED = "exhausted"  # ran out of frames or sample budget first
    CANCELLED = "cancelled"  # terminated by the user

    @property
    def terminal(self) -> bool:
        return self in (
            SessionState.COMPLETED,
            SessionState.EXHAUSTED,
            SessionState.CANCELLED,
        )


@dataclass(frozen=True)
class SessionSpec:
    """What was asked for: the validated, immutable query submission.

    ``limit`` mirrors the query LIMIT (§II-B); ``max_samples`` caps the
    session's own detector-charged frames.  With neither, the session
    runs until its chunks are exhausted.  ``seed`` fully determines the
    session's sampling decisions (see the module docstring).
    ``batch_size`` is the engine's §III-F batch — frames chosen per
    engine iteration; it rides the spec (and thus every snapshot)
    because the replayed engine must re-take the same batched draws.
    ``follow`` marks a continuous query over a growing repository:
    draining every currently known chunk parks the session instead of
    terminating it, and footage appended later re-activates it (its
    ``limit`` / ``max_samples`` clauses still terminate as usual).
    """

    dataset: str
    category: str
    limit: int | None = None
    max_samples: int | None = None
    seed: int = 0
    priority: float = 1.0
    warm_start: bool = True
    batch_size: int = 1
    follow: bool = False

    def __post_init__(self) -> None:
        if self.limit is not None and self.limit <= 0:
            raise ValueError("limit must be positive")
        if self.max_samples is not None and self.max_samples <= 0:
            raise ValueError("max_samples must be positive")
        if self.priority <= 0:
            raise ValueError("priority must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")

    def next_batch_size(self, frames_processed: int) -> int:
        """The engine batch to plan after ``frames_processed`` frames:
        the spec's batch, clamped so ``max_samples`` is honored exactly.
        A pure function of the spec and the session's own step count, so
        live execution and snapshot replay compute identical batches."""
        if self.max_samples is None:
            return self.batch_size
        return max(1, min(self.batch_size, self.max_samples - frames_processed))


@dataclass(frozen=True)
class SessionSnapshot:
    """A session serialized through the cache/state layer (plain JSON).

    ``warm_start_frames`` is the exact frame list replayed at admission
    (``None`` means the warm start has not happened yet — a submission
    written to a state directory before any service loaded it);
    ``steps_taken`` is the number of detector-charged *frames* the
    session has processed — restore replays engine iterations (each
    ``batch_size`` frames, final batch clamped by ``max_samples``)
    until the frame count is reached.

    ``horizons`` is the session's horizon log: ``(frames_processed,
    horizon)`` pairs, one per chunk-set the session has sampled under —
    the first entry is the repository horizon at admission, each later
    entry one mid-query footage absorption.  Restore re-takes chunks at
    exactly those horizons while replaying, so a session that caught up
    with footage appended mid-flight restores bit-exact even though the
    repository has since grown further.  Empty means "unknown": restore
    uses the repository's current horizon from step zero (correct for
    pending submissions that never ran, and for pre-ingestion snapshots).
    """

    session_id: str
    dataset: str
    category: str
    limit: int | None
    max_samples: int | None
    seed: int
    priority: float
    warm_start: bool
    state: str
    steps_taken: int
    warm_start_frames: tuple[int, ...] | None
    # result fields let terminal sessions restore *sealed* — status and
    # results served straight from the snapshot, no engine replay
    results_found: int = 0
    result_frames: tuple[int, ...] = ()
    batch_size: int = 1
    follow: bool = False
    horizons: tuple[tuple[int, int], ...] = ()

    @property
    def spec(self) -> SessionSpec:
        return SessionSpec(
            dataset=self.dataset,
            category=self.category,
            limit=self.limit,
            max_samples=self.max_samples,
            seed=self.seed,
            priority=self.priority,
            warm_start=self.warm_start,
            batch_size=self.batch_size,
            follow=self.follow,
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        if self.warm_start_frames is not None:
            data["warm_start_frames"] = list(self.warm_start_frames)
        data["result_frames"] = list(self.result_frames)
        data["horizons"] = [list(pair) for pair in self.horizons]
        return data

    @staticmethod
    def from_dict(data: dict) -> "SessionSnapshot":
        frames = data.get("warm_start_frames")
        return SessionSnapshot(
            session_id=str(data["session_id"]),
            dataset=str(data["dataset"]),
            category=str(data["category"]),
            limit=None if data.get("limit") is None else int(data["limit"]),
            max_samples=(
                None if data.get("max_samples") is None else int(data["max_samples"])
            ),
            seed=int(data.get("seed", 0)),
            priority=float(data.get("priority", 1.0)),
            warm_start=bool(data.get("warm_start", True)),
            state=str(data.get("state", SessionState.ACTIVE.value)),
            steps_taken=int(data.get("steps_taken", 0)),
            warm_start_frames=(
                None if frames is None else tuple(int(f) for f in frames)
            ),
            results_found=int(data.get("results_found", 0)),
            result_frames=tuple(int(f) for f in data.get("result_frames", ())),
            batch_size=int(data.get("batch_size", 1)),
            follow=bool(data.get("follow", False)),
            horizons=tuple(
                (int(steps), int(horizon))
                for steps, horizon in data.get("horizons", ())
            ),
        )


@dataclass(frozen=True)
class SessionStatus:
    """One status-poll row: progress and cost accounting for a session."""

    session_id: str
    dataset: str
    category: str
    state: str
    limit: int | None
    max_samples: int | None
    priority: float
    seed: int
    results_found: int
    frames_processed: int  # detector-charged samples by this session
    warm_frames_replayed: int  # zero-cost frames absorbed at admission
    satisfied: bool
    follow: bool = False
    horizon: int = 0  # repository frames this session's chunks cover

    def to_dict(self) -> dict:
        return asdict(self)


def replay_cached_frames(
    sampler: ExSample,
    cache: DetectionCache,
    dataset: str,
    category: str | None = None,
    frames: Sequence[int] | None = None,
    detector: Detector | None = None,
) -> tuple[list[int], list[int]]:
    """Warm-start ``sampler`` from cached detections, at zero detector cost.

    Feeds each cached frame (``frames``, defaulting to every frame cached
    for ``dataset``, in sorted order) through the sampler's own
    discriminator and records the (d0, d1) outcome into the chunk the
    frame belongs to — exactly the state update Algorithm 1 would have
    made had the sampler processed the frame itself, minus the detector
    invocation.  Frames outside the sampler's chunk spans are skipped.
    The replay touches neither the sampler's history (which counts
    detector-charged samples) nor its without-replacement orders: a later
    re-draw of a replayed frame is a cache hit and the discriminator
    treats it consistently as a re-visit.

    ``detector``, when given, is the fallback for a frame in ``frames``
    that is *no longer cached*: the frame is re-detected (and, through a
    caching detector, re-cached) instead of silently skipped.  This is
    what keeps snapshot restores bit-exact across cache loss — a
    restored session must absorb exactly the warm-start frames its live
    run absorbed, or every decision after the divergence point changes.
    Without a detector, uncached frames are skipped (the pre-snapshot
    admission path, where ``frames`` *is* the cache listing).

    Returns ``(replayed_frames, result_frames)`` — all frames absorbed,
    and the subset that yielded at least one new result.
    """
    if frames is None:
        frames = cache.frames(dataset)
    chunks = sampler.chunks
    raw_starts = [int(c.start_frame) for c in chunks]
    order = sorted(range(len(chunks)), key=raw_starts.__getitem__)
    starts = [raw_starts[i] for i in order]
    ends = [int(chunks[i].end_frame) for i in order]

    replayed: list[int] = []
    result_frames: list[int] = []
    for frame in frames:
        pos = bisect.bisect_right(starts, frame) - 1
        if pos < 0 or frame >= ends[pos]:
            continue  # outside every chunk span
        detections = cache.get(dataset, frame)
        if detections is None:
            if detector is None:
                continue
            detections = tuple(detector.detect(int(frame)))
        if category is not None:
            detections = tuple(d for d in detections if d.category == category)
        outcome = sampler.discriminator.observe(frame, detections)
        sampler.stats.record(int(order[pos]), outcome.d0, outcome.d1)
        replayed.append(int(frame))
        if outcome.d0 > 0:
            result_frames.append(int(frame))
    return replayed, result_frames


class QuerySession:
    """A resumable query: spec + incremental engine + lifecycle state.

    Built by :class:`~repro.serving.service.QueryService`; not normally
    constructed directly.  ``step_frames`` is the only way the session
    advances, which is what makes the step count a complete serialization
    of its progress.
    """

    def __init__(
        self,
        session_id: str,
        spec: SessionSpec,
        engine: ExSample,
        warm_start_frames: Sequence[int] = (),
        warm_result_frames: Sequence[int] = (),
        state: SessionState = SessionState.ACTIVE,
        chunker=None,
        horizon_log: Sequence[tuple[int, int]] | None = None,
    ):
        self._session_id = session_id
        self._spec = spec
        self._engine = engine
        self._warm_frames = tuple(int(f) for f in warm_start_frames)
        self._warm_result_frames = tuple(int(f) for f in warm_result_frames)
        self._state = state
        self._belief = GammaBelief()
        self._sealed: SessionSnapshot | None = None
        # the session's private chunk feed over the (possibly growing)
        # repository; None for sessions built outside the serving layer
        self._chunker = chunker
        self._horizon_log: list[tuple[int, int]] = [
            (int(steps), int(horizon)) for steps, horizon in (horizon_log or ())
        ]
        if not self._horizon_log and chunker is not None:
            self._horizon_log = [(0, chunker.horizon)]
        # a planned-but-uncommitted batch (a detector failure mid-tick):
        # re-offered by the next plan_step so no planned frame is lost
        self._pending: list[tuple[int, int]] = []
        # draw/score wall time of the most recent *fresh* plan (zeros when
        # the last plan_step re-offered a pending batch) — observational
        # only, read by the service's plan-stage telemetry
        self.last_plan_timings: dict[str, float] = {"draw": 0.0, "score": 0.0}
        if self._state is SessionState.ACTIVE:
            self._refresh_state()

    @classmethod
    def from_sealed_snapshot(cls, snapshot: SessionSnapshot) -> "QuerySession":
        """Restore a *terminal* session without replaying anything.

        A completed/exhausted/cancelled session can never be scheduled
        again, so rebuilding its engine would burn replay work only to
        answer status polls — the snapshot already carries everything a
        poll needs."""
        state = SessionState(snapshot.state)
        if not state.terminal:
            raise ValueError(
                f"cannot seal a {state.value} session; only terminal states"
            )
        session = cls.__new__(cls)
        session._session_id = snapshot.session_id
        session._spec = snapshot.spec
        session._engine = None
        session._warm_frames = snapshot.warm_start_frames or ()
        session._warm_result_frames = ()
        session._state = state
        session._belief = GammaBelief()
        session._sealed = snapshot
        session._chunker = None
        session._horizon_log = [
            (int(s), int(h)) for s, h in snapshot.horizons
        ]
        session._pending = []
        session.last_plan_timings = {"draw": 0.0, "score": 0.0}
        return session

    # ------------------------------------------------------------ properties

    @property
    def session_id(self) -> str:
        return self._session_id

    @property
    def spec(self) -> SessionSpec:
        return self._spec

    @property
    def state(self) -> SessionState:
        return self._state

    @property
    def priority(self) -> float:
        return self._spec.priority

    @property
    def engine(self) -> ExSample | None:
        """The live sampling engine, or ``None`` for a sealed restore."""
        return self._engine

    @property
    def results_found(self) -> int:
        if self._sealed is not None:
            return self._sealed.results_found
        return self._engine.results_found

    @property
    def frames_processed(self) -> int:
        """Detector-charged frames sampled by this session (excludes the
        zero-cost warm-start replay)."""
        if self._sealed is not None:
            return self._sealed.steps_taken
        return self._engine.frames_processed

    @property
    def warm_frames_replayed(self) -> int:
        return len(self._warm_frames)

    @property
    def satisfied(self) -> bool:
        return self._spec.limit is not None and self.results_found >= self._spec.limit

    @property
    def horizon(self) -> int:
        """Repository frames this session's chunk set currently covers."""
        if self._chunker is not None:
            return self._chunker.horizon
        if self._horizon_log:
            return self._horizon_log[-1][1]
        return 0

    @property
    def horizon_log(self) -> list[tuple[int, int]]:
        """The ``(frames_processed, horizon)`` absorption history — what
        snapshots persist so restores replay the same chunk-set evolution."""
        return list(self._horizon_log)

    @property
    def schedulable(self) -> bool:
        """Whether a tick could advance this session right now.

        Distinct from :attr:`state`: a ``follow`` session whose chunks
        have drained stays ACTIVE (more footage may arrive) but is not
        schedulable until ingestion delivers it.  The service's
        ``run_until_idle`` loops on this, not on ACTIVE, so idle
        followers do not spin it forever.
        """
        if self._state is not SessionState.ACTIVE or self._engine is None:
            return False
        if self.satisfied:
            return False
        if self._pending:
            return True
        if (
            self._spec.max_samples is not None
            and self.frames_processed >= self._spec.max_samples
        ):
            return False
        return not self._engine.exhausted

    def result_frames(self) -> list[int]:
        """Frames a user would open: every frame that yielded a new result,
        warm-start and sampled alike."""
        if self._sealed is not None:
            return list(self._sealed.result_frames)
        sampled = [int(f) for f in self._engine.history.new_result_frames]
        return sorted(set(self._warm_result_frames) | set(sampled))

    # ------------------------------------------------------------- lifecycle

    def _refresh_state(self) -> None:
        if self._state is not SessionState.ACTIVE:
            return
        if self.satisfied:
            self._state = SessionState.COMPLETED
        elif self._pending:
            # a planned batch is still owed its commit (its tick's
            # detector call failed); the session must stay schedulable
            # even if planning it drained the chunks
            return
        elif (
            self._spec.max_samples is not None
            and self.frames_processed >= self._spec.max_samples
        ):
            self._state = SessionState.EXHAUSTED
        elif self._engine.exhausted:
            # a follow session out of footage idles, awaiting ingestion;
            # only non-follow sessions treat a drained chunk set as final
            if not self._spec.follow:
                self._state = SessionState.EXHAUSTED

    def pause(self) -> None:
        if self._state.terminal:
            raise ValueError(f"cannot pause {self._state.value} session {self._session_id}")
        self._state = SessionState.PAUSED

    def resume(self) -> None:
        if self._state.terminal:
            raise ValueError(
                f"cannot resume {self._state.value} session {self._session_id}"
            )
        self._state = SessionState.ACTIVE
        self._refresh_state()

    def cancel(self) -> None:
        if not self._state.terminal:
            self._state = SessionState.CANCELLED

    # ------------------------------------------------------------- ingestion

    def absorb_new_footage(self) -> int:
        """Extend the engine over clips appended since the last absorption.

        Returns the number of newly covered frames (0 when there is
        nothing new or the session cannot absorb right now).  The
        absorption is logged as a ``(frames_processed, horizon)`` pair so
        snapshot replay re-extends at exactly this point in the decision
        stream.

        A session holding a planned-but-uncommitted batch skips the
        absorption (returning 0) until the batch commits: its pending
        plan was drawn against the old chunk set, and extending under it
        would make the live RNG stream diverge from what the horizon log
        can reproduce.  The skipped footage is simply picked up by the
        next sync after the commit.
        """
        if self._chunker is None or self._state.terminal or self._pending:
            return 0
        if self._chunker.pending_frames <= 0:
            return 0
        before = self._chunker.horizon
        new_chunks = self._chunker.take()
        if not new_chunks:
            return 0
        self._engine.extend(new_chunks)
        self._horizon_log.append((self.frames_processed, self._chunker.horizon))
        return self._chunker.horizon - before

    # ------------------------------------------------------------- execution

    def step_frames(self, budget: int) -> int:
        """Advance until at least ``budget`` frames are processed (or the
        session stops); returns frames actually processed.  Stops early
        on satisfaction, exhaustion, or the session's own ``max_samples``
        cap (honored exactly: the final batch is clamped via
        :meth:`SessionSpec.next_batch_size`).

        With ``batch_size > 1`` the return value may exceed ``budget`` by
        up to ``batch_size - 1``: a session only ever commits *whole*
        engine batches (splitting one would change its sampling stream
        and break snapshot replay).  Callers enforcing a hard budget must
        account for the overshoot themselves — as
        :meth:`QueryService.tick` does by charging it against the
        session's future allocations."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        processed = 0
        while processed < budget:
            pending = self.plan_step()
            if not pending:
                break
            records = self._engine.commit(pending)
            self._pending = []
            self._refresh_state()
            processed += len(records)
        self._refresh_state()
        return processed

    # Two-phase stepping: the coalescing seam.  ``plan_step`` is stage 1
    # of one engine iteration (pure choice, no detections), so a
    # scheduler can gather many sessions' plans, run ONE batched detector
    # call over the union of frames, and hand each session its share via
    # ``commit_step``.  plan → commit equals the engine's own
    # plan/commit exactly: the session's decisions never depend on who
    # else is being served.

    def plan_step(self) -> list[tuple[int, int]]:
        """Stage 1 of one engine iteration: the ``(chunk, frame)`` batch
        this session wants next, or ``[]`` when it is not schedulable
        (paused, satisfied, exhausted, or over its sample cap).

        A batch planned earlier but never committed (its tick's detector
        call failed) is re-offered as-is, so a transient detector error
        costs nothing but the tick in flight — the sampling stream stays
        a pure function of the session's seed and committed step count.
        """
        self.last_plan_timings = {"draw": 0.0, "score": 0.0}
        self._refresh_state()
        if self._state is not SessionState.ACTIVE:
            return []
        if self._pending:
            return list(self._pending)
        if self._engine.exhausted:
            return []
        size = self._spec.next_batch_size(self._engine.frames_processed)
        self._pending = self._engine.plan(batch_size=size)
        self.last_plan_timings = dict(self._engine.last_plan_timings)
        return list(self._pending)

    def commit_step(self, pending, detections_by_frame) -> int:
        """Stage 2+3 of a planned iteration, with detections supplied by
        the coalesced batch call.  ``detections_by_frame`` maps frame
        index to the frame's **unfiltered** detection list (the shared
        detector emits every category); the session filters to its own
        category exactly as its
        :class:`~repro.detection.cache.CategoryFilterDetector` would.
        Returns the number of frames processed."""
        if not pending:
            return 0
        category = self._spec.category
        filtered = {
            frame: [
                d for d in detections_by_frame[frame] if d.category == category
            ]
            for _, frame in pending
        }
        records = self._engine.commit(pending, detections=filtered)
        self._pending = []
        self._refresh_state()
        return len(records)

    def thompson_draw(self, rng) -> float:
        """One Thompson sample of this session's best-chunk yield — its
        bid in the :class:`~repro.serving.scheduler.ThompsonSumScheduler`
        budget auction (generalizing ``MultiQueryExSample``'s arg-max of
        summed draws)."""
        if self._engine is None or self._engine.exhausted:
            return 0.0
        draws = self._belief.sample(self._engine.stats, rng, size=1)[0]
        available = self._engine.chunk_availability
        np_mod = backend.np
        if np_mod is not None and isinstance(draws, np_mod.ndarray):
            masked = np_mod.where(np_mod.asarray(available, dtype=bool), draws, -np_mod.inf)
            return float(masked.max())
        best = -math.inf
        for v, ok in zip(draws, available):
            if ok and v > best:
                best = v
        return best if best > -math.inf else 0.0

    # --------------------------------------------------------- serialization

    def status(self) -> SessionStatus:
        return SessionStatus(
            session_id=self._session_id,
            dataset=self._spec.dataset,
            category=self._spec.category,
            state=self._state.value,
            limit=self._spec.limit,
            max_samples=self._spec.max_samples,
            priority=self._spec.priority,
            seed=self._spec.seed,
            results_found=self.results_found,
            frames_processed=self.frames_processed,
            warm_frames_replayed=self.warm_frames_replayed,
            satisfied=self.satisfied,
            follow=self._spec.follow,
            horizon=self.horizon,
        )

    def snapshot(self) -> SessionSnapshot:
        """Serialize progress as (spec, warm-start frames, step count),
        plus the result fields that let a terminal session restore sealed."""
        if self._sealed is not None:
            return self._sealed
        return SessionSnapshot(
            session_id=self._session_id,
            dataset=self._spec.dataset,
            category=self._spec.category,
            limit=self._spec.limit,
            max_samples=self._spec.max_samples,
            seed=self._spec.seed,
            priority=self._spec.priority,
            warm_start=self._spec.warm_start,
            state=self._state.value,
            steps_taken=self.frames_processed,
            warm_start_frames=self._warm_frames,
            results_found=self.results_found,
            result_frames=tuple(self.result_frames()),
            batch_size=self._spec.batch_size,
            follow=self._spec.follow,
            horizons=tuple(self._horizon_log),
        )
