"""A small blocking client for the NDJSON serving protocol.

One socket, one request in flight at a time — deliberately boring,
because its consumers (tests, the closed-loop load benchmark, shell
scripting via ``python -c``) want determinism-friendly simplicity, not
throughput tricks.  Each load-generator thread owns one
:class:`ServingClient`; concurrency comes from many clients, matching
how the benchmark models "hundreds of concurrent sessions".

The client retries the protocol's explicit backpressure rejections
(``queue-full`` / ``quota-exceeded``) by honoring ``retry_after`` —
the 429/Retry-After loop every well-behaved client of this server is
expected to run.  All other errors raise :class:`ServerError` with the
wire code attached.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any

__all__ = ["ServingClient", "ServerError"]

# rejections a client is *invited* to retry: the response carries
# retry_after precisely because the condition is expected to clear
_RETRYABLE = frozenset({"queue-full", "quota-exceeded"})


class ServerError(RuntimeError):
    """An error response from the server; ``code`` is the wire code."""

    def __init__(self, code: str, message: str, retry_after: float | None = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = retry_after


class ServingClient:
    """Blocking NDJSON client; usable as a context manager.

    ``retries`` bounds how many backpressure rejections one request
    will sit out before giving up (0 disables retrying and surfaces
    ``queue-full`` / ``quota-exceeded`` as :class:`ServerError` —
    what the admission-control tests want).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 40,
    ):
        self._address = (host, port)
        self._timeout = timeout
        self._retries = retries
        self._sock = socket.create_connection(self._address, timeout=timeout)
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------- plumbing

    def request(self, op: str, **fields: Any) -> dict:
        """One op → one response payload; retries backpressure rejects."""
        attempts = 0
        while True:
            response = self._roundtrip({"op": op, **fields})
            if response.get("ok"):
                return response
            code = str(response.get("error", "unknown"))
            retry_after = response.get("retry_after")
            if code in _RETRYABLE and attempts < self._retries:
                attempts += 1
                time.sleep(float(retry_after) if retry_after else 0.05)
                continue
            raise ServerError(code, str(response.get("message", "")), retry_after)

    def _roundtrip(self, payload: dict) -> dict:
        line = (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
        self._sock.sendall(line)
        reply = self._file.readline()
        if not reply:
            raise ConnectionError("server closed the connection")
        return json.loads(reply.decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ endpoints

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def submit(self, dataset: str, category: str, **fields: Any) -> str:
        """Submit a query session; returns its session id.  Accepts the
        service's submit knobs (``limit``, ``max_samples``, ``seed``,
        ``priority``, ``batch_size``, ``follow``) plus ``tenant``."""
        return str(self.request("submit", dataset=dataset,
                                category=category, **fields)["session_id"])

    def status(self, session_id: str | None = None) -> dict | list[dict]:
        """One session's status dict, or every session's when no id."""
        if session_id is None:
            return self.request("status")["sessions"]
        return self.request("status", session_id=session_id)["session"]

    def results(self, session_id: str) -> dict:
        return self.request("results", session_id=session_id)["results"]

    def ingest(self, dataset: str, frames: int, **fields: Any) -> dict:
        return self.request("ingest", dataset=dataset, frames=frames, **fields)

    def stats(self) -> dict:
        return self.request("stats")["stats"]

    def watch(self) -> dict:
        """One dashboard sample: server counters, per-tenant session
        states, per-shard worker summaries, and windowed rates from the
        server's history ring — the feed ``repro top`` polls."""
        return self.request("watch")["watch"]

    def drain(self) -> bool:
        return bool(self.request("drain").get("draining"))

    # --------------------------------------------------------- conveniences

    def wait_first_result(
        self, session_id: str, timeout: float = 60.0, poll: float = 0.005
    ) -> dict:
        """Poll until the session has a result (or is terminal); returns
        the final status dict observed.  The closed-loop benchmark's
        submit-to-first-result clock stops on this returning."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(session_id)
            if status["results_found"] > 0 or status["state"] in (
                "completed", "exhausted", "cancelled"
            ):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"session {session_id} produced no result in {timeout}s"
                )
            time.sleep(poll)

    def wait_terminal(
        self, session_id: str, timeout: float = 120.0, poll: float = 0.005
    ) -> dict:
        """Poll until the session reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(session_id)
            if status["state"] in ("completed", "exhausted", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"session {session_id} not terminal in {timeout}s"
                )
            time.sleep(poll)
