"""The :class:`QueryService` facade: the serving subsystem's front door.

One service owns, per dataset, a shared all-category detector behind a
:class:`~repro.detection.cache.CachingDetector`, and a population of
:class:`~repro.serving.session.QuerySession` objects multiplexed over it
by a :class:`~repro.serving.scheduler.SchedulerPolicy`:

    service = QueryService({repo.name: repo})
    sid = service.submit(repo.name, "bicycle", limit=20)
    service.tick()          # one budgeted scheduling round
    service.pause(sid)      # ... later ...
    service.resume(sid)
    service.run_until_idle()
    service.status(sid).results_found

Two invariants carry the whole design:

* a session's sampling decisions depend only on its own seed and step
  count — never on tick boundaries, budget splits, or which other
  sessions ran — so pausing, re-ordering, or restarting the service
  never changes any query's answer;
* every detector output lands in the shared cache before any session
  sees it, so the marginal cost of a frame is paid at most once per
  dataset across the service's whole lifetime (and, with an on-disk
  backend, across process restarts).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping

from .. import telemetry
from ..core.chunking import IncrementalChunker
from ..core.rng import DecisionRng
from ..telemetry import FRAMES_BUCKETS
from ..telemetry.trace import derive_trace_id
from ..core.sampler import ExSample
from ..detection.cache import CachingDetector, CategoryFilterDetector, DetectionCache
from ..detection.detector import Detection, Detector, OracleDetector
from ..detection.execution import wrap_parallel
from ..detection.cache import TieredBackend
from ..distributed.coordinator import ShardCoordinator
from ..distributed.plane import CachePlane
from ..distributed.worker import DetectorSpec
from ..tracking.discriminator import Discriminator, OracleDiscriminator
from ..video.instances import ObjectInstance
from ..video.repository import VideoClip, VideoRepository
from .scheduler import RoundRobinScheduler, SchedulerPolicy
from .session import (
    QuerySession,
    SessionSnapshot,
    SessionSpec,
    SessionState,
    SessionStatus,
    derive_session_seed,
    replay_cached_frames,
)

__all__ = ["QueryService"]


class QueryService:
    """Long-lived, budget-scheduled distinct-object query serving.

    Parameters
    ----------
    repositories:
        One :class:`VideoRepository` or a mapping of dataset name to
        repository; sessions address datasets by name.
    cache:
        The shared :class:`DetectionCache`; defaults to in-memory.  Pass
        one with an on-disk backend to share detections across processes.
    cache_budget:
        Optional entry budget for the detection caches.  When ``cache``
        is not supplied, the default cache becomes a bounded LRU
        (:class:`~repro.detection.cache.TieredBackend`); an explicitly
        passed ``cache`` is the caller's to bound (wrap its backend in a
        ``TieredBackend`` yourself).  Under sharded execution the budget
        also bounds each worker's local cache.  Eviction degrades to
        re-detection — sampling decisions never depend on cache
        contents, so a budget changes detector-call counts, never
        answers (``tests/test_cache_tiering.py``).
    cache_plane:
        An optional shared :class:`~repro.distributed.plane.CachePlane`
        (sharded execution only): coordinators consult it before fanning
        batches out and fill it with fresh detections, so a frame
        detected under any service sharing the plane is a hit for all.
        The plane is borrowed — :meth:`close` leaves it open for its
        other tenants.
    scheduler:
        Budget-splitting policy; defaults to round-robin.
    frames_per_tick:
        Global detector budget per :meth:`tick` — the scheduling
        quantum.  With batched engines a single tick may overshoot (a
        session always commits whole batches); the excess is charged
        against future allocations, so the long-run rate is exact (see
        :meth:`tick`).
    chunk_frames:
        Chunk size passed to :func:`~repro.core.chunking.make_chunks`,
        either one value for all datasets or a per-dataset mapping
        (``None`` = one chunk per clip).
    detector_factory / discriminator_factory:
        Build the per-dataset shared detector (must emit **all**
        categories — it is cached unfiltered) and the per-session
        discriminator.  Defaults are the oracle pair, mirroring
        :class:`~repro.core.query.QueryEngine`'s defaults.
    batch_size:
        Default §III-F engine batch for new submissions: frames each
        session's policy chooses per engine iteration (1 = the serial
        Algorithm 1).  Rides each session's spec, so restores replay
        with the batch structure the session actually ran with.
    workers / detector_latency:
        Execution-layer knobs: with ``workers > 1`` (or a simulated
        ``detector_latency``) each per-dataset shared detector is
        wrapped in a :class:`~repro.detection.execution.ParallelDetector`
        so the coalesced per-tick batches are serviced concurrently.
        Score-equivalent to sequential execution by construction.
    execution / shards / detector_spec:
        The execution backend.  ``"local"`` (default) runs detection in
        this process; ``"sharded"`` routes each coalesced batch through a
        per-dataset :class:`~repro.distributed.coordinator.ShardCoordinator`
        to ``shards`` worker processes, each owning a contiguous clip
        shard, a detector built from ``detector_spec`` (default: the
        oracle), and a local detection cache.  All sampling state stays
        in this process, so a sharded service returns byte-identical
        answers to a local one — sharding only moves detector work.
        Sharded execution builds detectors in the workers, so it excludes
        a custom ``detector_factory`` and the in-process ``workers``
        pool.
    seed:
        Seeds the scheduler RNG and the per-session default seeds.
        Session decisions use only per-session RNGs (see module
        docstring), so scheduler draws never perturb query results.
    """

    def __init__(
        self,
        repositories: VideoRepository | Mapping[str, VideoRepository],
        cache: DetectionCache | None = None,
        scheduler: SchedulerPolicy | None = None,
        frames_per_tick: int = 16,
        chunk_frames: int | None | Mapping[str, int | None] = None,
        detector_factory: Callable[[VideoRepository], Detector] | None = None,
        discriminator_factory: Callable[[VideoRepository, str], Discriminator] | None = None,
        use_random_plus: bool = True,
        batch_size: int = 1,
        workers: int = 1,
        detector_latency: float = 0.0,
        execution: str = "local",
        shards: int = 1,
        detector_spec: DetectorSpec | None = None,
        seed: int = 0,
        cache_budget: int | None = None,
        cache_plane: CachePlane | None = None,
    ):
        if isinstance(repositories, VideoRepository):
            repositories = {repositories.name: repositories}
        # an empty mapping is legal: a service restoring only sealed
        # (terminal) sessions never touches a repository
        if frames_per_tick <= 0:
            raise ValueError("frames_per_tick must be positive")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if detector_latency < 0.0:
            raise ValueError("detector_latency must be non-negative")
        if execution not in ("local", "sharded"):
            raise ValueError(
                f"unknown execution backend {execution!r}; options: local, sharded"
            )
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if execution == "local" and shards > 1:
            raise ValueError("shards > 1 requires execution='sharded'")
        if execution == "sharded":
            if detector_factory is not None:
                raise ValueError(
                    "sharded execution builds detectors inside the workers "
                    "from detector_spec; detector_factory is local-only"
                )
            if workers > 1:
                raise ValueError(
                    "workers is the in-process pool knob; sharded execution "
                    "runs its own worker processes (use shards instead)"
                )
        if cache_budget is not None and cache_budget < 0:
            raise ValueError("cache_budget must be non-negative")
        if cache_plane is not None and execution != "sharded":
            raise ValueError(
                "cache_plane is consulted by the shard coordinator; it "
                "requires execution='sharded'"
            )
        self._repos = dict(repositories)
        if cache is not None:
            self._cache = cache
        elif cache_budget is not None:
            self._cache = DetectionCache(TieredBackend(max_entries=cache_budget))
        else:
            self._cache = DetectionCache()
        self._scheduler = scheduler if scheduler is not None else RoundRobinScheduler()
        self._frames_per_tick = frames_per_tick
        self._chunk_frames = chunk_frames
        self._detector_factory = (
            detector_factory
            if detector_factory is not None
            else lambda repo: OracleDetector(repo)
        )
        self._discriminator_factory = (
            discriminator_factory
            if discriminator_factory is not None
            else lambda repo, category: OracleDiscriminator()
        )
        self._use_random_plus = use_random_plus
        self._batch_size = batch_size
        self._workers = workers
        self._detector_latency = detector_latency
        self._execution = execution
        self._shards = shards
        self._detector_spec = detector_spec
        self._cache_budget = cache_budget
        self._cache_plane = cache_plane
        self._seed = seed
        self._rng = DecisionRng((seed, 0x5C4ED))
        self._detectors: dict[str, CachingDetector] = {}
        self._sessions: dict[str, QuerySession] = {}
        self._next_id = 1
        self._ticks = 0
        # frames a session processed beyond its past allocations (batched
        # engines commit whole batches); charged against future shares so
        # long-run throughput stays at frames_per_tick
        self._deficits: dict[str, int] = {}
        # memoized telemetry instrument handles, rebuilt per pipeline
        # (see _tick_instruments)
        self._tel_memo: tuple | None = None

    # ------------------------------------------------------------ properties

    @property
    def cache(self) -> DetectionCache:
        return self._cache

    @property
    def cache_plane(self) -> CachePlane | None:
        """The shared cross-coordinator cache plane, if one was passed."""
        return self._cache_plane

    @property
    def frames_per_tick(self) -> int:
        return self._frames_per_tick

    @property
    def ticks(self) -> int:
        return self._ticks

    @property
    def detector_calls(self) -> int:
        """Real detector invocations across all datasets — the number the
        paper's cost model charges, and the one the cache exists to
        minimize."""
        return sum(d.detector_calls for d in self._detectors.values())

    @property
    def sessions(self) -> dict[str, QuerySession]:
        return dict(self._sessions)

    @property
    def deficits(self) -> dict[str, int]:
        """Frames each session has processed beyond its past allocations
        (batched engines commit whole batches; see :meth:`tick`).  Read
        by budget-conservation checks — after a completed tick, a
        schedulable session's debt never exceeds ``batch_size - 1``."""
        return dict(self._deficits)

    @property
    def execution(self) -> str:
        """The execution backend: ``"local"`` or ``"sharded"``."""
        return self._execution

    @property
    def shards(self) -> int:
        return self._shards

    def dataset_names(self) -> list[str]:
        """Registered dataset names, sorted."""
        return sorted(self._repos)

    def shard_backend(self, dataset: str) -> ShardCoordinator | None:
        """The dataset's :class:`ShardCoordinator` under sharded
        execution (built on demand), ``None`` under local execution —
        the seam the simulation harness's worker-kill fault reaches
        through."""
        if self._execution != "sharded":
            return None
        inner = self._shared_detector(dataset).wrapped
        assert isinstance(inner, ShardCoordinator)
        return inner

    def repository(self, dataset: str) -> VideoRepository:
        """The live repository backing ``dataset`` (KeyError if unknown) —
        the object ingestion appends to."""
        return self._repository(dataset)

    def register(self, dataset: str, repository: VideoRepository) -> None:
        """Admit a new dataset at runtime — how a follow-mode server
        accepts footage for a camera that did not exist at startup."""
        if dataset in self._repos:
            raise ValueError(f"dataset {dataset!r} is already registered")
        self._repos[dataset] = repository

    def active_sessions(self) -> list[QuerySession]:
        """Sessions eligible for budget, in submission order."""
        return [s for s in self._sessions.values() if s.state is SessionState.ACTIVE]

    def schedulable_sessions(self) -> list[QuerySession]:
        """Active sessions a tick could actually advance — excludes
        ``follow`` sessions idling for footage (ACTIVE but drained)."""
        return [s for s in self._sessions.values() if s.schedulable]

    # ------------------------------------------------------------- lifecycle

    def submit(
        self,
        dataset: str,
        category: str,
        limit: int | None = None,
        max_samples: int | None = None,
        priority: float = 1.0,
        seed: int | None = None,
        warm_start: bool = True,
        batch_size: int | None = None,
        follow: bool = False,
    ) -> str:
        """Admit a query; returns its session id.

        With ``warm_start`` (the default) every frame already in the
        cache is replayed through the new session's discriminator first —
        a query over well-trodden data may complete without a single
        detector call.  ``batch_size`` overrides the service default for
        this session's engine batch.  ``follow`` submits a *continuous*
        query: it survives draining the currently known footage and
        resumes whenever ingestion appends more (so its category need not
        exist yet — the objects it searches for may not have been
        recorded).
        """
        tracer = telemetry.get().tracer
        admit_start = time.perf_counter() if tracer.enabled else 0.0
        repo = self._repository(dataset)
        if not follow and category not in repo.categories():
            raise ValueError(
                f"category {category!r} not present in dataset {dataset!r}; "
                f"available: {repo.categories()}"
            )
        if seed is None:
            seed = derive_session_seed(self._seed, self._next_id)
        spec = SessionSpec(
            dataset=dataset,
            category=category,
            limit=limit,
            max_samples=max_samples,
            seed=seed,
            priority=priority,
            warm_start=warm_start,
            batch_size=self._batch_size if batch_size is None else batch_size,
            follow=follow,
        )
        session_id = f"s{self._next_id}"
        self._next_id += 1
        warm_frames = self._cache.frames(dataset) if warm_start else []
        session = self._build_session(session_id, spec, warm_frames)
        self._sessions[session_id] = session
        if tracer.enabled:
            # the trace is born here: admission covers validation, session
            # construction, and the warm-start replay — the first answer
            # to "why was this query's first result slow"
            trace_id = tracer.begin_trace(session_id)
            tracer.record_span(
                trace_id,
                "admission",
                admit_start,
                time.perf_counter() - admit_start,
                dataset=dataset,
                category=category,
                warm_frames=len(warm_frames),
            )
        return session_id

    def pause(self, session_id: str) -> None:
        self._session(session_id).pause()

    def resume(self, session_id: str) -> None:
        self._session(session_id).resume()

    def cancel(self, session_id: str) -> None:
        self._session(session_id).cancel()

    def status(self, session_id: str) -> SessionStatus:
        return self._session(session_id).status()

    def statuses(self) -> list[SessionStatus]:
        return [s.status() for s in self._sessions.values()]

    def results(self, session_id: str) -> dict:
        """Machine-readable results payload for one session."""
        session = self._session(session_id)
        status = session.status()
        payload = status.to_dict()
        payload["result_frames"] = session.result_frames()
        return payload

    # ------------------------------------------------------------- ingestion

    def feed(
        self,
        dataset: str,
        num_frames: int,
        instances: Iterable[ObjectInstance] = (),
        name: str | None = None,
        fps: float | None = None,
    ) -> VideoClip:
        """Ingest one newly recorded clip and wake the dataset's sessions.

        Appends the clip (and its ground truth) to the dataset's
        repository at the current horizon, then :meth:`sync`\\ s so every
        running session absorbs the footage immediately.  Returns the new
        clip.  The companion path for footage appended *around* the
        service (another process touching the same repository object, or
        the CLI's ingest journal) is :meth:`sync` alone — :meth:`tick`
        calls it automatically, so out-of-band growth is picked up no
        later than the next scheduling round.
        """
        repo = self._repository(dataset)
        clip = repo.append_clip(num_frames, instances, name=name, fps=fps)
        self.sync(dataset)
        return clip

    def sync(self, dataset: str | None = None) -> dict[str, int]:
        """Let sessions absorb any footage appended since they last looked.

        Walks every non-terminal session (of ``dataset``, or all) and
        extends its engine over newly visible clips via its own chunk
        feed.  Returns ``{session_id: frames_absorbed}`` for the sessions
        that grew.  O(sessions) integer compares when nothing changed, so
        it is safe to call every tick.
        """
        absorbed: dict[str, int] = {}
        for session in self._sessions.values():
            if dataset is not None and session.spec.dataset != dataset:
                continue
            grew = session.absorb_new_footage()
            if grew:
                absorbed[session.session_id] = grew
        if absorbed:
            tel = telemetry.get()
            if tel.enabled:
                tel.counter("repro_serving_absorbed_frames_total").inc(
                    sum(absorbed.values())
                )
        return absorbed

    # ------------------------------------------------------------- execution

    def _tick_instruments(self, tel) -> dict:
        """Memoized instrument handles for the tick loop's emissions.

        The tick path must not pay a series-key lookup per emission, so
        handles are resolved once per pipeline (identity-checked: a
        fresh ``telemetry.enable()`` rebuilds them) and per-session
        gauges get-or-create into the memo's ``grant``/``deficit`` maps.
        """
        memo = self._tel_memo
        if memo is None or memo[0] is not tel:
            handles = {
                "schedulable": tel.gauge("repro_serving_sessions_schedulable"),
                "ticks": tel.counter("repro_serving_ticks_total"),
                "frames": tel.counter("repro_serving_frames_total"),
                "tick_seconds": tel.histogram("repro_serving_tick_seconds"),
                "tick_frames": tel.histogram(
                    "repro_serving_tick_frames", buckets=FRAMES_BUCKETS
                ),
                "stage": {
                    name: tel.histogram(
                        "repro_serving_stage_seconds", {"stage": name}
                    )
                    for name in ("plan", "coalesce", "detect", "commit")
                },
                "plan_split": {
                    name: tel.histogram(
                        "repro_serving_plan_seconds", {"stage": name}
                    )
                    for name in ("draw", "score")
                },
                "grant": {},
                "deficit": {},
            }
            self._tel_memo = memo = (tel, handles)
        return memo[1]

    def tick(self) -> dict[str, int]:
        """One scheduling round: split the frames-per-tick budget across
        active sessions and advance each by its share, **coalescing**
        detector work across sessions.  Returns frames actually processed
        per session (empty when the service is idle).

        The tick runs in *rounds*.  Each round, every session with budget
        left plans one engine iteration (its next §III-F batch of frames
        — stage 1 only, no detections needed); the planned frames are
        merged per dataset with duplicates collapsed, issued to the
        shared caching detector as **one batched call** (partial cache
        hits split off, misses fanned out by the
        :class:`~repro.detection.execution.ParallelDetector` when workers
        are configured), and handed back for each session to commit in
        submission order.  Because a session's plan depends only on its
        own seed and step count — never on other sessions — coalescing
        is invisible to every query's answer: each session processes
        exactly the frames, in exactly the order, that serving it alone
        would have.

        Budget semantics with batched engines: a session always commits
        *whole* engine batches (splitting one would change its sampling
        decisions and break snapshot replay), so a tick may overshoot a
        session's share by up to ``batch_size - 1`` frames.  The
        overshoot is carried as a deficit against the session's future
        allocations, so sustained throughput converges to
        ``frames_per_tick`` — the quantum is a target per tick and an
        exact long-run rate.

        Failure containment: if the shared detector raises mid-tick, the
        sessions that had already planned keep their planned batch and
        re-offer it on the next tick (:meth:`QuerySession.plan_step`),
        so a transient detector error loses at most the tick in flight —
        the same durability the state layer promises.

        Telemetry (no-op unless :mod:`repro.telemetry` is enabled; never
        consulted for any decision): the whole tick runs under a ``tick``
        trace span with child spans per stage (``plan``/``coalesce``/
        ``detect``/``commit``), feeding the slow-tick ring buffer, plus
        tick-latency/frame histograms, per-session grant and deficit
        gauges, and per-stage duration histograms.
        """
        tel = telemetry.get()
        tick_start = time.perf_counter() if tel.enabled else 0.0
        with tel.span("tick", tick=self._ticks + 1) as tick_span:
            # pick up footage appended out-of-band since the last round; a
            # session holding a pending (failed-tick) batch defers absorption
            # until that batch commits, so this is always replay-safe
            with tel.span("sync"):
                self.sync()
            # allocate over sessions a tick can actually advance: a follow
            # session idling for footage is ACTIVE but handing it budget
            # would silently waste its share (plans come back empty and the
            # remainder is never redistributed within the tick)
            active = self.schedulable_sessions()
            if not active:
                return {}
            self._ticks += 1
            # trace contexts for this tick's sessions.  begin_trace is
            # idempotent and registers restored sessions (which never
            # passed through submit in this process), so every traced
            # session's spans have a home.  Tracing is observation only:
            # the decision stream is byte-identical on or off.
            tracer = tel.tracer
            traced = tracer.enabled
            trace_ctx: dict[str, tuple[str, str]] = {}
            if traced:
                for session in active:
                    trace_id = tracer.begin_trace(session.session_id)
                    trace_ctx[session.session_id] = (
                        trace_id,
                        tracer.root_span_id(trace_id),
                    )
            allocation = self._scheduler.allocate(
                active, self._frames_per_tick, self._rng
            )
            if tel.enabled:
                inst = self._tick_instruments(tel)
                inst["schedulable"].set(len(active))
                grants = inst["grant"]
                for session in active:
                    session_id = session.session_id
                    gauge = grants.get(session_id)
                    if gauge is None:
                        gauge = grants[session_id] = tel.gauge(
                            "repro_serving_session_grant_frames",
                            {"session": session_id},
                        )
                    gauge.set(allocation.get(session_id, 0))
            processed: dict[str, int] = {s.session_id: 0 for s in active}
            # forget debt only for sessions that are gone for good; paused
            # sessions keep theirs and pay it on resume
            self._deficits = {
                sid: debt for sid, debt in self._deficits.items()
                if sid in self._sessions and not self._sessions[sid].state.terminal
            }
            remaining = {
                s.session_id: allocation.get(s.session_id, 0)
                - self._deficits.get(s.session_id, 0)
                for s in active
            }
            completed = False
            # stage timing accumulates with bare perf_counter arithmetic —
            # a span per stage per *round* would tax the hot loop, so one
            # summed span per stage is filed at tick end instead
            enabled = tel.enabled
            stage_seconds = {"plan": 0.0, "coalesce": 0.0, "detect": 0.0,
                             "commit": 0.0}
            # the plan stage split by what the engine spent drawing
            # (Thompson sampling) vs scoring (frame pick + bookkeeping)
            plan_split = {"draw": 0.0, "score": 0.0}
            rounds = 0
            detect_frames = 0
            try:
                while True:
                    mark = time.perf_counter() if enabled else 0.0
                    # stage 1, all sessions: plan one engine iteration each
                    plans: list[tuple[QuerySession, list[tuple[int, int]]]] = []
                    for session in active:  # submission order, policy-free
                        if remaining[session.session_id] <= 0:
                            continue
                        plan_start = time.perf_counter() if traced else 0.0
                        pending = session.plan_step()
                        if traced:
                            trace_id, _root = trace_ctx[session.session_id]
                            tracer.record_span(
                                trace_id,
                                "plan",
                                plan_start,
                                time.perf_counter() - plan_start,
                                tick=self._ticks,
                                frames=len(pending),
                            )
                        if enabled:
                            timings = session.last_plan_timings
                            plan_split["draw"] += timings["draw"]
                            plan_split["score"] += timings["score"]
                        if pending:
                            plans.append((session, pending))
                        else:  # not schedulable (satisfied/exhausted/capped)
                            remaining[session.session_id] = 0
                    if enabled:
                        now = time.perf_counter()
                        stage_seconds["plan"] += now - mark
                        mark = now
                    if not plans:
                        break
                    rounds += 1
                    # stage 2, once per dataset: one batched detector call over
                    # the union of planned frames, duplicates coalesced
                    frames_by_dataset: dict[str, dict[int, None]] = {}
                    for session, pending in plans:
                        ordered = frames_by_dataset.setdefault(
                            session.spec.dataset, {}
                        )
                        for _, frame in pending:
                            ordered[frame] = None
                    if enabled:
                        now = time.perf_counter()
                        stage_seconds["coalesce"] += now - mark
                        mark = now
                    detections: dict[str, dict[int, list[Detection]]] = {}
                    for dataset, ordered in frames_by_dataset.items():
                        frames = list(ordered)
                        if traced:
                            # declare which traces ride this coalesced
                            # batch so the shard coordinator can parent
                            # its dispatch spans; cleared in the finally
                            # so a detector error never leaks contexts
                            # into an unrelated later batch
                            tracer.begin_dispatch(
                                trace_ctx[session.session_id]
                                for session, _pending in plans
                                if session.spec.dataset == dataset
                            )
                        try:
                            per_frame = self._shared_detector(dataset).detect_many(
                                frames
                            )
                        finally:
                            if traced:
                                tracer.end_dispatch()
                        detections[dataset] = dict(zip(frames, per_frame))
                        detect_frames += len(frames)
                    if enabled:
                        now = time.perf_counter()
                        stage_seconds["detect"] += now - mark
                        mark = now
                    # stage 3, all sessions: commit in submission order
                    for session, pending in plans:
                        commit_start = time.perf_counter() if traced else 0.0
                        count = session.commit_step(
                            pending, detections[session.spec.dataset]
                        )
                        if traced:
                            trace_id, _root = trace_ctx[session.session_id]
                            tracer.record_span(
                                trace_id,
                                "commit",
                                commit_start,
                                time.perf_counter() - commit_start,
                                tick=self._ticks,
                                frames=count,
                            )
                            if session.state.terminal:
                                tracer.finish_trace(
                                    trace_id, session.state.value
                                )
                        processed[session.session_id] += count
                        remaining[session.session_id] -= count
                    if enabled:
                        stage_seconds["commit"] += time.perf_counter() - mark
                completed = True
            finally:
                # settle the books even if the detector raised mid-tick: every
                # committed frame is charged, old debt survives, and the tick's
                # share is only credited when the quantum actually completed
                for session in active:
                    session_id = session.session_id
                    debt = self._deficits.pop(session_id, 0)
                    credit = allocation.get(session_id, 0) if completed else 0
                    new_debt = debt + processed[session_id] - credit
                    if new_debt > 0:
                        self._deficits[session_id] = new_debt
                if tel.enabled:
                    deficits = self._tick_instruments(tel)["deficit"]
                    for session in active:
                        session_id = session.session_id
                        gauge = deficits.get(session_id)
                        if gauge is None:
                            gauge = deficits[session_id] = tel.gauge(
                                "repro_serving_session_deficit_frames",
                                {"session": session_id},
                            )
                        gauge.set(self._deficits.get(session_id, 0))
                self._cache.flush()  # one durability point per scheduling quantum
            if tel.enabled:
                inst = self._tick_instruments(tel)
                stage_hists = inst["stage"]
                for name in ("plan", "coalesce", "detect", "commit"):
                    if name == "detect":
                        tel.record_span(
                            name, stage_seconds[name],
                            rounds=rounds, frames=detect_frames,
                        )
                    else:
                        tel.record_span(name, stage_seconds[name], rounds=rounds)
                    stage_hists[name].observe(stage_seconds[name])
                for name in ("draw", "score"):
                    inst["plan_split"][name].observe(plan_split[name])
                frames_done = sum(processed.values())
                tick_span.note(frames=frames_done, sessions=len(active))
                inst["ticks"].inc()
                inst["frames"].inc(frames_done)
                inst["tick_seconds"].observe(time.perf_counter() - tick_start)
                inst["tick_frames"].observe(frames_done)
        return processed

    def run_until_idle(self, max_ticks: int | None = None) -> int:
        """Tick until no session can be advanced (or ``max_ticks``);
        returns the number of ticks executed.

        "Idle" means no *schedulable* session — ``follow`` sessions that
        drained the known footage stay ACTIVE (awaiting ingestion) but do
        not keep this loop spinning.
        """
        if max_ticks is not None and max_ticks <= 0:
            raise ValueError("max_ticks must be positive")
        executed = 0
        while self.schedulable_sessions():
            if max_ticks is not None and executed >= max_ticks:
                break
            self.tick()
            executed += 1
        return executed

    def collect_worker_telemetry(self) -> int:
        """Harvest every built shard coordinator's workers into the
        active pipeline's fleet view (no-op under local execution or
        with telemetry disabled); returns workers collected.  The stats
        surfaces call this so a snapshot taken mid-run already carries
        ``repro_worker_*`` series — :meth:`close` harvests once more for
        the final ``--metrics-out`` write."""
        if self._execution != "sharded":
            return 0
        collected = 0
        for detector in self._detectors.values():
            inner = detector.wrapped
            if isinstance(inner, ShardCoordinator):
                collected += inner.collect_telemetry()
        return collected

    def close(self) -> None:
        """Release execution resources: detector worker pools and the
        cache handle (committing any buffered on-disk writes).  Under
        sharded execution each coordinator harvests its workers'
        telemetry before shutting them down; open traces are closed so
        the export carries a root span for every session."""
        tracer = telemetry.get().tracer
        if tracer.enabled:
            tracer.finish_all(
                {
                    derive_trace_id(session_id): session.state.value
                    for session_id, session in self._sessions.items()
                }
            )
        for detector in self._detectors.values():
            closer = getattr(detector.wrapped, "close", None)
            if closer is not None:
                closer()
        self._cache.close()

    # --------------------------------------------------------- serialization

    def snapshot(self, session_id: str) -> SessionSnapshot:
        return self._session(session_id).snapshot()

    def snapshot_all(self) -> list[SessionSnapshot]:
        return [s.snapshot() for s in self._sessions.values()]

    def restore(self, snapshot: SessionSnapshot) -> str:
        """Rebuild a session from its snapshot by deterministic replay.

        Warm-start frames are re-absorbed from the cache (or, for a
        not-yet-started submission, taken fresh from the current cache),
        then the recorded number of engine steps is re-run — all cache
        hits when the snapshot's frames are still cached, so the restore
        costs no detector calls.  The snapshot's horizon log drives the
        chunk-set evolution: chunks are taken up to the admission-time
        horizon first and re-extended at each recorded absorption point,
        so sessions that caught up with footage ingested mid-query replay
        bit-exact even though the repository has grown since.  Footage
        beyond the last logged horizon is *not* absorbed here — the next
        :meth:`sync` (or tick) picks it up, exactly as it would have for
        the live session.  Terminal sessions skip the replay entirely and
        restore *sealed*: they can never be scheduled again, and the
        snapshot already answers every status/results poll.
        """
        if snapshot.session_id in self._sessions:
            raise ValueError(f"session {snapshot.session_id!r} already exists")
        spec = snapshot.spec
        if SessionState(snapshot.state).terminal:
            # sealed: no engine, so no repository is needed at all
            session = QuerySession.from_sealed_snapshot(snapshot)
            self._sessions[snapshot.session_id] = session
            self._reserve_id(snapshot.session_id)
            return snapshot.session_id
        self._repository(spec.dataset)  # validate before building anything
        warm_frames = snapshot.warm_start_frames
        if warm_frames is None:
            warm_frames = self._cache.frames(spec.dataset) if spec.warm_start else []
        session = self._build_session(
            snapshot.session_id,
            spec,
            warm_frames,
            replay_steps=snapshot.steps_taken,
            state=SessionState(snapshot.state),
            horizons=snapshot.horizons,
        )
        self._sessions[snapshot.session_id] = session
        self._reserve_id(snapshot.session_id)
        return snapshot.session_id

    def _reserve_id(self, session_id: str) -> None:
        """Keep fresh ids clear of restored ones (s7 -> next is s8)."""
        suffix = session_id[1:]
        if session_id.startswith("s") and suffix.isdigit():
            self._next_id = max(self._next_id, int(suffix) + 1)

    # ------------------------------------------------------------- internals

    def _repository(self, dataset: str) -> VideoRepository:
        repo = self._repos.get(dataset)
        if repo is None:
            raise KeyError(
                f"unknown dataset {dataset!r}; available: {sorted(self._repos)}"
            )
        return repo

    def _session(self, session_id: str) -> QuerySession:
        session = self._sessions.get(session_id)
        if session is None:
            raise KeyError(f"unknown session {session_id!r}")
        return session

    def _shared_detector(self, dataset: str) -> CachingDetector:
        detector = self._detectors.get(dataset)
        if detector is None:
            # execution sits *inside* the cache so hits never pay the
            # (simulated) per-call overhead — local worker pools and the
            # sharded coordinator alike only ever see cache misses
            if self._execution == "sharded":
                inner: Detector = ShardCoordinator(
                    self._repository(dataset),
                    self._shards,
                    detector_spec=self._detector_spec,
                    latency=self._detector_latency,
                    dataset=dataset,
                    cache_plane=self._cache_plane,
                    cache_budget=self._cache_budget,
                )
            else:
                inner = wrap_parallel(
                    self._detector_factory(self._repository(dataset)),
                    self._workers,
                    self._detector_latency,
                )
            detector = CachingDetector(inner, self._cache, dataset)
            self._detectors[dataset] = detector
        return detector

    def _chunk_frames_for(self, dataset: str) -> int | None:
        if isinstance(self._chunk_frames, Mapping):
            return self._chunk_frames.get(dataset)
        return self._chunk_frames

    def _build_session(
        self,
        session_id: str,
        spec: SessionSpec,
        warm_frames,
        replay_steps: int = 0,
        state: SessionState = SessionState.ACTIVE,
        horizons: tuple[tuple[int, int], ...] = (),
    ) -> QuerySession:
        repo = self._repository(spec.dataset)
        rng = DecisionRng(spec.seed)
        chunker = IncrementalChunker(
            repo,
            rng,
            chunk_frames=self._chunk_frames_for(spec.dataset),
            use_random_plus=self._use_random_plus,
        )
        log = [(int(steps), int(horizon)) for steps, horizon in horizons]
        if not log:
            # fresh submission (or a pre-ingestion snapshot): the whole
            # current repository is the admission-time chunk set
            log = [(0, repo.horizon)]
        chunks = chunker.take(up_to_horizon=log[0][1])
        engine = ExSample(
            chunks,
            CategoryFilterDetector(self._shared_detector(spec.dataset), spec.category),
            self._discriminator_factory(repo, spec.category),
            rng=rng,
            batch_size=spec.batch_size,
            repository=repo,
        )
        # the shared detector backs the replay so a warm-start frame that
        # fell out of the cache (process crash with an in-memory backend,
        # an operator wiping cache.sqlite) is re-detected instead of
        # silently skipped — skipping would silently change every sampling
        # decision a restored session makes after the divergence point
        replayed, result_frames = replay_cached_frames(
            engine,
            self._cache,
            spec.dataset,
            category=spec.category,
            frames=warm_frames,
            detector=self._shared_detector(spec.dataset),
        )

        # replay by frame count, not step count, planning each batch with
        # the same max_samples clamp the live session used — both sides
        # compute batch sizes from (spec, frames_processed) alone, so the
        # replayed sampling stream is identical.  The horizon log gates
        # chunk-set growth to the recorded absorption points, replaying
        # mid-query ingestion exactly.
        def replay_to(step_target: int) -> None:
            while engine.frames_processed < step_target:
                size = spec.next_batch_size(engine.frames_processed)
                engine.commit(engine.plan(batch_size=size))

        for at_steps, horizon in log[1:]:
            replay_to(at_steps)
            engine.extend(chunker.take(up_to_horizon=horizon))
        replay_to(replay_steps)
        return QuerySession(
            session_id,
            spec,
            engine,
            warm_start_frames=replayed,
            warm_result_frames=result_frames,
            state=state,
            chunker=chunker,
            horizon_log=log,
        )
