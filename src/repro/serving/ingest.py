"""The ingestion journal: durable, deterministic live footage.

A deployed service ingests clips while queries run.  In this synthetic
reproduction a clip's *content* is generated, so what must be durable is
not pixels but the generation recipe: the journal — ``ingest.jsonl``
inside a serving state directory — records one :class:`IngestEntry` per
``python -m repro ingest`` invocation, append-only.  Any process that
replays the journal over the same base repositories (same config scale
and seed) materializes byte-identical clips and ground truth, which is
what keeps three properties intact across restarts:

* **cache validity** — a journal-replayed frame has exactly the content
  it had when its detections were cached, so ``(dataset, frame)`` keys
  never go stale;
* **snapshot exactness** — restored sessions replay their horizon logs
  against the same clip sequence the live run absorbed;
* **parity** — a query served while the journal grew converges to the
  same answer as one served after the journal was fully applied.

The journal names datasets freely: a profile name extends that synthetic
dataset, any other name denotes a *live* dataset that starts as an empty
repository and exists only through its journal entries.
"""

from __future__ import annotations

import json
import pathlib
import zlib
from dataclasses import asdict, dataclass

from .. import telemetry
from ..core.rng import DecisionRng
from ..video.synthetic import place_instances

__all__ = [
    "INGEST_FILENAME",
    "IngestEntry",
    "JournalError",
    "RepositoryFeeder",
    "journal_path",
    "append_entry",
    "load_entries",
    "apply_entry",
    "apply_journal",
]

INGEST_FILENAME = "ingest.jsonl"


class JournalError(ValueError):
    """A journal line that cannot be parsed.

    Raised only for *committed* (newline-terminated) lines: those were
    acknowledged appends, so garbage there is real corruption the
    operator must see.  A torn final line without its newline is the
    signature of a crash mid-append — an append that was never
    acknowledged — and is silently ignored by :func:`load_entries`
    (and truncated away by the next :func:`append_entry`), which is what
    keeps every process that reads the journal agreeing on the entry
    sequence no matter where a writer died.
    """


@dataclass(frozen=True)
class IngestEntry:
    """One journal line: a batch of synthetic clips to append.

    ``frames`` and ``instances`` are *per clip* — an entry with
    ``clips=3`` appends three clips of ``frames`` frames, each holding
    ``instances`` fresh instances of ``category`` (zero instances, or no
    category, appends object-free footage).  ``fps=None`` inherits the
    dataset's current frame rate.
    """

    dataset: str
    frames: int
    clips: int = 1
    category: str | None = None
    instances: int = 0
    mean_duration: float = 60.0
    skew_fraction: float | None = None
    fps: float | None = None

    def __post_init__(self) -> None:
        if self.frames <= 0:
            raise ValueError("frames per clip must be positive")
        if self.clips <= 0:
            raise ValueError("clips must be positive")
        if self.instances < 0:
            raise ValueError("instances must be non-negative")
        if self.instances > 0 and self.category is None:
            raise ValueError("instances need a category")
        if self.mean_duration <= 0:
            raise ValueError("mean_duration must be positive")
        if self.fps is not None and self.fps <= 0:
            raise ValueError("fps must be positive")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "IngestEntry":
        return IngestEntry(
            dataset=str(data["dataset"]),
            frames=int(data["frames"]),
            clips=int(data.get("clips", 1)),
            category=(
                None if data.get("category") is None else str(data["category"])
            ),
            instances=int(data.get("instances", 0)),
            mean_duration=float(data.get("mean_duration", 60.0)),
            skew_fraction=(
                None
                if data.get("skew_fraction") is None
                else float(data["skew_fraction"])
            ),
            fps=None if data.get("fps") is None else float(data["fps"]),
        )


# ------------------------------------------------------------------ journal

def journal_path(state_dir: str | pathlib.Path) -> pathlib.Path:
    return pathlib.Path(state_dir) / INGEST_FILENAME


def _committed_payload(path: pathlib.Path) -> tuple[bytes, int]:
    """The journal's committed prefix and its byte length.

    An entry is committed once its newline hits the file; whatever
    follows the last newline is a torn append (writer crashed mid-line)
    and is not part of the journal.  All journal IO is byte-oriented so
    offsets mean the same thing on every platform (text mode would
    translate newlines on Windows and make the torn-tail arithmetic
    truncate healthy files).
    """
    raw = path.read_bytes()
    cut = raw.rfind(b"\n") + 1  # 0 when no newline at all
    return raw[:cut], cut


def append_entry(state_dir: str | pathlib.Path, entry: IngestEntry) -> int:
    """Append one entry to the state directory's journal; returns the
    entry's index (its identity for deterministic content synthesis).

    A torn tail left by a crashed writer is truncated away first —
    appending after it would otherwise weld two half-lines into one
    corrupt committed entry.
    """
    path = journal_path(state_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    index = len(load_entries(state_dir))
    tel = telemetry.get()
    if path.exists():
        _, committed_bytes = _committed_payload(path)
        if committed_bytes != path.stat().st_size:
            with open(path, "rb+") as handle:
                handle.truncate(committed_bytes)
            if tel.enabled:
                tel.counter("repro_ingest_torn_tail_repairs_total").inc()
    with open(path, "ab") as handle:
        handle.write((json.dumps(entry.to_dict()) + "\n").encode("utf-8"))
    if tel.enabled:
        tel.counter("repro_ingest_entries_total").inc()
    return index


def load_entries(state_dir: str | pathlib.Path) -> list["IngestEntry"]:
    """All journal entries, in append order (the application order).

    Only newline-terminated lines count (see :class:`JournalError` for
    the crash-consistency contract); a committed line that does not
    parse raises :class:`JournalError` naming the line.
    """
    path = journal_path(state_dir)
    if not path.exists():
        return []
    committed, _ = _committed_payload(path)
    entries = []
    for lineno, line in enumerate(committed.decode("utf-8").splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(IngestEntry.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as exc:
            raise JournalError(
                f"malformed journal entry at {path.name}:{lineno}: {exc}"
            ) from exc
    return entries


# -------------------------------------------------------------- application

class RepositoryFeeder:
    """The minimal feed target :func:`apply_entry` needs: a mapping of
    repositories with no sessions attached.

    :class:`~repro.serving.service.QueryService` satisfies the same duck
    type (``repository`` + ``feed``); this standalone form lets journal
    replay materialize bare repositories — the reference path the
    simulation oracle diffs the serving stack against, and a convenient
    way to rebuild "what the world looks like after the whole journal"
    without constructing a service.
    """

    def __init__(self, repositories: dict):
        self._repos = dict(repositories)

    @property
    def repositories(self) -> dict:
        return dict(self._repos)

    def repository(self, dataset: str):
        repo = self._repos.get(dataset)
        if repo is None:
            raise KeyError(f"unknown dataset {dataset!r}")
        return repo

    def register(self, dataset: str, repository) -> None:
        if dataset in self._repos:
            raise ValueError(f"dataset {dataset!r} is already registered")
        self._repos[dataset] = repository

    def feed(self, dataset: str, num_frames: int, instances=(), name=None, fps=None):
        return self.repository(dataset).append_clip(
            num_frames, instances, name=name, fps=fps
        )


def _clip_seed(base_seed: int, dataset: str, entry_index: int, clip_ordinal: int) -> int:
    """Stable per-(entry, clip) substream, CRC-mixed like the dataset
    builder's per-category seeds so journal replay is process-independent."""
    mix = zlib.crc32(
        f"ingest/{dataset}/{entry_index}/{clip_ordinal}".encode("utf-8")
    ) & 0x7FFFFFFF
    return (base_seed * 1_000_003 + mix) & 0x7FFFFFFF


def apply_entry(service, entry: IngestEntry, entry_index: int, base_seed: int = 0) -> int:
    """Feed one journal entry's clips into a service; returns frames added.

    Content is a pure function of ``(base_seed, dataset, entry_index,
    clip ordinal)`` plus the repository's state when the entry is applied
    — and since the journal is append-only and applied in order, that
    state is itself reproducible.  Instance ids continue from the current
    maximum, so appended ground truth never collides with the base
    dataset's.
    """
    repo = service.repository(entry.dataset)
    appended = 0
    for ordinal in range(entry.clips):
        instances = []
        if entry.category is not None and entry.instances > 0:
            rng = DecisionRng(
                _clip_seed(base_seed, entry.dataset, entry_index, ordinal)
            )
            ids = repo.instances.ids()
            instances = place_instances(
                entry.instances,
                entry.frames,
                rng,
                mean_duration=entry.mean_duration,
                skew_fraction=entry.skew_fraction,
                category=entry.category,
                with_boxes=False,
                start_id=(max(ids) + 1) if ids else 0,
                frame_offset=repo.horizon,
            )
        service.feed(entry.dataset, entry.frames, instances, fps=entry.fps)
        appended += entry.frames
    tel = telemetry.get()
    if tel.enabled:
        tel.counter("repro_ingest_clips_total").inc(entry.clips)
        tel.counter("repro_ingest_frames_total").inc(appended)
    return appended


def apply_journal(
    service,
    state_dir: str | pathlib.Path,
    base_seed: int = 0,
    start_index: int = 0,
    on_missing_dataset=None,
) -> int:
    """Apply journal entries from ``start_index`` on; returns the new
    cursor (the journal length).  The serve CLI — at startup and on
    every follow-mode poll — calls this with its previous cursor, so
    each entry is applied exactly once.

    ``on_missing_dataset``, when given, maps a dataset name the service
    has not seen to a fresh repository to :meth:`~QueryService.register`
    (the CLI builds profile datasets and starts live ones empty); without
    it an unknown dataset raises ``KeyError`` as :meth:`feed` would.
    """
    entries = load_entries(state_dir)
    for index in range(start_index, len(entries)):
        entry = entries[index]
        try:
            service.repository(entry.dataset)
        except KeyError:
            if on_missing_dataset is None:
                raise
            service.register(entry.dataset, on_missing_dataset(entry.dataset))
        apply_entry(service, entry, index, base_seed)
    return len(entries)
