"""The ingestion journal: durable, deterministic live footage.

A deployed service ingests clips while queries run.  In this synthetic
reproduction a clip's *content* is generated, so what must be durable is
not pixels but the generation recipe: the journal — ``ingest.jsonl``
inside a serving state directory — records one :class:`IngestEntry` per
``python -m repro ingest`` invocation, append-only.  Any process that
replays the journal over the same base repositories (same config scale
and seed) materializes byte-identical clips and ground truth, which is
what keeps three properties intact across restarts:

* **cache validity** — a journal-replayed frame has exactly the content
  it had when its detections were cached, so ``(dataset, frame)`` keys
  never go stale;
* **snapshot exactness** — restored sessions replay their horizon logs
  against the same clip sequence the live run absorbed;
* **parity** — a query served while the journal grew converges to the
  same answer as one served after the journal was fully applied.

The journal names datasets freely: a profile name extends that synthetic
dataset, any other name denotes a *live* dataset that starts as an empty
repository and exists only through its journal entries.
"""

from __future__ import annotations

import json
import pathlib
import zlib
from dataclasses import asdict, dataclass

import numpy as np

from ..video.synthetic import place_instances

__all__ = [
    "INGEST_FILENAME",
    "IngestEntry",
    "journal_path",
    "append_entry",
    "load_entries",
    "apply_entry",
    "apply_journal",
]

INGEST_FILENAME = "ingest.jsonl"


@dataclass(frozen=True)
class IngestEntry:
    """One journal line: a batch of synthetic clips to append.

    ``frames`` and ``instances`` are *per clip* — an entry with
    ``clips=3`` appends three clips of ``frames`` frames, each holding
    ``instances`` fresh instances of ``category`` (zero instances, or no
    category, appends object-free footage).  ``fps=None`` inherits the
    dataset's current frame rate.
    """

    dataset: str
    frames: int
    clips: int = 1
    category: str | None = None
    instances: int = 0
    mean_duration: float = 60.0
    skew_fraction: float | None = None
    fps: float | None = None

    def __post_init__(self) -> None:
        if self.frames <= 0:
            raise ValueError("frames per clip must be positive")
        if self.clips <= 0:
            raise ValueError("clips must be positive")
        if self.instances < 0:
            raise ValueError("instances must be non-negative")
        if self.instances > 0 and self.category is None:
            raise ValueError("instances need a category")
        if self.mean_duration <= 0:
            raise ValueError("mean_duration must be positive")
        if self.fps is not None and self.fps <= 0:
            raise ValueError("fps must be positive")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "IngestEntry":
        return IngestEntry(
            dataset=str(data["dataset"]),
            frames=int(data["frames"]),
            clips=int(data.get("clips", 1)),
            category=(
                None if data.get("category") is None else str(data["category"])
            ),
            instances=int(data.get("instances", 0)),
            mean_duration=float(data.get("mean_duration", 60.0)),
            skew_fraction=(
                None
                if data.get("skew_fraction") is None
                else float(data["skew_fraction"])
            ),
            fps=None if data.get("fps") is None else float(data["fps"]),
        )


# ------------------------------------------------------------------ journal

def journal_path(state_dir: str | pathlib.Path) -> pathlib.Path:
    return pathlib.Path(state_dir) / INGEST_FILENAME


def append_entry(state_dir: str | pathlib.Path, entry: IngestEntry) -> int:
    """Append one entry to the state directory's journal; returns the
    entry's index (its identity for deterministic content synthesis)."""
    path = journal_path(state_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    index = len(load_entries(state_dir))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry.to_dict()) + "\n")
    return index


def load_entries(state_dir: str | pathlib.Path) -> list["IngestEntry"]:
    """All journal entries, in append order (the application order)."""
    path = journal_path(state_dir)
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(IngestEntry.from_dict(json.loads(line)))
    return entries


# -------------------------------------------------------------- application

def _clip_seed(base_seed: int, dataset: str, entry_index: int, clip_ordinal: int) -> int:
    """Stable per-(entry, clip) substream, CRC-mixed like the dataset
    builder's per-category seeds so journal replay is process-independent."""
    mix = zlib.crc32(
        f"ingest/{dataset}/{entry_index}/{clip_ordinal}".encode("utf-8")
    ) & 0x7FFFFFFF
    return (base_seed * 1_000_003 + mix) & 0x7FFFFFFF


def apply_entry(service, entry: IngestEntry, entry_index: int, base_seed: int = 0) -> int:
    """Feed one journal entry's clips into a service; returns frames added.

    Content is a pure function of ``(base_seed, dataset, entry_index,
    clip ordinal)`` plus the repository's state when the entry is applied
    — and since the journal is append-only and applied in order, that
    state is itself reproducible.  Instance ids continue from the current
    maximum, so appended ground truth never collides with the base
    dataset's.
    """
    repo = service.repository(entry.dataset)
    appended = 0
    for ordinal in range(entry.clips):
        instances = []
        if entry.category is not None and entry.instances > 0:
            rng = np.random.default_rng(
                _clip_seed(base_seed, entry.dataset, entry_index, ordinal)
            )
            ids = repo.instances.ids()
            instances = place_instances(
                entry.instances,
                entry.frames,
                rng,
                mean_duration=entry.mean_duration,
                skew_fraction=entry.skew_fraction,
                category=entry.category,
                with_boxes=False,
                start_id=(max(ids) + 1) if ids else 0,
                frame_offset=repo.horizon,
            )
        service.feed(entry.dataset, entry.frames, instances, fps=entry.fps)
        appended += entry.frames
    return appended


def apply_journal(
    service,
    state_dir: str | pathlib.Path,
    base_seed: int = 0,
    start_index: int = 0,
    on_missing_dataset=None,
) -> int:
    """Apply journal entries from ``start_index`` on; returns the new
    cursor (the journal length).  The serve CLI — at startup and on
    every follow-mode poll — calls this with its previous cursor, so
    each entry is applied exactly once.

    ``on_missing_dataset``, when given, maps a dataset name the service
    has not seen to a fresh repository to :meth:`~QueryService.register`
    (the CLI builds profile datasets and starts live ones empty); without
    it an unknown dataset raises ``KeyError`` as :meth:`feed` would.
    """
    entries = load_entries(state_dir)
    for index in range(start_index, len(entries)):
        entry = entries[index]
        try:
            service.repository(entry.dataset)
        except KeyError:
            if on_missing_dataset is None:
                raise
            service.register(entry.dataset, on_missing_dataset(entry.dataset))
        apply_entry(service, entry, index, base_seed)
    return len(entries)
