"""The scripted-session interpreter behind ``python -m repro serve --script``.

A serve script is a plain-text session transcript — one lifecycle command
per line — executed against a live :class:`QueryService`.  It exists to
make interleaving *demonstrable and reproducible*: the same script, seed,
and scale always produce the same schedule, so overlapping-query behavior
can be captured in a file, replayed, and diffed.

    # two overlapping queries sharing one detector
    submit dashcam bicycle --limit 5
    tick 3
    submit dashcam bus --limit 5 --priority 2
    pause s1
    tick 5
    resume s1
    run
    status

Commands: ``submit DATASET CATEGORY [--limit N] [--max-samples N]
[--priority P] [--seed S] [--no-warm-start]``, ``tick [N]``,
``pause/resume/cancel SID``, ``run [MAX_TICKS]``, ``status``.  Blank
lines and ``#`` comments are ignored.  Each command appends one event
line to the returned log.
"""

from __future__ import annotations

import shlex

from ..experiments.reporting import format_table
from .service import QueryService

__all__ = ["run_script", "status_table", "ScriptError"]


class ScriptError(ValueError):
    """A malformed script line, reported with its line number."""


def _parse_submit(args: list[str]) -> tuple[list[str], dict]:
    positional: list[str] = []
    options: dict = {"warm_start": True}
    i = 0
    while i < len(args):
        token = args[i]
        if token == "--limit":
            options["limit"] = int(args[i + 1]); i += 2
        elif token == "--max-samples":
            options["max_samples"] = int(args[i + 1]); i += 2
        elif token == "--priority":
            options["priority"] = float(args[i + 1]); i += 2
        elif token == "--seed":
            options["seed"] = int(args[i + 1]); i += 2
        elif token == "--no-warm-start":
            options["warm_start"] = False; i += 1
        elif token.startswith("-"):
            raise ValueError(f"unknown submit option {token!r}")
        else:
            positional.append(token); i += 1
    if len(positional) != 2:
        raise ValueError("submit needs exactly: DATASET CATEGORY")
    return positional, options


def status_table(service: QueryService) -> str:
    """The per-session progress table, shared by the ``status`` command
    and the serve CLI's end-of-run summary."""
    rows = [
        [
            st.session_id,
            st.dataset,
            st.category,
            st.state,
            st.limit if st.limit is not None else "-",
            st.results_found,
            st.frames_processed,
            st.warm_frames_replayed,
        ]
        for st in service.statuses()
    ]
    return format_table(
        ["session", "dataset", "category", "state", "limit", "results", "frames", "warm"],
        rows,
    )


def run_script(service: QueryService, text: str) -> list[str]:
    """Execute a serve script against ``service``; returns the event log."""
    log: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            tokens = shlex.split(line)
            command, args = tokens[0], tokens[1:]
            if command == "submit":
                (dataset, category), options = _parse_submit(args)
                sid = service.submit(dataset, category, **options)
                status = service.status(sid)
                log.append(
                    f"{sid}: submitted {dataset}/{category} "
                    f"limit={status.limit} state={status.state} "
                    f"warm={status.warm_frames_replayed} results={status.results_found}"
                )
            elif command == "tick":
                count = int(args[0]) if args else 1
                if count < 1:
                    raise ValueError("tick count must be at least 1")
                processed: dict[str, int] = {}
                for _ in range(count):
                    processed = service.tick()
                total = sum(processed.values()) if processed else 0
                log.append(
                    f"tick x{count}: {total} frames in last tick, "
                    f"{service.detector_calls} detector calls total"
                )
            elif command in ("pause", "resume", "cancel"):
                if len(args) != 1:
                    raise ValueError(f"{command} needs exactly one session id")
                getattr(service, command)(args[0])
                past = {"pause": "paused", "resume": "resumed", "cancel": "cancelled"}
                log.append(
                    f"{args[0]}: {past[command]} -> {service.status(args[0]).state}"
                )
            elif command == "run":
                max_ticks = int(args[0]) if args else None
                ticks = service.run_until_idle(max_ticks=max_ticks)
                log.append(
                    f"run: {ticks} ticks, {service.detector_calls} detector calls total"
                )
            elif command == "status":
                log.append(status_table(service))
            else:
                raise ValueError(f"unknown command {command!r}")
        except (ValueError, KeyError) as exc:
            message = exc.args[0] if exc.args else exc
            raise ScriptError(f"line {lineno}: {message}") from exc
    return log
