"""The query serving subsystem: long-lived, resumable distinct-object search.

The paper's algorithms answer one query at a time; the serving layer turns
them into a *service*: many distinct-object queries over shared video
repositories, admitted at any time, pausable and resumable at any frame,
all sharing one detection cache so no frame is ever detected twice
(see :mod:`repro.detection.cache`).

* :mod:`repro.serving.session` — one query's resumable lifetime: an
  incremental :class:`~repro.core.sampler.ExSample` engine plus
  warm-start from cached frames and replay-based snapshot/restore;
* :mod:`repro.serving.scheduler` — allocating a global frames-per-tick
  detector budget across active sessions (round-robin, priority,
  Thompson-sum);
* :mod:`repro.serving.service` — the :class:`QueryService` facade with
  the full lifecycle (submit / pause / resume / cancel / status /
  results) and the tick loop;
* :mod:`repro.serving.state` — state-directory persistence for
  multi-process lifetimes (``python -m repro submit`` then ``serve``);
* :mod:`repro.serving.ingest` — the live-ingestion journal: durable,
  deterministic footage appends behind ``python -m repro ingest`` and
  ``serve --follow``;
* :mod:`repro.serving.script` — the scripted-session interpreter behind
  ``python -m repro serve --script``;
* :mod:`repro.serving.client` — the blocking NDJSON client for the
  network tier (:mod:`repro.server`), used by tests, the closed-loop
  load benchmark, and scripts.

Repositories grow while queries run: :meth:`QueryService.feed` appends a
clip and running sessions absorb it mid-query (their engines extend
without perturbing existing chunk statistics), ``follow`` sessions idle
rather than exhaust when footage runs dry, and snapshots carry a horizon
log so replay-restore stays exact across ingestion.
"""

from .client import ServerError, ServingClient
from .ingest import IngestEntry, JournalError, RepositoryFeeder
from .scheduler import (
    PriorityScheduler,
    RoundRobinScheduler,
    SchedulerPolicy,
    ThompsonSumScheduler,
    proportional_allocation,
)
from .service import QueryService
from .session import (
    QuerySession,
    SessionSnapshot,
    SessionSpec,
    SessionState,
    SessionStatus,
    derive_session_seed,
    replay_cached_frames,
)

__all__ = [
    "ServerError",
    "ServingClient",
    "IngestEntry",
    "JournalError",
    "RepositoryFeeder",
    "PriorityScheduler",
    "RoundRobinScheduler",
    "SchedulerPolicy",
    "ThompsonSumScheduler",
    "proportional_allocation",
    "QueryService",
    "QuerySession",
    "SessionSnapshot",
    "SessionSpec",
    "SessionState",
    "SessionStatus",
    "derive_session_seed",
    "replay_cached_frames",
]
