"""The shared detection cache: one detector call serves every query, forever.

The paper's whole premise is that detector invocations are the scarce
resource (§I); :mod:`repro.core.multiquery` already shares one call across
queries running *concurrently*.  This module extends the sharing across
query *lifetimes*: every detector output is stored under
``(dataset, frame_index)``, so a query submitted tomorrow pays nothing for
any frame ever detected — it can re-read the boxes, feed them through its
own discriminator, and even warm-start its per-chunk ``(N1, n)`` beliefs
(see :func:`repro.serving.session.replay_cached_frames`) without touching
the GPU.

Three pieces:

* :class:`DetectionCache` — the facade: hit/miss accounting plus the
  encoding of :class:`~repro.detection.detector.Detection` values into
  plain JSON-able rows, over a pluggable storage backend;
* backends — :class:`InMemoryBackend` (per-process),
  :class:`SqliteBackend` and :class:`JsonlBackend` (on disk, surviving
  process restarts — the substrate of ``python -m repro serve``'s state
  directory);
* :class:`CachingDetector` — a :class:`~repro.detection.detector.Detector`
  that consults the cache before the wrapped detector, and
  :class:`CategoryFilterDetector`, the per-query view of a shared
  all-category detector.

Detections are cached *unfiltered* (``category=None`` detectors), because
a frame's boxes for every category cost the same one invocation — caching
a filtered subset would poison later queries for other categories.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from .. import telemetry
from ..video.geometry import Box
from .detector import Detection, Detector, DetectorStats
from .execution import batch_detect

__all__ = [
    "CacheError",
    "CacheStats",
    "TierStats",
    "CacheBackend",
    "InMemoryBackend",
    "SqliteBackend",
    "JsonlBackend",
    "TieredBackend",
    "DetectionCache",
    "CachingDetector",
    "CategoryFilterDetector",
]


class CacheError(ValueError):
    """A persistent cache file is corrupt in a way repair cannot hide.

    Raised with the file name and line number of the offending entry —
    the operator-facing contract mirrors the ingest journal's
    :class:`~repro.serving.ingest.JournalError`.  A torn *final* line
    (writer crashed mid-append) is NOT an error: it is truncated away on
    open, because an uncommitted tail was never part of the cache.  Only
    a malformed *committed* line — one that made it to disk with its
    newline — raises, since that means the file was corrupted after the
    fact rather than merely interrupted.
    """


@dataclass
class CacheStats:
    """Lookup accounting; ``hits`` are detector invocations avoided.

    ``last_batch_hits``/``last_batch_misses`` carry the exact split of
    the most recent :meth:`DetectionCache.get_many` call — the per-batch
    observability the cumulative totals cannot provide (a partial-hit
    batch is invisible inside a long-running total).
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    batches: int = 0
    last_batch_hits: int = 0
    last_batch_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.batches = 0
        self.last_batch_hits = 0
        self.last_batch_misses = 0


# ---------------------------------------------------------------- encoding

def _encode(detections: Sequence[Detection]) -> list[dict]:
    return [
        {
            "frame": det.frame_index,
            "box": [det.box.x1, det.box.y1, det.box.x2, det.box.y2],
            "category": det.category,
            "score": det.score,
            "instance": det.true_instance_id,
        }
        for det in detections
    ]


def _decode(rows: Iterable[dict]) -> tuple[Detection, ...]:
    return tuple(
        Detection(
            frame_index=int(row["frame"]),
            box=Box(*(float(v) for v in row["box"])),
            category=str(row["category"]),
            score=float(row["score"]),
            true_instance_id=(
                None if row["instance"] is None else int(row["instance"])
            ),
        )
        for row in rows
    )


# ---------------------------------------------------------------- backends

class CacheBackend(Protocol):
    """Storage for JSON-able detection rows keyed by (dataset, frame).

    ``get_many``/``put_many`` are the batch forms (one storage
    round-trip per batch); backends that lack them still work — the
    :class:`DetectionCache` facade falls back to per-frame calls.
    """

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:  # pragma: no cover
        ...

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:  # pragma: no cover
        ...

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:  # pragma: no cover
        ...

    def put_many(
        self, dataset: str, items: Sequence[tuple[int, list[dict]]]
    ) -> None:  # pragma: no cover
        ...

    def frames(self, dataset: str) -> list[int]:  # pragma: no cover
        ...

    def clear(self) -> None:  # pragma: no cover
        ...

    def __len__(self) -> int:  # pragma: no cover
        ...

    def flush(self) -> None:  # pragma: no cover
        ...

    def close(self) -> None:  # pragma: no cover
        ...


class InMemoryBackend:
    """Plain dict storage; the default for single-process services.

    Frame keys are coerced to ``int`` on every path (the facade does the
    same), so a numpy integer or bool-ish index can never write a key
    that a later plain-``int`` lookup misses.
    """

    def __init__(self) -> None:
        self._rows: dict[tuple[str, int], list[dict]] = {}

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:
        return self._rows.get((dataset, int(frame_index)))

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:
        self._rows[(dataset, int(frame_index))] = rows

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        return [self._rows.get((dataset, int(f))) for f in frame_indices]

    def put_many(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        for frame_index, rows in items:
            self._rows[(dataset, int(frame_index))] = rows

    def frames(self, dataset: str) -> list[int]:
        return sorted(f for (d, f) in self._rows if d == dataset)

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class SqliteBackend:
    """One-table sqlite storage; survives restarts, supports point lookups
    without loading the whole cache (the right backend for long-lived
    state directories).

    Writes are batched: ``put`` does not commit — the transaction lands
    on ``flush()`` (which the service calls once per tick) or ``close()``.
    One fsync per scheduling quantum instead of one per detector call,
    matching the durability the state layer promises (losing at most the
    tick in flight).
    """

    def __init__(self, path: str | pathlib.Path):
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._closed = False
        self._conn = sqlite3.connect(self._path)
        # WAL lets concurrent processes (shard workers, a follow server
        # next to an out-of-band submitter) read while one writes instead
        # of serializing on the rollback journal; synchronous=NORMAL
        # drops the per-commit fsync to one per WAL checkpoint — safe
        # here because the cache is rebuildable (a lost tail costs
        # re-detection, never answers) and WAL commits stay torn-proof
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS detections ("
            "dataset TEXT NOT NULL, frame INTEGER NOT NULL, payload TEXT NOT NULL, "
            "PRIMARY KEY (dataset, frame))"
        )
        self._conn.commit()

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:
        # int() before binding: sqlite stores what it is handed, so a
        # numpy int put raw would create a row a plain-int lookup misses
        row = self._conn.execute(
            "SELECT payload FROM detections WHERE dataset = ? AND frame = ?",
            (dataset, int(frame_index)),
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO detections (dataset, frame, payload) VALUES (?, ?, ?)",
            (dataset, int(frame_index), json.dumps(rows)),
        )

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        frames = [int(f) for f in frame_indices]
        if not frames:
            return []
        found: dict[int, list[dict]] = {}
        unique = list(dict.fromkeys(frames))
        for lo in range(0, len(unique), 500):  # stay under SQLite's host-parameter cap
            group = unique[lo : lo + 500]
            placeholders = ",".join("?" * len(group))
            rows = self._conn.execute(
                f"SELECT frame, payload FROM detections "
                f"WHERE dataset = ? AND frame IN ({placeholders})",
                (dataset, *group),
            ).fetchall()
            found.update((int(frame), json.loads(payload)) for frame, payload in rows)
        return [found.get(f) for f in frames]

    def put_many(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO detections (dataset, frame, payload) VALUES (?, ?, ?)",
            [(dataset, int(frame), json.dumps(rows)) for frame, rows in items],
        )

    def frames(self, dataset: str) -> list[int]:
        rows = self._conn.execute(
            "SELECT frame FROM detections WHERE dataset = ? ORDER BY frame",
            (dataset,),
        ).fetchall()
        return [int(r[0]) for r in rows]

    def clear(self) -> None:
        self._conn.execute("DELETE FROM detections")
        self._conn.commit()

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM detections").fetchone()[0])

    def flush(self) -> None:
        if self._closed:  # a flush after close has nothing left to commit
            return
        self._conn.commit()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._conn.commit()
        self._conn.close()


class JsonlBackend:
    """Append-only jsonl storage: one line per cached frame.

    Loads fully into memory on open, appends on every put — simple,
    greppable, and adequate below millions of cached frames.  Re-put keys
    append a superseding line; the latest line wins on load.

    Crash consistency mirrors the ingest journal
    (:mod:`repro.serving.ingest`): all IO is byte-oriented, a line is
    committed once its newline hits the file, and a torn final line left
    by a writer killed mid-append is truncated away on open — the entry
    was never committed, so dropping it costs one re-detection, never an
    unrecoverable state dir.  A malformed *committed* line raises
    :class:`CacheError` with its line number.

    Superseding appends leave dead lines behind; :meth:`compact` (called
    automatically by :meth:`close` when there is anything to reclaim)
    atomically rewrites the file with one line per live key, preserving
    latest-line-wins semantics with zero bytes of garbage.
    """

    def __init__(self, path: str | pathlib.Path):
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._rows: dict[tuple[str, int], list[dict]] = {}
        self._stale_lines = 0  # superseded on-disk lines (compaction debt)
        if self._path.exists():
            raw = self._path.read_bytes()
            cut = raw.rfind(b"\n") + 1  # 0 when no newline at all
            if cut != len(raw):  # torn tail: the writer died mid-append
                with open(self._path, "rb+") as repair:
                    repair.truncate(cut)
                tel = telemetry.get()
                if tel.enabled:
                    tel.counter("repro_cache_torn_tail_repairs_total").inc()
            for lineno, line in enumerate(
                raw[:cut].decode("utf-8").splitlines(), start=1
            ):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (str(record["dataset"]), int(record["frame"]))
                    rows = record["rows"]
                except (ValueError, KeyError, TypeError) as exc:
                    raise CacheError(
                        f"malformed cache line at {self._path.name}:{lineno}: {exc}"
                    ) from exc
                if key in self._rows:
                    self._stale_lines += 1
                self._rows[key] = rows
        self._handle = open(self._path, "ab")

    @property
    def path(self) -> pathlib.Path:
        return self._path

    @property
    def stale_lines(self) -> int:
        """On-disk lines superseded by a later put — what compaction reclaims."""
        return self._stale_lines

    @staticmethod
    def _line(dataset: str, frame_index: int, rows: list[dict]) -> bytes:
        record = {"dataset": dataset, "frame": int(frame_index), "rows": rows}
        return json.dumps(record).encode("utf-8") + b"\n"

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:
        return self._rows.get((dataset, int(frame_index)))

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:
        key = (dataset, int(frame_index))
        if key in self._rows:
            self._stale_lines += 1
        self._rows[key] = rows
        self._handle.write(self._line(dataset, key[1], rows))
        self._handle.flush()

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        return [self._rows.get((dataset, int(f))) for f in frame_indices]

    def put_many(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        lines = []
        for frame_index, rows in items:
            key = (dataset, int(frame_index))
            if key in self._rows:
                self._stale_lines += 1
            self._rows[key] = rows
            lines.append(self._line(dataset, key[1], rows))
        if lines:  # one write + flush for the whole batch
            self._handle.write(b"".join(lines))
            self._handle.flush()

    def frames(self, dataset: str) -> list[int]:
        return sorted(f for (d, f) in self._rows if d == dataset)

    def compact(self) -> int:
        """Rewrite the file with one line per live key; returns the
        number of superseded lines dropped.

        The rewrite is atomic (tmp file + fsync + ``os.replace``): a
        crash at any point leaves either the old file or the complete
        new one, never a half-compacted cache.
        """
        dropped = self._stale_lines
        if dropped == 0:
            return 0
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        tmp = self._path.with_name(self._path.name + ".compact")
        with open(tmp, "wb") as out:
            for (dataset, frame), rows in self._rows.items():
                out.write(self._line(dataset, frame, rows))
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, self._path)
        self._handle = open(self._path, "ab")
        self._stale_lines = 0
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("repro_cache_compactions_total").inc()
            tel.counter("repro_cache_compacted_lines_total").inc(dropped)
        return dropped

    def clear(self) -> None:
        self._rows.clear()
        self._stale_lines = 0
        # swap the handle out *before* closing it: if close() raises
        # mid-flush, the finally still truncates via a fresh handle, so
        # the old handle's buffered lines can never resurface on disk
        handle, self._handle = self._handle, None
        try:
            if handle is not None and not handle.closed:
                handle.close()
        finally:
            self._handle = open(self._path, "wb")

    def __len__(self) -> int:
        return len(self._rows)

    def flush(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is None or self._handle.closed:
            return
        if self._stale_lines:  # leave a garbage-free file behind
            self.compact()
        self._handle.close()


@dataclass
class TierStats:
    """Memory-tier accounting for :class:`TieredBackend`.

    ``hits``/``misses`` describe the *tier* only — a tier miss that the
    backing store answers is still a tier miss (it cost a backend
    round-trip, which is exactly what the tier exists to avoid).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class TieredBackend:
    """A bounded LRU memory tier, optionally fronting a persistent backend.

    The unbounded backends trade memory for detector calls without limit;
    long-lived deployments need the trade bounded.  This backend keeps the
    hottest entries in memory under an entry and/or byte budget and
    (when ``backing`` is given) writes every put *through* to the
    persistent store, so eviction only ever drops the memory copy — a
    later lookup falls through to the backing store and is re-admitted.
    With no backing store, eviction loses the entry entirely and the
    caller re-detects: by the serving layer's core invariant (sampling
    decisions never depend on cache contents) that costs detector calls,
    never answers — the contract ``tests/test_cache_tiering.py`` pins.

    Policy is plain LRU (dict insertion order, touched on hit).  ARC was
    considered and rejected: its ghost lists buy hit rate on scan-heavy
    mixes this workload does not produce (lookups are Thompson-sampled,
    heavily skewed toward hot chunks), and LRU keeps eviction decisions
    trivially auditable in tests.

    ``max_bytes`` charges each entry its compact-JSON encoding size —
    deterministic, platform-independent, and proportional to what the
    persistent backends would store for the same rows.  A zero budget is
    legal and admits nothing (every lookup falls through).
    """

    def __init__(
        self,
        backing: CacheBackend | None = None,
        *,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be non-negative")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self._backing = backing
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._tier: dict[tuple[str, int], list[dict]] = {}
        self._sizes: dict[tuple[str, int], int] = {}
        self._bytes = 0
        self.tier_stats = TierStats()
        # telemetry deltas since the last drain: tier hits, tier misses,
        # evictions (same pattern as the facade: the tier sits on the
        # per-frame path, so the registry is only touched at durability
        # points — see DetectionCache._record)
        self._tel_pending = [0, 0, 0]

    @property
    def backing(self) -> CacheBackend | None:
        return self._backing

    @property
    def max_entries(self) -> int | None:
        return self._max_entries

    @property
    def max_bytes(self) -> int | None:
        return self._max_bytes

    @property
    def tier_entries(self) -> int:
        return len(self._tier)

    @property
    def tier_bytes(self) -> int:
        return self._bytes

    # ------------------------------------------------------------- tier core

    @staticmethod
    def _cost(rows: list[dict]) -> int:
        return len(json.dumps(rows, separators=(",", ":")))

    def _touch(self, key: tuple[str, int]) -> list[dict]:
        """Move a resident key to the LRU tail and return its rows."""
        rows = self._tier.pop(key)
        self._tier[key] = rows
        return rows

    def _admit(self, key: tuple[str, int], rows: list[dict]) -> None:
        if self._max_entries == 0 or self._max_bytes == 0:
            return  # a zero budget stores nothing, by definition
        cost = self._cost(rows) if self._max_bytes is not None else 0
        if self._max_bytes is not None and cost > self._max_bytes:
            return  # larger than the whole budget: admitting would just
            # evict everything else and then be evicted itself
        if key in self._tier:
            self._tier.pop(key)
            self._bytes -= self._sizes.pop(key, 0)
        self._tier[key] = rows
        self._sizes[key] = cost
        self._bytes += cost
        while (
            self._max_entries is not None and len(self._tier) > self._max_entries
        ) or (self._max_bytes is not None and self._bytes > self._max_bytes):
            victim = next(iter(self._tier))
            self._tier.pop(victim)
            self._bytes -= self._sizes.pop(victim, 0)
            self.tier_stats.evictions += 1
            if telemetry.get().enabled:
                self._tel_pending[2] += 1

    def _note(self, hits: int, misses: int) -> None:
        self.tier_stats.hits += hits
        self.tier_stats.misses += misses
        if telemetry.get().enabled:
            self._tel_pending[0] += hits
            self._tel_pending[1] += misses

    def _drain_telemetry(self) -> None:
        pending = self._tel_pending
        tel = telemetry.get()
        if tel.enabled:
            if pending[0]:
                tel.counter("repro_cache_tier_hits_total").inc(pending[0])
            if pending[1]:
                tel.counter("repro_cache_tier_misses_total").inc(pending[1])
            if pending[2]:
                tel.counter("repro_cache_tier_evictions_total").inc(pending[2])
            tel.gauge("repro_cache_tier_entries").set(len(self._tier))
            tel.gauge("repro_cache_tier_bytes").set(self._bytes)
        self._tel_pending = [0, 0, 0]

    # -------------------------------------------------------------- protocol

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:
        key = (dataset, int(frame_index))
        if key in self._tier:
            self._note(1, 0)
            return self._touch(key)
        self._note(0, 1)
        if self._backing is None:
            return None
        rows = self._backing.get(dataset, key[1])
        if rows is not None:
            self._admit(key, rows)
        return rows

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:
        frame = int(frame_index)
        if self._backing is not None:  # write-through: eviction is lossless
            self._backing.put(dataset, frame, rows)
        self._admit((dataset, frame), rows)

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        frames = [int(f) for f in frame_indices]
        out: list[list[dict] | None] = [None] * len(frames)
        missing: dict[int, None] = {}
        hits = 0
        for pos, frame in enumerate(frames):
            key = (dataset, frame)
            if key in self._tier:
                out[pos] = self._touch(key)
                hits += 1
            else:
                missing[frame] = None
        self._note(hits, len(frames) - hits)
        if missing and self._backing is not None:
            unique = list(missing)
            found = dict(zip(unique, self._backing.get_many(dataset, unique)))
            for pos, frame in enumerate(frames):
                if out[pos] is None and found.get(frame) is not None:
                    out[pos] = found[frame]
            for frame in unique:  # admit in lookup order, once per frame
                if found.get(frame) is not None:
                    self._admit((dataset, frame), found[frame])
        return out

    def put_many(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        coerced = [(int(frame), rows) for frame, rows in items]
        if self._backing is not None:
            self._backing.put_many(dataset, coerced)
        for frame, rows in coerced:
            self._admit((dataset, frame), rows)

    def frames(self, dataset: str) -> list[int]:
        if self._backing is not None:
            return self._backing.frames(dataset)
        return sorted(f for (d, f) in self._tier if d == dataset)

    def clear(self) -> None:
        self._tier.clear()
        self._sizes.clear()
        self._bytes = 0
        self._drain_telemetry()
        if self._backing is not None:
            self._backing.clear()

    def __len__(self) -> int:
        if self._backing is not None:
            return len(self._backing)
        return len(self._tier)

    def flush(self) -> None:
        self._drain_telemetry()
        if self._backing is not None:
            self._backing.flush()

    def close(self) -> None:
        self._drain_telemetry()
        if self._backing is not None:
            self._backing.close()


# ------------------------------------------------------------------ facade

class DetectionCache:
    """Detector outputs keyed by ``(dataset, frame_index)``.

    The cache stores complete per-frame detection lists (an empty list is
    a valid, cacheable outcome — "the detector saw nothing" is exactly as
    expensive to recompute as a full frame).
    """

    def __init__(self, backend: CacheBackend | None = None):
        self._backend = backend if backend is not None else InMemoryBackend()
        self._backend_label = type(self._backend).__name__
        self.stats = CacheStats()
        # telemetry deltas since the last drain: hits, misses, inserts,
        # get round-trips, put round-trips (see _record)
        self._tel_pending = [0, 0, 0, 0, 0]
        self._tel_handles: tuple | None = None

    @property
    def backend(self) -> CacheBackend:
        return self._backend

    def _record(
        self, hits: int, misses: int, roundtrips: int, op: str, inserts: int = 0
    ) -> None:
        """Accumulate one lookup/write batch's telemetry deltas.

        The cache sits on the per-frame serving path, so events are not
        mirrored into the registry one by one: while telemetry is
        enabled they accumulate here as plain integers and are pushed by
        :meth:`flush` / :meth:`clear` / :meth:`close` — one registry
        drain per durability point (the service flushes once per tick).
        """
        if not telemetry.get().enabled:
            return
        pending = self._tel_pending
        pending[0] += hits
        pending[1] += misses
        pending[2] += inserts
        if op == "get":
            pending[3] += roundtrips
        else:
            pending[4] += roundtrips

    def _drain_telemetry(self) -> None:
        """Push accumulated deltas into the active registry.

        Deltas from a pipeline that was disabled before the drain are
        discarded, so a snapshot only ever describes events recorded —
        and drained — while its own pipeline was live.  Instrument
        handles are memoized per pipeline.
        """
        pending = self._tel_pending
        if not (pending[0] or pending[1] or pending[2] or pending[3]
                or pending[4]):
            return
        tel = telemetry.get()
        if tel.enabled:
            memo = self._tel_handles
            if memo is None or memo[0] is not tel:
                handles = (
                    tel.counter("repro_cache_hits_total"),
                    tel.counter("repro_cache_misses_total"),
                    tel.counter("repro_cache_inserts_total"),
                    tel.counter(
                        "repro_cache_backend_roundtrips_total",
                        {"backend": self._backend_label, "op": "get"},
                    ),
                    tel.counter(
                        "repro_cache_backend_roundtrips_total",
                        {"backend": self._backend_label, "op": "put"},
                    ),
                )
                self._tel_handles = memo = (tel, handles)
            for counter, amount in zip(memo[1], pending):
                if amount:
                    counter.inc(amount)
        self._tel_pending = [0, 0, 0, 0, 0]

    def get(self, dataset: str, frame_index: int) -> tuple[Detection, ...] | None:
        """Cached detections for a frame, or ``None`` on a miss.

        Frame keys are coerced to plain ``int`` here, once, for every
        facade path (and defensively again in the backends): a numpy
        integer or bool must address the same entry as its ``int``
        value on every backend.
        """
        rows = self._backend.get(dataset, int(frame_index))
        if rows is None:
            self.stats.misses += 1
            self._record(0, 1, 1, "get")
            return None
        self.stats.hits += 1
        self._record(1, 0, 1, "get")
        return _decode(rows)

    def put(
        self, dataset: str, frame_index: int, detections: Sequence[Detection]
    ) -> None:
        self._backend.put(dataset, int(frame_index), _encode(detections))
        self.stats.inserts += 1
        self._record(0, 0, 1, "put", inserts=1)

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[tuple[Detection, ...] | None]:
        """Batch :meth:`get`: one backend round-trip, one entry per input
        frame (``None`` on a miss).

        The partial-hit split is accounted *exactly, per batch*: the
        batch's hit/miss counts are computed in one pass and recorded
        atomically into :attr:`stats` (``last_batch_hits`` /
        ``last_batch_misses`` plus the cumulative totals), so an observer
        polling between batches always sees a consistent split rather
        than a mid-batch interleaving.
        """
        getter = getattr(self._backend, "get_many", None)
        if getter is not None:
            rows_per_frame = getter(dataset, list(frame_indices))
            roundtrips = 1
        else:  # backend predates the batch protocol
            rows_per_frame = [self._backend.get(dataset, int(f)) for f in frame_indices]
            roundtrips = len(rows_per_frame)
        out: list[tuple[Detection, ...] | None] = [
            None if rows is None else _decode(rows) for rows in rows_per_frame
        ]
        batch_hits = sum(1 for item in out if item is not None)
        batch_misses = len(out) - batch_hits
        self.stats.hits += batch_hits
        self.stats.misses += batch_misses
        self.stats.batches += 1
        self.stats.last_batch_hits = batch_hits
        self.stats.last_batch_misses = batch_misses
        self._record(batch_hits, batch_misses, roundtrips, "get")
        return out

    def put_many(
        self,
        dataset: str,
        items: Sequence[tuple[int, Sequence[Detection]]],
    ) -> None:
        """Batch :meth:`put`: one backend round-trip for the whole batch."""
        putter = getattr(self._backend, "put_many", None)
        encoded = [(int(frame), _encode(dets)) for frame, dets in items]
        if putter is not None:
            putter(dataset, encoded)
            roundtrips = 1
        else:
            for frame, rows in encoded:
                self._backend.put(dataset, frame, rows)
            roundtrips = len(encoded)
        self.stats.inserts += len(encoded)
        self._record(0, 0, roundtrips, "put", inserts=len(encoded))

    def contains(self, dataset: str, frame_index: int) -> bool:
        """Membership test without touching the hit/miss accounting."""
        return self._backend.get(dataset, int(frame_index)) is not None

    def frames(self, dataset: str) -> list[int]:
        """Sorted frame indices cached for ``dataset`` — the replay order
        for warm-starting new sessions (sorted so it is independent of
        insertion interleaving across sessions)."""
        return self._backend.frames(dataset)

    def __len__(self) -> int:
        return len(self._backend)

    def clear(self) -> None:
        """Drop every cached detection (all datasets) and reset accounting.

        A correctness no-op by design: sampling decisions never depend on
        cache contents, so dropping the cache costs detector calls but
        cannot change any query's answer — the property the simulation
        harness's cache-drop fault asserts.  :attr:`stats` is reset along
        with the contents: hit rates computed after a clear describe the
        post-clear population, so a simulation cache-drop fault cannot
        corrupt them with pre-drop history.
        """
        self._drain_telemetry()  # pre-drop deltas still count, cumulatively
        self._backend.clear()
        self.stats.reset()
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("repro_cache_clears_total").inc()

    def flush(self) -> None:
        """Make buffered writes durable (the service calls this per tick)."""
        self._drain_telemetry()
        self._backend.flush()

    def close(self) -> None:
        self._drain_telemetry()
        self._backend.close()


# --------------------------------------------------------------- detectors

class CachingDetector:
    """A detector that consults a :class:`DetectionCache` before the GPU.

    Conforms to the :class:`~repro.detection.detector.Detector` protocol:
    ``stats`` counts frames *served* (hit or miss), while the wrapped
    detector's own stats keep counting real invocations —
    :attr:`detector_calls` is the number the paper's cost model charges.
    """

    def __init__(self, detector: Detector, cache: DetectionCache, dataset: str):
        self._detector = detector
        self._cache = cache
        self._dataset = dataset
        self.stats = DetectorStats()

    @property
    def wrapped(self) -> Detector:
        return self._detector

    @property
    def cache(self) -> DetectionCache:
        return self._cache

    @property
    def dataset(self) -> str:
        return self._dataset

    @property
    def detector_calls(self) -> int:
        """Real (cache-missing) invocations of the wrapped detector."""
        return self._detector.stats.frames_processed

    def detect(self, frame_index: int) -> list[Detection]:
        self.stats.frames_processed += 1
        cached = self._cache.get(self._dataset, frame_index)
        if cached is None:
            detections = self._detector.detect(frame_index)
            self._cache.put(self._dataset, frame_index, detections)
        else:
            detections = list(cached)
        self.stats.detections_emitted += len(detections)
        return list(detections)

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        """Batch :meth:`detect` with partial-hit splitting.

        One cache round-trip answers the hits; the misses (deduplicated,
        in first-seen order) go to the wrapped detector as **one** batch
        call and land in the cache as one batch write.  Results align
        with the input frames, identical to per-frame :meth:`detect`.
        """
        frames = [int(f) for f in frame_indices]
        self.stats.frames_processed += len(frames)
        cached = self._cache.get_many(self._dataset, frames)
        miss_occurrences = sum(1 for hit in cached if hit is None)
        missing = list(
            dict.fromkeys(f for f, hit in zip(frames, cached) if hit is None)
        )
        if miss_occurrences > len(missing):
            tel = telemetry.get()
            if tel.enabled:  # duplicate misses collapsed into one detector call
                tel.counter("repro_cache_dedup_saved_total").inc(
                    miss_occurrences - len(missing)
                )
        fresh: dict[int, list[Detection]] = {}
        if missing:
            detected = batch_detect(self._detector, missing)
            self._cache.put_many(self._dataset, list(zip(missing, detected)))
            fresh = dict(zip(missing, detected))
        out = [
            list(hit) if hit is not None else list(fresh[f])
            for f, hit in zip(frames, cached)
        ]
        self.stats.detections_emitted += sum(len(d) for d in out)
        return out


class CategoryFilterDetector:
    """A per-query view of a shared all-category detector.

    The shared serving detector runs with ``category=None`` (every box in
    the frame for one invocation); each session sees only its own
    category's boxes, exactly as
    :class:`~repro.core.multiquery.MultiQueryExSample` filters detections
    per query.  ``stats`` counts the frames *this* view requested.
    """

    def __init__(self, detector: Detector, category: str):
        self._detector = detector
        self._category = category
        self.stats = DetectorStats()

    @property
    def category(self) -> str:
        return self._category

    def detect(self, frame_index: int) -> list[Detection]:
        self.stats.frames_processed += 1
        detections = [
            d for d in self._detector.detect(frame_index) if d.category == self._category
        ]
        self.stats.detections_emitted += len(detections)
        return detections

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        frames = [int(f) for f in frame_indices]
        self.stats.frames_processed += len(frames)
        out = [
            [d for d in detections if d.category == self._category]
            for detections in batch_detect(self._detector, frames)
        ]
        self.stats.detections_emitted += sum(len(d) for d in out)
        return out
