"""The shared detection cache: one detector call serves every query, forever.

The paper's whole premise is that detector invocations are the scarce
resource (§I); :mod:`repro.core.multiquery` already shares one call across
queries running *concurrently*.  This module extends the sharing across
query *lifetimes*: every detector output is stored under
``(dataset, frame_index)``, so a query submitted tomorrow pays nothing for
any frame ever detected — it can re-read the boxes, feed them through its
own discriminator, and even warm-start its per-chunk ``(N1, n)`` beliefs
(see :func:`repro.serving.session.replay_cached_frames`) without touching
the GPU.

Three pieces:

* :class:`DetectionCache` — the facade: hit/miss accounting plus the
  encoding of :class:`~repro.detection.detector.Detection` values into
  plain JSON-able rows, over a pluggable storage backend;
* backends — :class:`InMemoryBackend` (per-process),
  :class:`SqliteBackend` and :class:`JsonlBackend` (on disk, surviving
  process restarts — the substrate of ``python -m repro serve``'s state
  directory);
* :class:`CachingDetector` — a :class:`~repro.detection.detector.Detector`
  that consults the cache before the wrapped detector, and
  :class:`CategoryFilterDetector`, the per-query view of a shared
  all-category detector.

Detections are cached *unfiltered* (``category=None`` detectors), because
a frame's boxes for every category cost the same one invocation — caching
a filtered subset would poison later queries for other categories.
"""

from __future__ import annotations

import json
import pathlib
import sqlite3
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from .. import telemetry
from ..video.geometry import Box
from .detector import Detection, Detector, DetectorStats
from .execution import batch_detect

__all__ = [
    "CacheStats",
    "CacheBackend",
    "InMemoryBackend",
    "SqliteBackend",
    "JsonlBackend",
    "DetectionCache",
    "CachingDetector",
    "CategoryFilterDetector",
]


@dataclass
class CacheStats:
    """Lookup accounting; ``hits`` are detector invocations avoided.

    ``last_batch_hits``/``last_batch_misses`` carry the exact split of
    the most recent :meth:`DetectionCache.get_many` call — the per-batch
    observability the cumulative totals cannot provide (a partial-hit
    batch is invisible inside a long-running total).
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    batches: int = 0
    last_batch_hits: int = 0
    last_batch_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.batches = 0
        self.last_batch_hits = 0
        self.last_batch_misses = 0


# ---------------------------------------------------------------- encoding

def _encode(detections: Sequence[Detection]) -> list[dict]:
    return [
        {
            "frame": det.frame_index,
            "box": [det.box.x1, det.box.y1, det.box.x2, det.box.y2],
            "category": det.category,
            "score": det.score,
            "instance": det.true_instance_id,
        }
        for det in detections
    ]


def _decode(rows: Iterable[dict]) -> tuple[Detection, ...]:
    return tuple(
        Detection(
            frame_index=int(row["frame"]),
            box=Box(*(float(v) for v in row["box"])),
            category=str(row["category"]),
            score=float(row["score"]),
            true_instance_id=(
                None if row["instance"] is None else int(row["instance"])
            ),
        )
        for row in rows
    )


# ---------------------------------------------------------------- backends

class CacheBackend(Protocol):
    """Storage for JSON-able detection rows keyed by (dataset, frame).

    ``get_many``/``put_many`` are the batch forms (one storage
    round-trip per batch); backends that lack them still work — the
    :class:`DetectionCache` facade falls back to per-frame calls.
    """

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:  # pragma: no cover
        ...

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:  # pragma: no cover
        ...

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:  # pragma: no cover
        ...

    def put_many(
        self, dataset: str, items: Sequence[tuple[int, list[dict]]]
    ) -> None:  # pragma: no cover
        ...

    def frames(self, dataset: str) -> list[int]:  # pragma: no cover
        ...

    def clear(self) -> None:  # pragma: no cover
        ...

    def __len__(self) -> int:  # pragma: no cover
        ...

    def flush(self) -> None:  # pragma: no cover
        ...

    def close(self) -> None:  # pragma: no cover
        ...


class InMemoryBackend:
    """Plain dict storage; the default for single-process services."""

    def __init__(self) -> None:
        self._rows: dict[tuple[str, int], list[dict]] = {}

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:
        return self._rows.get((dataset, frame_index))

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:
        self._rows[(dataset, frame_index)] = rows

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        return [self._rows.get((dataset, int(f))) for f in frame_indices]

    def put_many(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        for frame_index, rows in items:
            self._rows[(dataset, int(frame_index))] = rows

    def frames(self, dataset: str) -> list[int]:
        return sorted(f for (d, f) in self._rows if d == dataset)

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class SqliteBackend:
    """One-table sqlite storage; survives restarts, supports point lookups
    without loading the whole cache (the right backend for long-lived
    state directories).

    Writes are batched: ``put`` does not commit — the transaction lands
    on ``flush()`` (which the service calls once per tick) or ``close()``.
    One fsync per scheduling quantum instead of one per detector call,
    matching the durability the state layer promises (losing at most the
    tick in flight).
    """

    def __init__(self, path: str | pathlib.Path):
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self._path)
        # WAL lets concurrent processes (shard workers, a follow server
        # next to an out-of-band submitter) read while one writes instead
        # of serializing on the rollback journal; synchronous=NORMAL
        # drops the per-commit fsync to one per WAL checkpoint — safe
        # here because the cache is rebuildable (a lost tail costs
        # re-detection, never answers) and WAL commits stay torn-proof
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS detections ("
            "dataset TEXT NOT NULL, frame INTEGER NOT NULL, payload TEXT NOT NULL, "
            "PRIMARY KEY (dataset, frame))"
        )
        self._conn.commit()

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:
        row = self._conn.execute(
            "SELECT payload FROM detections WHERE dataset = ? AND frame = ?",
            (dataset, frame_index),
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO detections (dataset, frame, payload) VALUES (?, ?, ?)",
            (dataset, frame_index, json.dumps(rows)),
        )

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        frames = [int(f) for f in frame_indices]
        if not frames:
            return []
        found: dict[int, list[dict]] = {}
        unique = list(dict.fromkeys(frames))
        for lo in range(0, len(unique), 500):  # stay under SQLite's host-parameter cap
            group = unique[lo : lo + 500]
            placeholders = ",".join("?" * len(group))
            rows = self._conn.execute(
                f"SELECT frame, payload FROM detections "
                f"WHERE dataset = ? AND frame IN ({placeholders})",
                (dataset, *group),
            ).fetchall()
            found.update((int(frame), json.loads(payload)) for frame, payload in rows)
        return [found.get(f) for f in frames]

    def put_many(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO detections (dataset, frame, payload) VALUES (?, ?, ?)",
            [(dataset, int(frame), json.dumps(rows)) for frame, rows in items],
        )

    def frames(self, dataset: str) -> list[int]:
        rows = self._conn.execute(
            "SELECT frame FROM detections WHERE dataset = ? ORDER BY frame",
            (dataset,),
        ).fetchall()
        return [int(r[0]) for r in rows]

    def clear(self) -> None:
        self._conn.execute("DELETE FROM detections")
        self._conn.commit()

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM detections").fetchone()[0])

    def flush(self) -> None:
        self._conn.commit()

    def close(self) -> None:
        self._conn.commit()
        self._conn.close()


class JsonlBackend:
    """Append-only jsonl storage: one line per cached frame.

    Loads fully into memory on open, appends on every put — simple,
    greppable, and adequate below millions of cached frames.  Re-put keys
    append a superseding line; the latest line wins on load.
    """

    def __init__(self, path: str | pathlib.Path):
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._rows: dict[tuple[str, int], list[dict]] = {}
        if self._path.exists():
            with open(self._path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    self._rows[(record["dataset"], int(record["frame"]))] = record["rows"]
        self._handle = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def get(self, dataset: str, frame_index: int) -> list[dict] | None:
        return self._rows.get((dataset, frame_index))

    def put(self, dataset: str, frame_index: int, rows: list[dict]) -> None:
        self._rows[(dataset, frame_index)] = rows
        record = {"dataset": dataset, "frame": frame_index, "rows": rows}
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        return [self._rows.get((dataset, int(f))) for f in frame_indices]

    def put_many(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        lines = []
        for frame_index, rows in items:
            self._rows[(dataset, int(frame_index))] = rows
            lines.append(
                json.dumps({"dataset": dataset, "frame": int(frame_index), "rows": rows})
            )
        if lines:  # one write + flush for the whole batch
            self._handle.write("\n".join(lines) + "\n")
            self._handle.flush()

    def frames(self, dataset: str) -> list[int]:
        return sorted(f for (d, f) in self._rows if d == dataset)

    def clear(self) -> None:
        self._rows.clear()
        self._handle.close()
        self._handle = open(self._path, "w", encoding="utf-8")

    def __len__(self) -> int:
        return len(self._rows)

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


# ------------------------------------------------------------------ facade

class DetectionCache:
    """Detector outputs keyed by ``(dataset, frame_index)``.

    The cache stores complete per-frame detection lists (an empty list is
    a valid, cacheable outcome — "the detector saw nothing" is exactly as
    expensive to recompute as a full frame).
    """

    def __init__(self, backend: CacheBackend | None = None):
        self._backend = backend if backend is not None else InMemoryBackend()
        self._backend_label = type(self._backend).__name__
        self.stats = CacheStats()
        # telemetry deltas since the last drain: hits, misses, inserts,
        # get round-trips, put round-trips (see _record)
        self._tel_pending = [0, 0, 0, 0, 0]
        self._tel_handles: tuple | None = None

    @property
    def backend(self) -> CacheBackend:
        return self._backend

    def _record(
        self, hits: int, misses: int, roundtrips: int, op: str, inserts: int = 0
    ) -> None:
        """Accumulate one lookup/write batch's telemetry deltas.

        The cache sits on the per-frame serving path, so events are not
        mirrored into the registry one by one: while telemetry is
        enabled they accumulate here as plain integers and are pushed by
        :meth:`flush` / :meth:`clear` / :meth:`close` — one registry
        drain per durability point (the service flushes once per tick).
        """
        if not telemetry.get().enabled:
            return
        pending = self._tel_pending
        pending[0] += hits
        pending[1] += misses
        pending[2] += inserts
        if op == "get":
            pending[3] += roundtrips
        else:
            pending[4] += roundtrips

    def _drain_telemetry(self) -> None:
        """Push accumulated deltas into the active registry.

        Deltas from a pipeline that was disabled before the drain are
        discarded, so a snapshot only ever describes events recorded —
        and drained — while its own pipeline was live.  Instrument
        handles are memoized per pipeline.
        """
        pending = self._tel_pending
        if not (pending[0] or pending[1] or pending[2] or pending[3]
                or pending[4]):
            return
        tel = telemetry.get()
        if tel.enabled:
            memo = self._tel_handles
            if memo is None or memo[0] is not tel:
                handles = (
                    tel.counter("repro_cache_hits_total"),
                    tel.counter("repro_cache_misses_total"),
                    tel.counter("repro_cache_inserts_total"),
                    tel.counter(
                        "repro_cache_backend_roundtrips_total",
                        {"backend": self._backend_label, "op": "get"},
                    ),
                    tel.counter(
                        "repro_cache_backend_roundtrips_total",
                        {"backend": self._backend_label, "op": "put"},
                    ),
                )
                self._tel_handles = memo = (tel, handles)
            for counter, amount in zip(memo[1], pending):
                if amount:
                    counter.inc(amount)
        self._tel_pending = [0, 0, 0, 0, 0]

    def get(self, dataset: str, frame_index: int) -> tuple[Detection, ...] | None:
        """Cached detections for a frame, or ``None`` on a miss."""
        rows = self._backend.get(dataset, frame_index)
        if rows is None:
            self.stats.misses += 1
            self._record(0, 1, 1, "get")
            return None
        self.stats.hits += 1
        self._record(1, 0, 1, "get")
        return _decode(rows)

    def put(
        self, dataset: str, frame_index: int, detections: Sequence[Detection]
    ) -> None:
        self._backend.put(dataset, frame_index, _encode(detections))
        self.stats.inserts += 1
        self._record(0, 0, 1, "put", inserts=1)

    def get_many(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[tuple[Detection, ...] | None]:
        """Batch :meth:`get`: one backend round-trip, one entry per input
        frame (``None`` on a miss).

        The partial-hit split is accounted *exactly, per batch*: the
        batch's hit/miss counts are computed in one pass and recorded
        atomically into :attr:`stats` (``last_batch_hits`` /
        ``last_batch_misses`` plus the cumulative totals), so an observer
        polling between batches always sees a consistent split rather
        than a mid-batch interleaving.
        """
        getter = getattr(self._backend, "get_many", None)
        if getter is not None:
            rows_per_frame = getter(dataset, list(frame_indices))
            roundtrips = 1
        else:  # backend predates the batch protocol
            rows_per_frame = [self._backend.get(dataset, int(f)) for f in frame_indices]
            roundtrips = len(rows_per_frame)
        out: list[tuple[Detection, ...] | None] = [
            None if rows is None else _decode(rows) for rows in rows_per_frame
        ]
        batch_hits = sum(1 for item in out if item is not None)
        batch_misses = len(out) - batch_hits
        self.stats.hits += batch_hits
        self.stats.misses += batch_misses
        self.stats.batches += 1
        self.stats.last_batch_hits = batch_hits
        self.stats.last_batch_misses = batch_misses
        self._record(batch_hits, batch_misses, roundtrips, "get")
        return out

    def put_many(
        self,
        dataset: str,
        items: Sequence[tuple[int, Sequence[Detection]]],
    ) -> None:
        """Batch :meth:`put`: one backend round-trip for the whole batch."""
        putter = getattr(self._backend, "put_many", None)
        encoded = [(int(frame), _encode(dets)) for frame, dets in items]
        if putter is not None:
            putter(dataset, encoded)
            roundtrips = 1
        else:
            for frame, rows in encoded:
                self._backend.put(dataset, frame, rows)
            roundtrips = len(encoded)
        self.stats.inserts += len(encoded)
        self._record(0, 0, roundtrips, "put", inserts=len(encoded))

    def contains(self, dataset: str, frame_index: int) -> bool:
        """Membership test without touching the hit/miss accounting."""
        return self._backend.get(dataset, frame_index) is not None

    def frames(self, dataset: str) -> list[int]:
        """Sorted frame indices cached for ``dataset`` — the replay order
        for warm-starting new sessions (sorted so it is independent of
        insertion interleaving across sessions)."""
        return self._backend.frames(dataset)

    def __len__(self) -> int:
        return len(self._backend)

    def clear(self) -> None:
        """Drop every cached detection (all datasets) and reset accounting.

        A correctness no-op by design: sampling decisions never depend on
        cache contents, so dropping the cache costs detector calls but
        cannot change any query's answer — the property the simulation
        harness's cache-drop fault asserts.  :attr:`stats` is reset along
        with the contents: hit rates computed after a clear describe the
        post-clear population, so a simulation cache-drop fault cannot
        corrupt them with pre-drop history.
        """
        self._drain_telemetry()  # pre-drop deltas still count, cumulatively
        self._backend.clear()
        self.stats.reset()
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("repro_cache_clears_total").inc()

    def flush(self) -> None:
        """Make buffered writes durable (the service calls this per tick)."""
        self._drain_telemetry()
        self._backend.flush()

    def close(self) -> None:
        self._drain_telemetry()
        self._backend.close()


# --------------------------------------------------------------- detectors

class CachingDetector:
    """A detector that consults a :class:`DetectionCache` before the GPU.

    Conforms to the :class:`~repro.detection.detector.Detector` protocol:
    ``stats`` counts frames *served* (hit or miss), while the wrapped
    detector's own stats keep counting real invocations —
    :attr:`detector_calls` is the number the paper's cost model charges.
    """

    def __init__(self, detector: Detector, cache: DetectionCache, dataset: str):
        self._detector = detector
        self._cache = cache
        self._dataset = dataset
        self.stats = DetectorStats()

    @property
    def wrapped(self) -> Detector:
        return self._detector

    @property
    def cache(self) -> DetectionCache:
        return self._cache

    @property
    def dataset(self) -> str:
        return self._dataset

    @property
    def detector_calls(self) -> int:
        """Real (cache-missing) invocations of the wrapped detector."""
        return self._detector.stats.frames_processed

    def detect(self, frame_index: int) -> list[Detection]:
        self.stats.frames_processed += 1
        cached = self._cache.get(self._dataset, frame_index)
        if cached is None:
            detections = self._detector.detect(frame_index)
            self._cache.put(self._dataset, frame_index, detections)
        else:
            detections = list(cached)
        self.stats.detections_emitted += len(detections)
        return list(detections)

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        """Batch :meth:`detect` with partial-hit splitting.

        One cache round-trip answers the hits; the misses (deduplicated,
        in first-seen order) go to the wrapped detector as **one** batch
        call and land in the cache as one batch write.  Results align
        with the input frames, identical to per-frame :meth:`detect`.
        """
        frames = [int(f) for f in frame_indices]
        self.stats.frames_processed += len(frames)
        cached = self._cache.get_many(self._dataset, frames)
        miss_occurrences = sum(1 for hit in cached if hit is None)
        missing = list(
            dict.fromkeys(f for f, hit in zip(frames, cached) if hit is None)
        )
        if miss_occurrences > len(missing):
            tel = telemetry.get()
            if tel.enabled:  # duplicate misses collapsed into one detector call
                tel.counter("repro_cache_dedup_saved_total").inc(
                    miss_occurrences - len(missing)
                )
        fresh: dict[int, list[Detection]] = {}
        if missing:
            detected = batch_detect(self._detector, missing)
            self._cache.put_many(self._dataset, list(zip(missing, detected)))
            fresh = dict(zip(missing, detected))
        out = [
            list(hit) if hit is not None else list(fresh[f])
            for f, hit in zip(frames, cached)
        ]
        self.stats.detections_emitted += sum(len(d) for d in out)
        return out


class CategoryFilterDetector:
    """A per-query view of a shared all-category detector.

    The shared serving detector runs with ``category=None`` (every box in
    the frame for one invocation); each session sees only its own
    category's boxes, exactly as
    :class:`~repro.core.multiquery.MultiQueryExSample` filters detections
    per query.  ``stats`` counts the frames *this* view requested.
    """

    def __init__(self, detector: Detector, category: str):
        self._detector = detector
        self._category = category
        self.stats = DetectorStats()

    @property
    def category(self) -> str:
        return self._category

    def detect(self, frame_index: int) -> list[Detection]:
        self.stats.frames_processed += 1
        detections = [
            d for d in self._detector.detect(frame_index) if d.category == self._category
        ]
        self.stats.detections_emitted += len(detections)
        return detections

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        frames = [int(f) for f in frame_indices]
        self.stats.frames_processed += len(frames)
        out = [
            [d for d in detections if d.category == self._category]
            for detections in batch_detect(self._detector, frames)
        ]
        self.stats.detections_emitted += sum(len(d) for d in out)
        return out
