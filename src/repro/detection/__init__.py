"""Black-box detector substrate, shared detection cache, cost accounting."""

from .cache import (
    CacheBackend,
    CacheError,
    CacheStats,
    CachingDetector,
    CategoryFilterDetector,
    DetectionCache,
    InMemoryBackend,
    JsonlBackend,
    SqliteBackend,
    TieredBackend,
    TierStats,
)
from .costmodel import ThroughputModel, format_duration, parse_duration
from .detector import (
    Detection,
    Detector,
    DetectorStats,
    OracleDetector,
    SimulatedDetector,
)
from .execution import ParallelDetector, batch_detect, wrap_parallel

__all__ = [
    "CacheBackend",
    "CacheError",
    "CacheStats",
    "TieredBackend",
    "TierStats",
    "CachingDetector",
    "CategoryFilterDetector",
    "DetectionCache",
    "InMemoryBackend",
    "JsonlBackend",
    "SqliteBackend",
    "ThroughputModel",
    "format_duration",
    "parse_duration",
    "Detection",
    "Detector",
    "DetectorStats",
    "OracleDetector",
    "SimulatedDetector",
    "ParallelDetector",
    "batch_detect",
    "wrap_parallel",
]
