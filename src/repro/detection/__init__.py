"""Black-box detector substrate and cost accounting."""

from .costmodel import ThroughputModel, format_duration, parse_duration
from .detector import (
    Detection,
    Detector,
    DetectorStats,
    OracleDetector,
    SimulatedDetector,
)

__all__ = [
    "ThroughputModel",
    "format_duration",
    "parse_duration",
    "Detection",
    "Detector",
    "DetectorStats",
    "OracleDetector",
    "SimulatedDetector",
]
