"""The black-box object detector substrate.

The paper "regard[s] object detectors as a black box with a costly
runtime" (§II-A): the only things that matter to the sampling algorithms
are *which boxes come back* for a sampled frame and *what each call
costs*.  :class:`SimulatedDetector` reproduces both over synthetic ground
truth, with the error modes real detectors exhibit:

* **false negatives** — a visible object is missed with some probability
  (size-dependent: smaller boxes are missed more often, as with real CNN
  detectors on distant objects);
* **false positives** — spurious boxes appear at a configurable per-frame
  rate;
* **localization jitter** — returned boxes are perturbed versions of the
  ground-truth boxes;
* **confidence scores** — higher for large, easy objects.

The detector also counts its invocations, which the cost model converts to
GPU seconds.  A perfect :class:`OracleDetector` variant (no noise) isolates
sampling behaviour from detection behaviour in controlled experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

from ..core.rng import DecisionRng
from ..video.geometry import Box
from ..video.repository import VideoRepository
from ..video.synthetic import FRAME_HEIGHT, FRAME_WIDTH, OccupancySchedule

__all__ = [
    "Detection",
    "Detector",
    "SimulatedDetector",
    "OracleDetector",
    "DetectorStats",
]


@dataclass(frozen=True)
class Detection:
    """One detector output box.

    ``true_instance_id`` is the provenance link used *only* by evaluation
    code and the oracle discriminator; query-execution algorithms must not
    look at it (the paper's algorithms only see boxes and scores).  It is
    ``None`` for false positives.
    """

    frame_index: int
    box: Box
    category: str
    score: float
    true_instance_id: int | None = None

    @property
    def is_false_positive(self) -> bool:
        return self.true_instance_id is None


@dataclass
class DetectorStats:
    """Invocation counters consumed by the cost model."""

    frames_processed: int = 0
    detections_emitted: int = 0

    def reset(self) -> None:
        self.frames_processed = 0
        self.detections_emitted = 0


class Detector(Protocol):
    """Anything that maps a frame index to a list of detections.

    ``detect_many`` is the batch form: one call for a whole batch of
    frames, returning one detection list per frame **in input order**.
    It exists so execution layers can amortize per-call overhead (the
    way real GPU detectors batch inference); it must be *score
    equivalent* to calling :meth:`detect` per frame — same boxes, same
    order.  Detectors that lack the method still work everywhere: use
    :func:`repro.detection.execution.batch_detect`, which falls back to
    a sequential per-frame loop.
    """

    stats: DetectorStats

    def detect(self, frame_index: int) -> list[Detection]:  # pragma: no cover
        ...

    def detect_many(
        self, frame_indices: Sequence[int]
    ) -> list[list[Detection]]:  # pragma: no cover
        ...


class _ScheduleView:
    """The ground-truth occupancy index behind a simulated detector.

    Built once per repository *version*: when live ingestion appends a
    clip (bumping :attr:`~repro.video.repository.VideoRepository.version`)
    the next lookup rebuilds the index over the grown instance set, so a
    long-lived detector sees appended objects without being reconstructed.
    Rebuilds are O(instances) and happen once per append — negligible next
    to the per-frame detection work they index.
    """

    def __init__(self, repository: VideoRepository, category: str | None):
        self._repository = repository
        self._category = category
        self._built_version = repository.version
        self._schedule = self._build()

    def _build(self) -> OccupancySchedule:
        source = (
            self._repository.instances
            if self._category is None
            else self._repository.instances_of(self._category)
        )
        return OccupancySchedule(source)

    def visible(self, frame_index: int):
        if self._repository.version != self._built_version:
            self._built_version = self._repository.version
            self._schedule = self._build()
        return self._schedule.visible(frame_index)


class OracleDetector:
    """Perfect detector: returns exactly the ground-truth boxes.

    Useful for separating the sampling question (which frames to look at)
    from detector noise, and as the reference detector used to build
    pseudo-ground-truth, mirroring §V-A's ground-truth construction.
    """

    def __init__(self, repository: VideoRepository, category: str | None = None):
        self._category = category
        self._schedule = _ScheduleView(repository, category)
        self.stats = DetectorStats()

    def detect(self, frame_index: int) -> list[Detection]:
        self.stats.frames_processed += 1
        out = []
        for inst in self._schedule.visible(frame_index):
            out.append(
                Detection(
                    frame_index=frame_index,
                    box=inst.box_at(frame_index),
                    category=inst.category,
                    score=1.0,
                    true_instance_id=inst.instance_id,
                )
            )
        self.stats.detections_emitted += len(out)
        return out

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        return [self.detect(int(f)) for f in frame_indices]


class SimulatedDetector:
    """A noisy black-box detector over synthetic ground truth.

    Noise is deterministic per (seed, frame, instance): re-detecting the
    same frame gives the same boxes, as a deployed deterministic CNN would.
    That property matters because samplers may revisit frames near each
    other and the discriminator must behave consistently.
    """

    def __init__(
        self,
        repository: VideoRepository,
        category: str | None = None,
        miss_rate: float = 0.1,
        false_positive_rate: float = 0.02,
        jitter: float = 0.03,
        seed: int = 0,
    ):
        if not 0.0 <= miss_rate < 1.0:
            raise ValueError("miss_rate must lie in [0, 1)")
        if false_positive_rate < 0.0:
            raise ValueError("false_positive_rate must be non-negative")
        if jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        self._category = category
        self._schedule = _ScheduleView(repository, category)
        self._miss_rate = miss_rate
        self._fp_rate = false_positive_rate
        self._jitter = jitter
        self._seed = seed
        self._fp_category = category if category is not None else "object"
        self.stats = DetectorStats()

    def detect(self, frame_index: int) -> list[Detection]:
        self.stats.frames_processed += 1
        out: list[Detection] = []
        for inst in self._schedule.visible(frame_index):
            rng = self._rng_for(frame_index, inst.instance_id)
            box = inst.box_at(frame_index)
            if rng.random() < self._effective_miss_rate(box):
                continue
            noisy = self._jitter_box(box, rng)
            score = self._score(noisy, rng)
            out.append(
                Detection(
                    frame_index=frame_index,
                    box=noisy,
                    category=inst.category,
                    score=score,
                    true_instance_id=inst.instance_id,
                )
            )
        out.extend(self._false_positives(frame_index))
        self.stats.detections_emitted += len(out)
        return out

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        # noise is deterministic per (seed, frame, instance), so the batch
        # form is the per-frame form regardless of batching or order
        return [self.detect(int(f)) for f in frame_indices]

    # ------------------------------------------------------------- internals

    def _rng_for(self, frame_index: int, instance_id: int) -> DecisionRng:
        return DecisionRng((self._seed, 0x5EED, frame_index, instance_id))

    def _effective_miss_rate(self, box: Box) -> float:
        """Small objects are missed more often, up to 3x the base rate."""
        if self._miss_rate == 0.0:
            return 0.0
        reference_area = 100.0 * 100.0
        factor = min(3.0, max(0.5, reference_area / max(box.area, 1.0)))
        return min(0.95, self._miss_rate * factor)

    def _jitter_box(self, box: Box, rng: DecisionRng) -> Box:
        if self._jitter == 0.0:
            return box
        dx = rng.normal(0.0, self._jitter * max(box.width, 1.0))
        dy = rng.normal(0.0, self._jitter * max(box.height, 1.0))
        scale = math.exp(rng.normal(0.0, self._jitter))
        jittered = box.translate(dx, dy).scale(scale)
        return jittered.clip(FRAME_WIDTH, FRAME_HEIGHT)

    def _score(self, box: Box, rng: DecisionRng) -> float:
        base = 0.5 + 0.5 * min(1.0, box.area / (300.0 * 300.0))
        noise = rng.normal(0.0, 0.08)
        return min(max(base + noise, 0.05), 1.0)

    def _false_positives(self, frame_index: int) -> list[Detection]:
        if self._fp_rate == 0.0:
            return []
        rng = DecisionRng((self._seed, 0xFA15E, frame_index))
        count = rng.poisson(self._fp_rate)
        out = []
        for _ in range(count):
            w = rng.uniform(20, 120)
            h = rng.uniform(20, 120)
            cx = rng.uniform(w / 2, FRAME_WIDTH - w / 2)
            cy = rng.uniform(h / 2, FRAME_HEIGHT - h / 2)
            out.append(
                Detection(
                    frame_index=frame_index,
                    box=Box.from_center(cx, cy, w, h),
                    category=self._fp_category,
                    score=rng.uniform(0.05, 0.6),
                    true_instance_id=None,
                )
            )
        return out
