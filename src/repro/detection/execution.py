"""Batched + parallel detection execution.

The paper treats the detector as a black box whose *runtime* dominates
query cost (§I); once a sampling policy has chosen a batch of frames
(§III-F), how those frames are pushed through the detector is purely an
execution-layer concern.  Real GPU detectors amortize per-call overhead
by batching inference and by keeping several requests in flight; this
module reproduces both levers over the simulated substrate:

* :func:`batch_detect` — the dispatch seam every engine calls: uses the
  detector's native ``detect_many`` when it has one and falls back to a
  sequential per-frame loop otherwise, so third-party detectors that
  only implement ``detect`` keep working unchanged;
* :class:`ParallelDetector` — services a batch over a thread worker
  pool with configurable ``workers`` and a simulated per-call
  ``latency``.  The latency models the fixed per-invocation overhead of
  a remote/accelerator detector (dispatch, transfer, kernel launch);
  it is what parallelism actually hides, and what the throughput
  benchmark (``benchmarks/test_bench_parallel.py``) measures.

The cardinal rule of this layer: **every execution mode is score
equivalent to the sequential reference.**  For any deterministic wrapped
detector, ``detect_many(frames)`` returns exactly what per-frame
``detect`` calls would, in input order, no matter how many workers
serviced the batch — so batching and parallelism can never change a
query's answer, only its wall-clock time.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from .. import telemetry
from ..telemetry import FRAMES_BUCKETS
from .detector import Detection, Detector, DetectorStats

__all__ = ["batch_detect", "wrap_parallel", "ParallelDetector"]


def batch_detect(
    detector: Detector, frame_indices: Sequence[int]
) -> list[list[Detection]]:
    """Run ``detector`` over a batch of frames, one result list per frame.

    Dispatches to the detector's native ``detect_many`` when available
    (one amortized call) and falls back to sequential per-frame
    ``detect`` calls otherwise.  Either way the results align with
    ``frame_indices`` in order, and are identical to the per-frame path.
    """
    native = getattr(detector, "detect_many", None)
    if native is not None:
        return native(list(frame_indices))
    return [detector.detect(int(f)) for f in frame_indices]


def wrap_parallel(detector: Detector, workers: int, latency: float) -> Detector:
    """Wrap ``detector`` in a :class:`ParallelDetector` when the
    execution knobs ask for one; the identity otherwise.

    The single policy for every construction site (`QueryEngine`,
    `QueryService`): a lone worker with no simulated latency adds
    nothing, so the detector is returned untouched.
    """
    if workers > 1 or latency > 0.0:
        return ParallelDetector(detector, workers=workers, latency=latency)
    return detector


class ParallelDetector:
    """A detector that services batches concurrently over a worker pool.

    Parameters
    ----------
    detector:
        The wrapped black-box detector.  It is *not* assumed
        thread-safe: the actual ``detect`` body runs under a lock, and
        only the simulated per-call latency overlaps across workers —
        exactly the regime of a GPU detector, where the accelerator
        serializes kernels while dispatch overhead overlaps.
    workers:
        Pool size; ``1`` degenerates to sequential execution (no pool is
        ever created).
    latency:
        Simulated fixed per-invocation overhead in seconds, paid by
        every call on both the single-frame and the batch path so that
        sequential and parallel execution are charged identically per
        frame.  ``0.0`` (the default) adds no sleep at all.

    ``stats`` counts frames served by *this* wrapper; the wrapped
    detector's own stats keep counting real invocations (the two match,
    since this layer never skips or duplicates work).
    """

    def __init__(self, detector: Detector, workers: int = 4, latency: float = 0.0):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if latency < 0.0:
            raise ValueError("latency must be non-negative")
        self._detector = detector
        self._workers = workers
        self._latency = latency
        self._lock = threading.Lock()
        self._tel_lock = threading.Lock()  # guards the in-flight tally
        self._inflight = 0
        self._pool: ThreadPoolExecutor | None = None
        self.stats = DetectorStats()

    # ------------------------------------------------------------ properties

    @property
    def wrapped(self) -> Detector:
        return self._detector

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def latency(self) -> float:
        return self._latency

    # ------------------------------------------------------------- execution

    def _call(self, frame_index: int) -> list[Detection]:
        tel = telemetry.get()
        if tel.enabled:
            with self._tel_lock:
                self._inflight += 1
                depth = self._inflight
            tel.gauge("repro_exec_inflight_calls").set(depth)
            tel.gauge("repro_exec_inflight_peak_calls").set_max(depth)
            busy_start = time.perf_counter()
        try:
            if self._latency > 0.0:
                time.sleep(self._latency)  # overlappable per-call overhead
            with self._lock:  # the wrapped detector is not assumed thread-safe
                return self._detector.detect(frame_index)
        finally:
            if tel.enabled:
                tel.counter("repro_exec_busy_seconds_total").inc(
                    time.perf_counter() - busy_start
                )
                with self._tel_lock:
                    self._inflight -= 1
                    depth = self._inflight
                tel.gauge("repro_exec_inflight_calls").set(depth)

    def detect(self, frame_index: int) -> list[Detection]:
        detections = self._call(int(frame_index))
        self.stats.frames_processed += 1
        self.stats.detections_emitted += len(detections)
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("repro_exec_frames_total").inc()
        return detections

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        frames = [int(f) for f in frame_indices]
        tel = telemetry.get()
        if tel.enabled:
            # queue depth: the whole batch is enqueued at once, so its
            # size is what the pool sees waiting at submit time
            tel.gauge("repro_exec_queue_depth_frames").set(len(frames))
            tel.gauge("repro_exec_queue_depth_peak_frames").set_max(len(frames))
            tel.gauge("repro_exec_workers").set(self._workers)
            batch_start = time.perf_counter()
        if len(frames) <= 1 or self._workers == 1:
            results = [self._call(f) for f in frames]
        else:
            results = list(self._ensure_pool().map(self._call, frames))
        self.stats.frames_processed += len(frames)
        self.stats.detections_emitted += sum(len(r) for r in results)
        if tel.enabled:
            elapsed = time.perf_counter() - batch_start
            tel.counter("repro_exec_batches_total").inc()
            tel.counter("repro_exec_frames_total").inc(len(frames))
            tel.histogram("repro_exec_batch_frames", buckets=FRAMES_BUCKETS).observe(
                len(frames)
            )
            tel.histogram("repro_exec_batch_seconds").observe(elapsed)
            tel.gauge("repro_exec_queue_depth_frames").set(0)
            # worker utilization numerator: busy seconds accumulate in
            # _call; utilization = busy / (batch_seconds × workers)
        return results

    # -------------------------------------------------------------- lifecycle

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; the detector remains
        usable afterwards — a new pool is created on demand)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelDetector":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
