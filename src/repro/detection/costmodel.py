"""Cost accounting: converting frame counts into wall-clock time.

The evaluation's headline comparison (Table I) is stated in *time*:
a proxy pipeline must scan-and-score every frame at ~100 fps (I/O +
decode bound) before it can return anything, while the sampling loop
processes frames through the detector at ~20 fps (detector bound,
§V-B).  :class:`ThroughputModel` encodes these rates and formats times
the way the paper prints them ("1m37s", "9h50m").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThroughputModel", "format_duration", "parse_duration"]


@dataclass(frozen=True)
class ThroughputModel:
    """Measured throughputs of the paper's testbed (§V-B).

    ``detect_fps``  — full detector pipeline: random read + decode + detect.
    ``scan_fps``    — sequential scan + proxy scoring (io/decode bound).
    """

    detect_fps: float = 20.0
    scan_fps: float = 100.0

    def __post_init__(self) -> None:
        if self.detect_fps <= 0 or self.scan_fps <= 0:
            raise ValueError("throughputs must be positive")

    def detection_seconds(self, frames: int) -> float:
        """Wall-clock seconds to run the detector on ``frames`` frames."""
        if frames < 0:
            raise ValueError("frames must be non-negative")
        return frames / self.detect_fps

    def scan_seconds(self, frames: int) -> float:
        """Wall-clock seconds to scan-and-score ``frames`` frames."""
        if frames < 0:
            raise ValueError("frames must be non-negative")
        return frames / self.scan_fps

    def frames_detectable_in(self, seconds: float) -> int:
        """How many frames the detector can process in a time budget."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        return int(seconds * self.detect_fps)

    def batched_detect_fps(
        self, batch_size: int, max_speedup: float = 4.0, half_speed_batch: int = 8
    ) -> float:
        """Effective detector throughput at a given inference batch size.

        §III-F's motivation for batching: "on modern GPUs inference
        throughput is faster when performed on batches of images".  The
        standard saturating model applies — per-batch fixed overhead
        (kernel launches, host-device transfer) amortizes across the
        batch until compute saturates:

            fps(B) = detect_fps * max_speedup * B / (B + half_speed_batch * (max_speedup - 1) / ... )

        parametrized so fps(1) = ``detect_fps`` and fps(∞) =
        ``max_speedup * detect_fps``, with ``half_speed_batch`` the batch
        size reaching half the asymptotic gain.  Defaults reflect typical
        Faster-RCNN/ResNet-50 batching on the paper's era of GPUs (~4x
        from batch 1 to saturation).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if max_speedup < 1.0:
            raise ValueError("max_speedup must be at least 1")
        if half_speed_batch <= 0:
            raise ValueError("half_speed_batch must be positive")
        gain = max_speedup - 1.0
        extra = gain * (batch_size - 1) / (batch_size - 1 + half_speed_batch)
        return self.detect_fps * (1.0 + extra)

    def batched_detection_seconds(self, frames: int, batch_size: int) -> float:
        """Wall-clock seconds to detect ``frames`` frames at ``batch_size``.

        Together with the batch ablation's sample counts this answers the
        §III-F question the paper leaves implicit: the *time*-optimal
        batch size, where throughput gains outweigh the decision lag's
        extra samples.
        """
        if frames < 0:
            raise ValueError("frames must be non-negative")
        return frames / self.batched_detect_fps(batch_size)


def format_duration(seconds: float) -> str:
    """Format like the paper's Table I: ``18s``, ``1m37s``, ``9h50m``.

    Sub-minute values show seconds, sub-hour values show minutes and
    seconds, and longer values show hours and minutes (dropping zero
    components just as the paper does).
    """
    if seconds < 0:
        raise ValueError("seconds must be non-negative")
    total = int(round(seconds))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}h{minutes}m" if minutes else f"{hours}h"
    if minutes:
        return f"{minutes}m{secs}s" if secs else f"{minutes}m"
    return f"{secs}s"


def parse_duration(text: str) -> float:
    """Inverse of :func:`format_duration`, for paper-reference tables."""
    text = text.strip().lower()
    if not text:
        raise ValueError("empty duration")
    seconds = 0.0
    number = ""
    for ch in text:
        if ch.isdigit() or ch == ".":
            number += ch
        elif ch in "hms":
            if not number:
                raise ValueError(f"malformed duration {text!r}")
            value = float(number)
            seconds += value * {"h": 3600.0, "m": 60.0, "s": 1.0}[ch]
            number = ""
        else:
            raise ValueError(f"unexpected character {ch!r} in duration {text!r}")
    if number:
        raise ValueError(f"trailing number without unit in {text!r}")
    return seconds
