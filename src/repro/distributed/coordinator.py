"""The shard coordinator: one detector facade over N worker processes.

The coordinator is the parent-side half of the distributed execution
backend.  To the serving stack it *is* a detector — it conforms to the
:class:`~repro.detection.detector.Detector` protocol and slots under the
service's shared :class:`~repro.detection.cache.CachingDetector` exactly
where a local detector would — but inside, each batch is routed by the
:class:`~repro.distributed.shard.ShardPlan`, fanned out to per-shard
worker processes, and merged back **in input order**.

The design carries the same theorem the whole serving layer rests on:
sampling decisions live entirely in the coordinator's process (the
ExSample engines, their RNGs, the belief state), and workers compute
*only* detection content, which is a pure function of the frame.  So the
number of shards, the routing, worker deaths, respawns, and every other
execution detail are invisible to a query's answer — a sharded run
returns byte-identical matches and per-chunk sample counts to a
single-process run (asserted over a seed matrix in
``tests/test_distributed_parity.py``).

Fault handling: a worker is a spec plus a replica, so the coordinator's
response to a dead worker is to rebuild it — spawn a fresh process from
the current repository and the same :class:`WorkerSpec`, re-issue the
in-flight request, and carry on.  A kill therefore costs a respawn and a
cold local cache, never a wrong (or lost) answer.

Workers are spawned lazily: a shard that never receives a request (an
empty shard of a small repository, a dataset nobody queries) never costs
a process.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Sequence

from .. import telemetry
from ..telemetry import FRAMES_BUCKETS
from ..detection.detector import Detection, DetectorStats
from ..video.repository import VideoRepository
from .plane import CachePlane
from .shard import ShardPlan
from .worker import DetectorSpec, WorkerSpec, decode_rows, worker_main

__all__ = ["WorkerHandle", "ShardCoordinator"]

# pipe failures that mean "the worker is gone", triggering a respawn
_DEAD_WORKER_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


def _start_method() -> str:
    """``fork`` where available (fast, and the replica needs no pickling),
    else ``spawn``; overridable for debugging via ``REPRO_MP_START``."""
    override = os.environ.get("REPRO_MP_START")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerHandle:
    """One live worker process and its pipe.

    ``clips_shipped`` records how much of the repository the worker's
    replica covers — the coordinator forwards only clips appended after
    that point, and a freshly spawned worker starts fully caught up
    (its replica is a copy of the repository at spawn time).
    """

    def __init__(self, ctx, spec: WorkerSpec, repository: VideoRepository):
        parent_conn, child_conn = ctx.Pipe()
        self._conn = parent_conn
        self.spec = spec
        self.clips_shipped = repository.num_clips
        self._process = ctx.Process(
            target=worker_main,
            args=(child_conn, spec, repository),
            daemon=True,
            name=f"repro-shard-{spec.dataset}-{spec.shard_id}",
        )
        self._process.start()
        child_conn.close()  # the child's end lives in the child now

    @property
    def alive(self) -> bool:
        return self._process.is_alive()

    @property
    def pid(self) -> int | None:
        return self._process.pid

    def send(self, message: tuple) -> None:
        self._conn.send(message)

    def recv(self) -> tuple:
        return self._conn.recv()

    def kill(self) -> None:
        """Hard-kill the process (the crash the fault injector simulates)."""
        self._process.terminate()
        self._process.join(timeout=5.0)
        self._conn.close()

    def close(self) -> None:
        """Graceful shutdown: ask, wait briefly, then insist."""
        if self._process.is_alive():
            try:
                self._conn.send(("shutdown", -1, None))
                self._conn.recv()  # the acknowledgement, best effort
            except _DEAD_WORKER_ERRORS:
                pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()


class ShardCoordinator:
    """Shard-parallel detection behind the ``Detector`` protocol.

    Parameters
    ----------
    repository:
        The live repository (the coordinator tracks its growth and
        forwards appended clips to worker replicas before routing any
        frame beyond their horizon).
    num_shards:
        Worker-process count; ``1`` is a legal degenerate deployment
        (one worker, still out of process) used by the parity matrix.
    detector_spec:
        The :class:`DetectorSpec` every worker builds its detector from;
        defaults to the noise-free oracle.
    latency:
        Simulated per-detection overhead paid inside each worker (see
        :class:`WorkerSpec`).
    cache_plane:
        An optional shared :class:`~repro.distributed.plane.CachePlane`.
        When set, every batch consults the plane before fanning out —
        plane hits never reach a worker — and freshly detected rows are
        filled back in, so a frame detected under any coordinator
        sharing the plane is a hit for all of them.  The plane is
        borrowed, not owned: :meth:`close` leaves it untouched.
    cache_budget:
        Optional entry budget for each worker's *local* cache (threaded
        into :class:`WorkerSpec`); ``None`` keeps workers unbounded.

    ``stats`` counts frames *served by this coordinator* — with the
    service's shared cache in front, that is exactly the real detection
    work the paper's cost model charges, matching what a local detector's
    ``stats`` would read.  Worker-local cache hits (possible only after a
    respawn or an upstream cache drop) are an execution detail and are
    deliberately not subtracted: the frame was still served.  Frames
    answered by the plane are likewise served (and counted in
    ``plane_hits``); the real detector invocations they avoided show up
    as the gap against :meth:`worker_stats`' ``detector_calls``.
    """

    def __init__(
        self,
        repository: VideoRepository,
        num_shards: int,
        detector_spec: DetectorSpec | None = None,
        latency: float = 0.0,
        dataset: str | None = None,
        start_method: str | None = None,
        cache_plane: CachePlane | None = None,
        cache_budget: int | None = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if latency < 0.0:
            raise ValueError("latency must be non-negative")
        if cache_budget is not None and cache_budget < 0:
            raise ValueError("cache_budget must be non-negative")
        self._repository = repository
        self._plan = ShardPlan(repository, num_shards)
        self._detector_spec = (
            detector_spec if detector_spec is not None else DetectorSpec()
        )
        self._latency = latency
        self._dataset = dataset if dataset is not None else repository.name
        self._ctx = multiprocessing.get_context(
            start_method if start_method is not None else _start_method()
        )
        self._plane = cache_plane
        self._cache_budget = cache_budget
        self._handles: list[WorkerHandle | None] = [None] * num_shards
        self._next_request = 0
        self._closed = False
        self.restarts = 0  # respawns forced by dead workers
        self.plane_hits = 0  # frames answered by the shared plane
        self.stats = DetectorStats()

    # ------------------------------------------------------------ properties

    @property
    def num_shards(self) -> int:
        return self._plan.num_shards

    @property
    def plan(self) -> ShardPlan:
        return self._plan

    @property
    def dataset(self) -> str:
        return self._dataset

    @property
    def detector_spec(self) -> DetectorSpec:
        return self._detector_spec

    @property
    def cache_plane(self) -> CachePlane | None:
        return self._plane

    def workers_alive(self) -> list[int]:
        """Shard ids with a currently live worker process."""
        return [
            shard_id
            for shard_id, handle in enumerate(self._handles)
            if handle is not None and handle.alive
        ]

    # ------------------------------------------------------------- plumbing

    def _worker_spec(self, shard_id: int) -> WorkerSpec:
        return WorkerSpec(
            shard_id=shard_id,
            dataset=self._dataset,
            detector=self._detector_spec,
            latency=self._latency,
            cache_budget=self._cache_budget,
            # mirror the parent's pipeline state at spawn time, so worker
            # registries exist exactly when there is a fleet to merge into
            telemetry=telemetry.get().enabled,
        )

    def _spawn(self, shard_id: int) -> WorkerHandle:
        handle = WorkerHandle(
            self._ctx, self._worker_spec(shard_id), self._repository
        )
        self._handles[shard_id] = handle
        return handle

    def _ensure_worker(self, shard_id: int) -> WorkerHandle:
        if self._closed:
            raise RuntimeError("coordinator is closed")
        handle = self._handles[shard_id]
        if handle is None:
            return self._spawn(shard_id)
        return handle

    def _respawn(self, shard_id: int) -> WorkerHandle:
        """Rebuild a dead worker from its spec — the crash-recovery path.

        The replacement's replica is the *current* repository, so it is
        born fully caught up; only the dead worker's local cache is lost
        (a cost, never a correctness event)."""
        handle = self._handles[shard_id]
        if handle is not None:
            handle.kill()  # reap whatever is left; idempotent on the dead
        self.restarts += 1
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("repro_shard_respawns_total", {"shard": shard_id}).inc()
        return self._spawn(shard_id)

    def _request(self, shard_id: int, op: str, payload) -> object:
        """One full round-trip to a shard, respawning on a dead worker.

        Retries the request at most twice against fresh workers; a spec
        that cannot survive two respawns is a real bug, not a crash."""
        attempts = 0
        while True:
            handle = self._ensure_worker(shard_id)
            request_id = self._next_request
            self._next_request += 1
            try:
                handle.send((op, request_id, payload))
                response = handle.recv()
            except _DEAD_WORKER_ERRORS:
                attempts += 1
                if attempts > 2:
                    raise RuntimeError(
                        f"shard {shard_id} worker died {attempts} times in a "
                        f"row serving {op!r}"
                    )
                self._respawn(shard_id)
                continue
            return self._check(response, request_id, shard_id)

    @staticmethod
    def _check(response: tuple, request_id: int, shard_id: int):
        status, echoed, payload = response
        if echoed != request_id:  # pragma: no cover - protocol guard
            raise RuntimeError(
                f"shard {shard_id} answered request {echoed}, expected "
                f"{request_id} (wire protocol violation)"
            )
        if status != "ok":
            raise RuntimeError(f"shard {shard_id} failed: {payload}")
        return payload

    def _sync(self) -> None:
        """Bring routing and worker replicas up to the repository horizon.

        Newly appended clips are assigned by the plan, then forwarded to
        every *live* worker whose replica predates them (a worker spawned
        later starts caught up).  Only spawned workers are updated —
        lazily spawned ones copy the current repository at spawn time.
        """
        self._plan.sync()
        clips = self._repository.clips
        for shard_id in range(self.num_shards):
            handle = self._handles[shard_id]
            if handle is None or not handle.alive:
                continue  # a lazily/re-spawned worker copies the repo then
            while handle.clips_shipped < len(clips):
                clip = clips[handle.clips_shipped]
                instances = [
                    inst
                    for inst in self._repository.instances
                    if clip.start_frame <= inst.start_frame
                    and inst.end_frame <= clip.end_frame
                ]
                request_id = self._next_request
                self._next_request += 1
                try:
                    handle.send(
                        (
                            "append",
                            request_id,
                            {
                                "num_frames": clip.num_frames,
                                "name": clip.name,
                                "fps": clip.fps,
                                "instances": instances,
                            },
                        )
                    )
                    self._check(handle.recv(), request_id, shard_id)
                except _DEAD_WORKER_ERRORS:
                    # append must NOT be blindly retried: the replacement's
                    # replica copies the *current* repository, so it is born
                    # caught up and re-appending would duplicate the clip
                    self._respawn(shard_id)
                    break
                handle.clips_shipped = clip.clip_id + 1

    # ------------------------------------------------------------- detection

    def detect_many(self, frame_indices: Sequence[int]) -> list[list[Detection]]:
        """Route a batch by shard, fan out, merge in input order.

        All shard requests are *sent* before any response is awaited, so
        workers overlap their detection work — that overlap is the whole
        throughput story (``benchmarks/test_bench_distributed.py``).
        """
        frames = [int(f) for f in frame_indices]
        if not frames:
            return []
        tel = telemetry.get()
        batch_start = time.perf_counter() if tel.enabled else 0.0
        # the tick loop declares which traces ride this batch; an empty
        # tuple (tracing off, or an untraced call like warm-up) keeps the
        # wire payload in its plain-list form
        tracer = tel.tracer
        contexts = tracer.dispatch_contexts() if tracer.enabled else ()
        self._sync()
        # consult the shared plane first: a frame any coordinator on this
        # plane already paid for never reaches a worker.  Plane rows are
        # the same encoded wire format workers return, so hits merge
        # through the identical decode path — byte-identical detections.
        plane_rows: dict[int, list[dict]] = {}
        dispatch = frames
        if self._plane is not None:
            unique = list(dict.fromkeys(frames))
            found = self._plane.lookup(self._dataset, unique)
            plane_rows = {
                frame: rows for frame, rows in zip(unique, found) if rows is not None
            }
            self.plane_hits += sum(1 for f in frames if f in plane_rows)
            dispatch = [f for f in frames if f not in plane_rows]
        groups: dict[int, list[int]] = {}
        for frame in dispatch:
            groups.setdefault(self._plan.shard_for_frame(frame), []).append(frame)
        # fan out: one in-flight request per shard
        in_flight: list[tuple[int, int]] = []  # (shard_id, request_id)
        sent_at: dict[int, float] = {}  # shard_id -> send timestamp
        for shard_id in sorted(groups):
            handle = self._ensure_worker(shard_id)
            request_id = self._next_request
            self._next_request += 1
            sent_at[shard_id] = time.perf_counter()
            payload = (
                {"frames": groups[shard_id], "trace": True}
                if contexts
                else groups[shard_id]
            )
            try:
                handle.send(("detect", request_id, payload))
                in_flight.append((shard_id, request_id))
            except _DEAD_WORKER_ERRORS:
                self._respawn(shard_id)
                in_flight.append((shard_id, -1))  # re-issued on collect
        if tel.enabled:
            tel.gauge("repro_shard_inflight_requests").set(len(in_flight))
            tel.gauge("repro_shard_inflight_peak_requests").set_max(len(in_flight))
        # collect, re-issuing against a fresh worker when one died
        # mid-flight.  Every in-flight request is drained before any
        # failure propagates: a worker answers exactly once per request,
        # so abandoning a healthy shard's queued response here would
        # desynchronize its wire stream for every later batch.
        by_frame: dict[int, list[Detection]] = {
            frame: decode_rows(rows) for frame, rows in plane_rows.items()
        }
        fresh_items: list[tuple[int, list[dict]]] = []  # plane fill-back
        failures: list[Exception] = []
        for shard_id, request_id in in_flight:
            payload = None
            try:
                if request_id >= 0:
                    try:
                        response = self._handles[shard_id].recv()
                        payload = self._check(response, request_id, shard_id)
                    except _DEAD_WORKER_ERRORS:
                        self._respawn(shard_id)
                if payload is None:  # the synchronous retry path
                    retry = (
                        {"frames": groups[shard_id], "trace": True}
                        if contexts
                        else groups[shard_id]
                    )
                    payload = self._request(shard_id, "detect", retry)
            except RuntimeError as exc:  # a shard failed; keep draining
                failures.append(exc)
                continue
            worker_span = None
            if isinstance(payload, dict):
                worker_span = payload.get("span")
                payload = payload["rows"]
            if contexts:
                # one shard-dispatch span per participating trace: the
                # batch coalesces many sessions, and each trace's tree
                # must stand alone (ids are per-trace counters, so the
                # duplication costs events, never determinism)
                end = time.perf_counter()
                start = sent_at[shard_id]
                for trace_id, parent in contexts:
                    dispatch_id = tracer.record_span(
                        trace_id,
                        "shard-dispatch",
                        start,
                        end - start,
                        parent_id=parent,
                        shard=shard_id,
                        frames=len(groups[shard_id]),
                    )
                    if worker_span and dispatch_id:
                        duration = min(
                            float(worker_span["duration_seconds"]), end - start
                        )
                        tracer.record_span(
                            trace_id,
                            "worker-detect",
                            max(start, end - duration),
                            duration,
                            parent_id=dispatch_id,
                            tid=shard_id + 1,
                            shard=shard_id,
                            frames=int(worker_span.get("frames", 0)),
                            detector_calls=int(worker_span.get("detector_calls", 0)),
                        )
            if tel.enabled:
                # send-to-merge latency as the coordinator experiences it
                # (includes any wait behind earlier shards' responses)
                tel.histogram(
                    "repro_shard_request_seconds", {"shard": shard_id}
                ).observe(time.perf_counter() - sent_at[shard_id])
                tel.counter("repro_shard_requests_total", {"shard": shard_id}).inc()
                tel.counter("repro_shard_frames_total", {"shard": shard_id}).inc(
                    len(groups[shard_id])
                )
            for frame, rows in zip(groups[shard_id], payload):
                if self._plane is not None and frame not in by_frame:
                    fresh_items.append((frame, rows))
                by_frame[frame] = decode_rows(rows)
        if tel.enabled:
            tel.gauge("repro_shard_inflight_requests").set(0)
        if failures:
            raise failures[0]
        if self._plane is not None and fresh_items:
            self._plane.fill(self._dataset, fresh_items)
        out = [list(by_frame[frame]) for frame in frames]
        self.stats.frames_processed += len(frames)
        self.stats.detections_emitted += sum(len(d) for d in out)
        if tel.enabled:
            # the exec-layer view of the same work: in a sharded service
            # the coordinator IS the execution backend (workers>1 and
            # shards>1 are mutually exclusive), so it must publish the
            # exec batch series or sharded runs would lose that layer
            elapsed = time.perf_counter() - batch_start
            tel.counter("repro_exec_batches_total").inc()
            tel.counter("repro_exec_frames_total").inc(len(frames))
            tel.histogram("repro_exec_batch_frames", buckets=FRAMES_BUCKETS).observe(
                len(frames)
            )
            tel.histogram("repro_exec_batch_seconds").observe(elapsed)
        return out

    def detect(self, frame_index: int) -> list[Detection]:
        return self.detect_many([int(frame_index)])[0]

    # ------------------------------------------------------------- lifecycle

    def warm_up(self) -> list[int]:
        """Spawn and ping every occupied shard's worker up front.

        Purely a latency lever: lazily spawned workers would otherwise
        pay their startup cost inside the first detection batch.  Returns
        the shard ids pinged.  The benchmark calls this so measured
        throughput is steady-state, as a long-lived deployment's would be.
        """
        self._sync()
        pinged = []
        for spec in self._plan.shards():
            if spec.empty:
                continue
            self._request(spec.shard_id, "ping", None)
            pinged.append(spec.shard_id)
        return pinged

    def kill_worker(self, shard_id: int) -> bool:
        """Hard-kill one worker (the fault injector's seam); returns
        whether there was a live worker to kill.  The next request routed
        to the shard respawns it transparently."""
        if not 0 <= shard_id < self.num_shards:
            raise IndexError(f"no shard {shard_id} (shards: {self.num_shards})")
        handle = self._handles[shard_id]
        if handle is None or not handle.alive:
            return False
        handle.kill()
        return True

    def worker_stats(self) -> dict[int, dict]:
        """Per-shard worker accounting (spawned workers only)."""
        out: dict[int, dict] = {}
        for shard_id, handle in enumerate(self._handles):
            if handle is None:
                continue
            out[shard_id] = self._request(shard_id, "stats", None)
        return out

    def collect_telemetry(self) -> int:
        """Harvest every live worker's registry into the parent pipeline.

        Each body lands in the fleet view under ``shard_id``/``dataset``
        labels (see :meth:`Telemetry.ingest_external`); re-collection
        replaces a shard's previous body, so this is safe to call
        periodically *and* at close.  Returns the number of workers
        collected.  Dead workers are skipped rather than respawned —
        telemetry must never be the reason a process exists.
        """
        tel = telemetry.get()
        if not tel.enabled or self._closed:
            return 0
        collected = 0
        for shard_id, handle in enumerate(self._handles):
            if handle is None or not handle.alive:
                continue
            request_id = self._next_request
            self._next_request += 1
            try:
                # a direct round-trip, NOT ``_request``: a worker that
                # dies mid-harvest is skipped, never respawned for this
                handle.send(("telemetry", request_id, None))
                body = self._check(handle.recv(), request_id, shard_id)
            except _DEAD_WORKER_ERRORS + (RuntimeError,):
                continue
            tel.ingest_external(
                body,
                {"shard_id": str(shard_id), "dataset": self._dataset},
            )
            collected += 1
        return collected

    def close(self) -> None:
        """Shut every worker down; idempotent, safe on dead workers.

        The final telemetry harvest happens here, before any shutdown is
        sent — the last chance to fold worker-side series (cache tiers,
        detector calls) into the snapshot ``--metrics-out`` writes."""
        if self._closed:
            return
        self.collect_telemetry()
        self._closed = True
        for handle in self._handles:
            if handle is not None:
                handle.close()
        self._handles = [None] * self.num_shards

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
