"""Shard-parallel query serving: scale detection across processes.

The serving stack's execution cost is dominated by detector invocations
(§I); PR 2 overlapped their per-call overhead with threads, but one
process still runs one detector loop.  This package distributes that
loop: a :class:`~repro.distributed.shard.ShardPlan` partitions a
repository's clips into contiguous shards, each shard is owned by a
worker *process* (:mod:`repro.distributed.worker`) holding its own
detector and local detection cache, and a
:class:`~repro.distributed.coordinator.ShardCoordinator` routes every
planned frame batch to its owning shard, fans the per-shard requests
out, and merges the results in input order.

The layer's contract is the same one PRs 2–4 established for batching,
caching, and restarts: **execution is invisible to answers.**  All
sampling state — engines, RNGs, per-chunk beliefs — stays in the
coordinator process; workers compute only detection content, a pure
function of the frame.  A sharded run therefore returns byte-identical
matches and per-chunk sample counts to a single-process run, across
schedulers, shard counts, worker kills, and snapshot/restore — the
parity matrix in ``tests/test_distributed_parity.py`` and the
simulation harness's ``worker_kill`` fault both enforce it.

Front doors: ``QueryService(execution="sharded", shards=N)``,
``QueryEngine(..., shards=N)``, and the CLI's ``--shards`` flag on
``query`` / ``serve`` / ``submit`` / ``simulate``.
"""

from .coordinator import ShardCoordinator, WorkerHandle
from .plane import CachePlane
from .shard import ShardPlan, ShardSpec, shard_chunk_spans
from .worker import DetectorSpec, ShardWorker, WorkerSpec, worker_main

__all__ = [
    "CachePlane",
    "ShardCoordinator",
    "WorkerHandle",
    "ShardPlan",
    "ShardSpec",
    "shard_chunk_spans",
    "DetectorSpec",
    "ShardWorker",
    "WorkerSpec",
    "worker_main",
]
