"""The per-shard worker: a detector + local cache behind a message loop.

A worker owns one shard of the detection workload.  It is deliberately
**stateless with respect to query answers**: everything it holds — a
replica of the repository's ground truth, a detector built from a
:class:`DetectorSpec`, a local in-memory :class:`DetectionCache` — can be
rebuilt from its spec at any time, which is what lets the coordinator
treat a dead worker as a respawn, not a recovery problem.  Detection
content is a pure function of ``(detector spec, frame, ground truth)``,
so a fresh replacement returns byte-identical rows; only the warm local
cache is lost, costing re-detection, never answers.

The wire format is deliberately plain: requests are
``(op, request_id, payload)`` tuples, responses ``("ok", request_id,
payload)`` or ``("error", request_id, message)``, and detections cross
the wire as the same JSON-able rows the
:class:`~repro.detection.cache.DetectionCache` stores (float-exact under
encode/decode, so the parent reconstructs detections bit-identical to an
in-process detector's output).  Responses echo the request id, and a
worker answers requests strictly in arrival order — the coordinator's
order-preserving merge needs nothing more.

:class:`ShardWorker` is the testable in-process core (one ``handle``
call per message); :func:`worker_main` is the thin process entry point
that loops it over a :mod:`multiprocessing` pipe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from .. import telemetry
from ..detection.cache import DetectionCache, TieredBackend, _decode, _encode
from ..detection.detector import Detector, OracleDetector, SimulatedDetector
from ..video.instances import ObjectInstance
from ..video.repository import VideoRepository

__all__ = ["DetectorSpec", "WorkerSpec", "ShardWorker", "worker_main"]


@dataclass(frozen=True)
class DetectorSpec:
    """A picklable recipe for the worker-side detector.

    Sharded execution cannot ship a live detector object across a process
    boundary (and must not: a worker rebuilt after a crash needs to
    construct an *identical* one from scratch), so the detector is
    described by this spec and built inside the worker.  Defaults mirror
    :class:`~repro.detection.detector.SimulatedDetector`'s; ``kind`` is
    ``"oracle"`` (noise-free ground truth) or ``"simulated"``.
    """

    kind: str = "oracle"
    category: str | None = None
    miss_rate: float = 0.1
    false_positive_rate: float = 0.02
    jitter: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("oracle", "simulated"):
            raise ValueError(
                f"unknown detector kind {self.kind!r}; options: oracle, simulated"
            )

    def build(self, repository: VideoRepository) -> Detector:
        if self.kind == "oracle":
            return OracleDetector(repository, category=self.category)
        return SimulatedDetector(
            repository,
            category=self.category,
            miss_rate=self.miss_rate,
            false_positive_rate=self.false_positive_rate,
            jitter=self.jitter,
            seed=self.seed,
        )


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs besides the repository replica.

    ``latency`` is the simulated fixed per-detection overhead in seconds
    (the same knob :class:`~repro.detection.execution.ParallelDetector`
    models); each worker pays it serially for its own frames while other
    shards' workers pay theirs concurrently — the lever the distributed
    throughput benchmark measures.

    ``cache_budget`` bounds the worker's local cache to that many
    entries (LRU, via :class:`~repro.detection.cache.TieredBackend`);
    ``None`` keeps it unbounded.  Eviction costs re-detection only —
    detection content is a pure function of the frame, so a bounded
    worker returns byte-identical rows.

    ``telemetry`` mirrors the parent's pipeline state at spawn time:
    when true, :func:`worker_main` enables a *fresh* pipeline in the
    child (under ``fork`` the child would otherwise share a copy of the
    parent's half-filled registry and double-count on collection), and
    the ``telemetry`` wire op returns the worker's registry body for
    the coordinator's fleet merge.
    """

    shard_id: int
    dataset: str
    detector: DetectorSpec = DetectorSpec()
    latency: float = 0.0
    cache_budget: int | None = None
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if self.latency < 0.0:
            raise ValueError("latency must be non-negative")
        if self.cache_budget is not None and self.cache_budget < 0:
            raise ValueError("cache_budget must be non-negative")


class ShardWorker:
    """The in-process core of a worker: state + one ``handle`` per message.

    Kept separate from the process loop so the whole request surface is
    unit-testable without spawning anything.
    """

    def __init__(self, spec: WorkerSpec, repository: VideoRepository):
        self._spec = spec
        self._repository = repository
        self._detector = spec.detector.build(repository)
        self._cache = DetectionCache(
            TieredBackend(max_entries=spec.cache_budget)
            if spec.cache_budget is not None
            else None
        )
        self._served = 0

    @property
    def spec(self) -> WorkerSpec:
        return self._spec

    @property
    def repository(self) -> VideoRepository:
        return self._repository

    @property
    def detector_calls(self) -> int:
        """Real detector invocations (local cache hits excluded)."""
        return self._detector.stats.frames_processed

    # -------------------------------------------------------------- handlers

    def _detect(self, payload) -> list[list[dict]] | dict:
        # the payload is a bare frame list, or (when the parent traces)
        # ``{"frames": [...], "trace": true}`` — the dict form answers
        # with ``{"rows": ..., "span": {...}}`` so the coordinator can
        # file a worker-detect span under its shard-dispatch span.
        # Same rows either way; tracing never changes an answer.
        traced = isinstance(payload, dict)
        frames = payload["frames"] if traced else payload
        started = time.perf_counter() if traced else 0.0
        frames = [int(f) for f in frames]
        horizon = self._repository.horizon
        for frame in frames:
            if not 0 <= frame < horizon:
                raise IndexError(
                    f"shard {self._spec.shard_id} asked for frame {frame} "
                    f"outside its replica's frame space [0, {horizon})"
                )
        cached = self._cache.get_many(self._spec.dataset, frames)
        rows_by_frame: dict[int, list[dict]] = {}
        fresh: list[tuple[int, list[dict]]] = []
        for frame, hit in zip(frames, cached):
            if frame in rows_by_frame:
                continue
            if hit is not None:
                rows_by_frame[frame] = _encode(hit)
                continue
            if self._spec.latency > 0.0:
                time.sleep(self._spec.latency)  # the overhead shards overlap
            rows = _encode(self._detector.detect(frame))
            rows_by_frame[frame] = rows
            fresh.append((frame, rows))
        if fresh:
            # rows are already encoded; feed the backend directly so the
            # wire payload and the cached payload are the same object
            self._cache.backend.put_many(self._spec.dataset, fresh)
        self._served += len(frames)
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("repro_detector_batches_total").inc()
            tel.counter("repro_detector_frames_total").inc(len(frames))
            tel.counter("repro_detector_calls_total").inc(len(fresh))
        rows = [rows_by_frame[frame] for frame in frames]
        if not traced:
            return rows
        return {
            "rows": rows,
            "span": {
                "duration_seconds": time.perf_counter() - started,
                "frames": len(frames),
                "detector_calls": len(fresh),
            },
        }

    def _append(self, payload: dict) -> dict:
        instances = payload.get("instances", ())
        clip = self._repository.append_clip(
            int(payload["num_frames"]),
            [inst for inst in instances if isinstance(inst, ObjectInstance)],
            name=payload.get("name"),
            fps=payload.get("fps"),
        )
        return {"horizon": self._repository.horizon, "clip_id": clip.clip_id}

    def _stats(self) -> dict:
        backend = self._cache.backend
        evictions = (
            backend.tier_stats.evictions
            if isinstance(backend, TieredBackend)
            else 0
        )
        return {
            "shard": self._spec.shard_id,
            "dataset": self._spec.dataset,
            "served": self._served,
            "detector_calls": self.detector_calls,
            "cache_hits": self._cache.stats.hits,
            "cache_size": len(self._cache),
            "cache_evictions": evictions,
            "horizon": self._repository.horizon,
            "clips": self._repository.num_clips,
        }

    def _telemetry(self) -> dict:
        """The worker's registry body for the coordinator's fleet merge.

        Flushing the cache first drains its batched counter deltas, so
        the body reflects every hit/miss/eviction up to this instant.
        """
        self._cache.flush()
        tel = telemetry.get()
        if not tel.enabled:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        return tel.registry.snapshot()

    # ------------------------------------------------------------ dispatch

    def handle(self, message: tuple) -> tuple:
        """Answer one ``(op, request_id, payload)`` request.

        Never raises: every failure becomes an ``("error", id, message)``
        response, so a malformed request cannot take the worker (and its
        warm cache) down with it.
        """
        try:
            op, request_id, payload = message
        except (TypeError, ValueError):
            return ("error", None, f"malformed request: {message!r}")
        try:
            if op == "detect":
                return ("ok", request_id, self._detect(payload))
            if op == "append":
                return ("ok", request_id, self._append(payload))
            if op == "stats":
                return ("ok", request_id, self._stats())
            if op == "telemetry":
                return ("ok", request_id, self._telemetry())
            if op == "ping":
                return ("ok", request_id, {"shard": self._spec.shard_id})
            if op == "shutdown":
                return ("ok", request_id, {})
            return ("error", request_id, f"unknown op {op!r}")
        except Exception as exc:  # noqa: BLE001 — the seam must not die
            return ("error", request_id, f"{type(exc).__name__}: {exc}")


def decode_rows(rows: Sequence[dict]) -> list:
    """Rebuild :class:`~repro.detection.detector.Detection` values from
    wire rows — the parent-side half of the wire format."""
    return list(_decode(rows))


def worker_main(conn, spec: WorkerSpec, repository: VideoRepository) -> None:
    """Process entry point: loop a :class:`ShardWorker` over ``conn``.

    Exits when the pipe closes (coordinator died) or on ``shutdown``.
    Kept to a bare receive/handle/send loop so everything interesting is
    covered in-process through :class:`ShardWorker`.
    """
    if spec.telemetry:
        # always a *fresh* pipeline: under fork the child inherits a
        # copy of the parent's registry, and reporting those inherited
        # counts back would double-count them at the fleet merge
        telemetry.enable()
    else:
        telemetry.disable()
    worker = ShardWorker(spec, repository)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            response = worker.handle(message)
            conn.send(response)
            if isinstance(message, tuple) and message and message[0] == "shutdown":
                break
    finally:
        conn.close()
