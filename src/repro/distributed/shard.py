"""Shard planning: partitioning a repository's clips across workers.

The sampler's chunk layouts never span a clip boundary (see
:mod:`repro.core.chunking`), which makes the clip the natural unit of
distribution: a shard is a run of whole clips, so every chunk — and
therefore every per-chunk belief the coordinator maintains — lives
entirely inside exactly one shard.  The :class:`ShardPlan` assigns each
clip to a shard and answers the routing question the coordinator asks on
every batch: *which worker owns this frame?*

Two placement rules, both deterministic:

* the **initial** partition is contiguous and frame-balanced — clip
  midpoints are cut at ``total_frames / num_shards`` boundaries, so
  shards hold near-equal footage and stay temporally contiguous (cache
  locality for samplers that revisit a neighbourhood);
* clips **appended after planning** (live ingestion) go to the currently
  lightest shard (fewest frames, lowest id on ties), keeping load
  balanced as the repository grows.

Routing is a pure function of the clip sequence, so a coordinator
rebuilt after a crash derives the identical plan — and because *any*
routing returns the same detections (detection content is a function of
the frame, never of which worker computed it), the plan can never affect
a query's answer, only its wall-clock.

:func:`shard_chunk_spans` ties the plan back to the sampling layer: it
derives each shard's chunk layout with the same
:class:`~repro.core.chunking.IncrementalChunker` the serving sessions
use, taking chunks shard by shard at each shard's end horizon.  By the
chunker's append-invariance, the per-shard layouts concatenate to exactly
:func:`~repro.core.chunking.make_chunks`'s up-front layout — asserted in
``tests/test_shard.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..core.chunking import IncrementalChunker
from ..core.rng import DecisionRng
from ..video.repository import VideoRepository

__all__ = ["ShardSpec", "ShardPlan", "shard_chunk_spans"]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's assignment: which clips it owns.

    ``clip_ids`` may be empty — a repository with fewer clips than shards
    (or an empty live repository) leaves trailing shards without footage,
    and the coordinator never spawns a worker for a shard nobody routes
    to.  ``frames`` is the shard's current footage load, the quantity the
    append-placement rule balances.
    """

    shard_id: int
    clip_ids: tuple[int, ...]
    frames: int

    @property
    def empty(self) -> bool:
        return not self.clip_ids


class ShardPlan:
    """Clip-to-shard assignment plus O(log clips) frame routing.

    Bound to one repository; :meth:`sync` absorbs clips appended since
    the plan last looked (the coordinator calls it before every batch).
    """

    def __init__(self, repository: VideoRepository, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self._repository = repository
        self._num_shards = num_shards
        self._clip_shards: list[int] = []  # clip_id -> shard_id
        self._frames = [0] * num_shards  # per-shard footage load
        # routing index over the clips covered so far
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._shard_of: list[int] = []
        self._partition_initial()

    def _partition_initial(self) -> None:
        clips = self._repository.clips
        total = self._repository.total_frames
        for clip in clips:
            if total <= 0:  # pragma: no cover - clips imply frames
                shard = 0
            else:
                midpoint = (clip.start_frame + clip.end_frame) / 2.0
                shard = min(
                    self._num_shards - 1,
                    int(self._num_shards * midpoint / total),
                )
            self._assign(clip, shard)

    def _assign(self, clip, shard: int) -> None:
        self._clip_shards.append(shard)
        self._frames[shard] += clip.num_frames
        self._starts.append(clip.start_frame)
        self._ends.append(clip.end_frame)
        self._shard_of.append(shard)

    # ------------------------------------------------------------ properties

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def repository(self) -> VideoRepository:
        return self._repository

    @property
    def clips_covered(self) -> int:
        return len(self._clip_shards)

    @property
    def horizon(self) -> int:
        """Frames the plan currently routes (grows with :meth:`sync`)."""
        return self._ends[-1] if self._ends else 0

    def shards(self) -> list[ShardSpec]:
        """The current assignment, one spec per shard (empty ones too)."""
        clips_of: dict[int, list[int]] = {s: [] for s in range(self._num_shards)}
        for clip_id, shard in enumerate(self._clip_shards):
            clips_of[shard].append(clip_id)
        return [
            ShardSpec(
                shard_id=s,
                clip_ids=tuple(clips_of[s]),
                frames=self._frames[s],
            )
            for s in range(self._num_shards)
        ]

    def shard_of_clip(self, clip_id: int) -> int:
        return self._clip_shards[clip_id]

    # --------------------------------------------------------------- routing

    def sync(self) -> list[int]:
        """Assign clips appended since the plan last looked; returns the
        newly covered clip ids.  Appends go to the lightest shard
        (fewest frames, lowest id on ties) — deterministic, so every
        rebuild of the plan routes identically."""
        new_ids: list[int] = []
        clips = self._repository.clips
        while len(self._clip_shards) < len(clips):
            clip = clips[len(self._clip_shards)]
            shard = min(range(self._num_shards), key=lambda s: (self._frames[s], s))
            self._assign(clip, shard)
            new_ids.append(clip.clip_id)
        return new_ids

    def shard_for_frame(self, frame: int) -> int:
        """The shard owning ``frame``; raises for frames the plan does
        not cover (call :meth:`sync` first for freshly appended footage)."""
        pos = bisect.bisect_right(self._starts, frame) - 1
        if pos < 0 or frame >= self._ends[pos]:
            raise IndexError(
                f"frame {frame} is outside the planned frame space "
                f"[0, {self.horizon})"
            )
        return self._shard_of[pos]


def shard_chunk_spans(
    repository: VideoRepository,
    plan: ShardPlan,
    chunk_frames: int | None = None,
    use_random_plus: bool = True,
) -> dict[int, list[tuple[int, int, int]]]:
    """Each shard's chunk layout as ``(chunk_id, start, end)`` spans.

    Derived with the same :class:`IncrementalChunker` serving sessions
    use, taken shard by shard at each shard's end horizon — so the
    concatenation across shards *is* the single-process
    :func:`~repro.core.chunking.make_chunks` layout (same ids, same
    spans), which is what makes per-chunk statistics comparable between
    sharded and local runs.  Only meaningful for contiguous (initial)
    plans; a plan that has absorbed striped appends no longer has
    per-shard end horizons.
    """
    rng = DecisionRng(0)  # orders are unused; spans are RNG-free
    chunker = IncrementalChunker(
        repository, rng, chunk_frames=chunk_frames, use_random_plus=use_random_plus
    )
    clips = repository.clips
    out: dict[int, list[tuple[int, int, int]]] = {}
    horizon = 0
    for spec in plan.shards():
        if spec.clip_ids:
            ends = [clips[cid].end_frame for cid in spec.clip_ids]
            starts = [clips[cid].start_frame for cid in spec.clip_ids]
            if min(starts) < horizon:
                raise ValueError(
                    "shard_chunk_spans needs a contiguous plan; "
                    f"shard {spec.shard_id} starts before {horizon}"
                )
            horizon = max(ends)
        taken = chunker.take(up_to_horizon=horizon)
        out[spec.shard_id] = [
            (c.chunk_id, c.start_frame, c.end_frame) for c in taken
        ]
    return out
