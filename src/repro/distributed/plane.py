"""The shared cache plane: one detection store across coordinators.

Within a single service the coordinator-side
:class:`~repro.detection.cache.CachingDetector` already shares every
detection across sessions and shards — a frame one shard detects is a
hit for every session of that service.  What stays private without this
module is the *cross-service* (multi-tenant) case: two services querying
overlapping footage each pay full price, and each sharded worker's local
cache re-pays for frames a sibling worker of another tenant already
detected.

A :class:`CachePlane` closes that gap.  It is a thread-safe store of
encoded detection rows (the wire format workers already speak) that any
number of :class:`~repro.distributed.coordinator.ShardCoordinator`\\ s
consult *before* fanning a batch out and fill *after* collecting worker
results — so a frame detected under one tenant is a plane hit for all,
and the workers never even see it.  Because the plane deals purely in
detection content (a pure function of the frame) and sampling state
never leaves the coordinators, sharing it cannot change any query's
answer; bounding it with a
:class:`~repro.detection.cache.TieredBackend` degrades evicted entries
to re-detection, never to different decisions.

The plane is *externally owned*: the process that builds it (a CLI, a
benchmark harness, an embedding application) closes it.  Coordinators
only borrow it — closing a service must not tear the plane out from
under its other tenants.
"""

from __future__ import annotations

import threading
from typing import Sequence

from .. import telemetry
from ..detection.cache import CacheBackend, InMemoryBackend

__all__ = ["CachePlane"]


class CachePlane:
    """A lock-guarded, backend-pluggable store of encoded detection rows.

    Parameters
    ----------
    backend:
        Any :class:`~repro.detection.cache.CacheBackend`; defaults to an
        unbounded :class:`~repro.detection.cache.InMemoryBackend`.  Pass
        a :class:`~repro.detection.cache.TieredBackend` to bound the
        plane's memory (optionally over a persistent store so eviction
        stays lossless).

    The value format is the encoded row list the cache backends store
    and the worker wire protocol ships — lookups and fills never pay an
    encode/decode cycle.  ``hits``/``misses``/``fills`` give the plane's
    own accounting, independent of any tenant's cache stats.
    """

    def __init__(self, backend: CacheBackend | None = None):
        self._backend = backend if backend is not None else InMemoryBackend()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.fills = 0

    @property
    def backend(self) -> CacheBackend:
        return self._backend

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def lookup(
        self, dataset: str, frame_indices: Sequence[int]
    ) -> list[list[dict] | None]:
        """Encoded rows per frame, ``None`` on a miss; one entry per input."""
        frames = [int(f) for f in frame_indices]
        if not frames:
            return []
        with self._lock:
            out = self._backend.get_many(dataset, frames)
        batch_hits = sum(1 for rows in out if rows is not None)
        self.hits += batch_hits
        self.misses += len(out) - batch_hits
        tel = telemetry.get()
        if tel.enabled:
            if batch_hits:
                tel.counter("repro_cache_plane_hits_total").inc(batch_hits)
            if batch_hits < len(out):
                tel.counter("repro_cache_plane_misses_total").inc(
                    len(out) - batch_hits
                )
        return out

    def fill(self, dataset: str, items: Sequence[tuple[int, list[dict]]]) -> None:
        """Store freshly detected rows so every tenant's next lookup hits."""
        if not items:
            return
        coerced = [(int(frame), rows) for frame, rows in items]
        with self._lock:
            self._backend.put_many(dataset, coerced)
        self.fills += len(coerced)
        tel = telemetry.get()
        if tel.enabled:
            tel.counter("repro_cache_plane_fills_total").inc(len(coerced))

    def frames(self, dataset: str) -> list[int]:
        with self._lock:
            return self._backend.frames(dataset)

    def __len__(self) -> int:
        with self._lock:
            return len(self._backend)

    def flush(self) -> None:
        with self._lock:
            self._backend.flush()

    def close(self) -> None:
        """Close the plane's backend; the plane's owner calls this, not
        the coordinators borrowing it."""
        with self._lock:
            self._backend.close()
