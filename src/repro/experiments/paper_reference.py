"""The paper's published numbers, transcribed for paper-vs-measured reports.

Everything here is copied from the arXiv v3 text (Table I, Fig. 3's
savings labels, Fig. 5's summary statistics, Fig. 6's annotations) so that
EXPERIMENTS.md and the benchmark output can place reproduction results
next to the originals without anyone re-reading the PDF.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..detection.costmodel import parse_duration

__all__ = [
    "TableOneRow",
    "TABLE_ONE",
    "PROXY_SCAN_TIMES",
    "FIG3_SAVINGS_LABELS",
    "FIG5_SUMMARY",
    "FIG6_ANNOTATIONS",
]


@dataclass(frozen=True)
class TableOneRow:
    """One Table I row: ExSample times to 10/50/90% of instances."""

    dataset: str
    category: str
    t10: str
    t50: str
    t90: str

    def seconds(self) -> tuple[float, float, float]:
        return (
            parse_duration(self.t10),
            parse_duration(self.t50),
            parse_duration(self.t90),
        )


# Proxy scan time per dataset (Table I's "proxy (scan)" column).
PROXY_SCAN_TIMES: dict[str, str] = {
    "bdd1k": "54m",
    "bdd_mot": "53m",
    "amsterdam": "9h50m",
    "archie": "9h49m",
    "dashcam": "2h54m",
    "night_street": "8h",
}

TABLE_ONE: list[TableOneRow] = [
    # BDD 1k
    TableOneRow("bdd1k", "bike", "1m37s", "8m57s", "41m"),
    TableOneRow("bdd1k", "bus", "1m17s", "10m38s", "49m"),
    TableOneRow("bdd1k", "motor", "1m38s", "8m53s", "46m"),
    TableOneRow("bdd1k", "person", "52s", "6m46s", "36m"),
    TableOneRow("bdd1k", "rider", "1m31s", "10m14s", "45m"),
    TableOneRow("bdd1k", "traffic light", "1m33s", "12m18s", "50m"),
    TableOneRow("bdd1k", "traffic sign", "1m38s", "14m", "58m"),
    TableOneRow("bdd1k", "truck", "1m8s", "10m39s", "50m"),
    # BDD MOT
    TableOneRow("bdd_mot", "bicycle", "52s", "6m51s", "35m"),
    TableOneRow("bdd_mot", "bus", "31s", "3m18s", "21m"),
    TableOneRow("bdd_mot", "car", "1m31s", "8m21s", "30m"),
    TableOneRow("bdd_mot", "motorcycle", "49s", "6m38s", "39m"),
    TableOneRow("bdd_mot", "pedestrian", "41s", "4m51s", "24m"),
    TableOneRow("bdd_mot", "rider", "59s", "6m17s", "32m50s"),
    TableOneRow("bdd_mot", "trailer", "37s", "3m54s", "38m"),
    TableOneRow("bdd_mot", "train", "18s", "3m", "32m"),
    TableOneRow("bdd_mot", "truck", "36s", "3m57s", "20m36s"),
    # amsterdam
    TableOneRow("amsterdam", "bicycle", "1m10s", "8m42s", "39m"),
    TableOneRow("amsterdam", "boat", "2s", "14s", "4m"),
    TableOneRow("amsterdam", "car", "45s", "7m", "23m33s"),
    TableOneRow("amsterdam", "dog", "1m51s", "12m46s", "1h49m"),
    TableOneRow("amsterdam", "motorcycle", "5m21s", "24m58s", "2h18m"),
    TableOneRow("amsterdam", "person", "29s", "4m20s", "21m39s"),
    TableOneRow("amsterdam", "truck", "46s", "9m", "39m"),
    # archie
    TableOneRow("archie", "bicycle", "1m4s", "8m", "43m"),
    TableOneRow("archie", "bus", "1m", "6m47s", "58m"),
    TableOneRow("archie", "car", "46s", "4m36s", "10m35s"),
    TableOneRow("archie", "motorcycle", "3m10s", "22m", "1h57m"),
    TableOneRow("archie", "person", "1m5s", "7m32s", "50m"),
    TableOneRow("archie", "truck", "1m36s", "13m41s", "1h21m"),
    # dashcam
    TableOneRow("dashcam", "bicycle", "32s", "5m38s", "1h"),
    TableOneRow("dashcam", "bus", "1m11s", "26m", "2h58m"),
    TableOneRow("dashcam", "fire hydrant", "1m40s", "16m", "1h15m"),
    TableOneRow("dashcam", "person", "20s", "4m22s", "1h8m"),
    TableOneRow("dashcam", "stop sign", "45s", "20m26s", "2h27m"),
    TableOneRow("dashcam", "traffic light", "26s", "7m", "1h21m"),
    TableOneRow("dashcam", "truck", "2m17s", "28m37s", "2h58m"),
    # night street
    TableOneRow("night_street", "bus", "1m27s", "9m55s", "52m"),
    TableOneRow("night_street", "car", "12s", "2m21s", "11m"),
    TableOneRow("night_street", "dog", "2m34s", "18m45s", "3h39m"),
    TableOneRow("night_street", "motorcycle", "9m13s", "1h52m", "7h31m"),
    TableOneRow("night_street", "person", "14s", "1m55s", "15m"),
    TableOneRow("night_street", "truck", "1m10s", "9m59s", "1h4m"),
]


# Fig. 3's savings labels: rows = mean durations (14, 100, 700, 4900
# frames), columns = skew (none, 1/4, 1/32, 1/256).  Each cell lists the
# labelled savings at 10 / 100 / 1000 results where the paper prints one
# (None where the paper leaves the label blank).
FIG3_SAVINGS_LABELS: dict[tuple[int, str], tuple[float | None, float | None, float | None]] = {
    (14, "none"): (None, 0.79, None),
    (14, "1/4"): (None, 1.4, None),
    (14, "1/32"): (None, 3.9, None),
    (14, "1/256"): (None, 8.5, None),
    (100, "none"): (1.1, 0.98, 0.89),
    (100, "1/4"): (2.2, 2.6, None),
    (100, "1/32"): (12.0, 4.7, None),
    (100, "1/256"): (29.0, None, None),
    (700, "none"): (0.88, 1.0, 1.0),
    (700, "1/4"): (1.4, 2.5, 3.2),
    (700, "1/32"): (3.6, 15.0, 24.0),
    (700, "1/256"): (6.1, 26.0, 84.0),
    (4900, "none"): (0.97, 0.98, 1.1),
    (4900, "1/4"): (0.89, 2.0, 2.6),
    (4900, "1/32"): (1.2, 7.8, 14.0),
    (4900, "1/256"): (8.1, 14.0, 37.0),
}


# Fig. 5's summary statistics over all query bars.
FIG5_SUMMARY = {
    "max_savings": 6.0,
    "min_savings": 0.75,  # amsterdam/boat
    "p90_savings": 3.7,
    "p10_savings": 1.2,
    "geometric_mean": 1.9,
}


# Fig. 6's annotations: (N instances, skew metric S, savings label).
FIG6_ANNOTATIONS = {
    ("dashcam", "bicycle"): {"N": 249, "S": 14.0, "savings": 7.0},
    ("bdd1k", "motor"): {"N": 509, "S": 19.0, "savings": 2.0},
    ("night_street", "person"): {"N": 2078, "S": 4.5, "savings": 3.0},
    ("archie", "car"): {"N": 33546, "S": 1.1, "savings": 1.0},
    ("amsterdam", "boat"): {"N": 588, "S": 1.6, "savings": 0.9},
}
