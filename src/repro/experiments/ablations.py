"""Ablation studies for the design choices DESIGN.md calls out.

The paper makes four designed-in choices beyond the core estimator, each
of which it justifies briefly; these experiments isolate them:

* **policy** (§III-C): Thompson sampling vs Bayes-UCB ("we did not
  observe different results"), vs the greedy point-estimate strawman of
  §III-B, vs epsilon-greedy and uniform reference points;
* **random+** (§III-F): the stratified within-chunk order vs plain
  uniform without-replacement draws;
* **batch** (§III-F): batched Thompson draws (B arg-maxes per iteration,
  commutative state updates) vs the serial Algorithm 1;
* **prior** (§III-C): sensitivity to the Gamma prior (alpha0, beta0) —
  the paper uses (0.1, 1) and reports "no strong dependence".

All four run on the same §IV-B-style workload (the skew-1/32 / 700-frame
cell of Fig. 3, reduced in scale) so their effects are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import TrajectoryBand, band_over_runs, log_spaced_grid
from ..core.policies import (
    BayesUCB,
    EpsilonGreedy,
    GreedyMean,
    ThompsonSampling,
    UniformPolicy,
)
from .reporting import format_table, section, sparkline
from .runner import make_simulation_repository, repeat_histories

__all__ = [
    "AblationConfig",
    "AblationSeries",
    "AblationResult",
    "run_policy_ablation",
    "run_random_plus_ablation",
    "run_batch_ablation",
    "run_prior_ablation",
    "run_adaptive_ablation",
    "run_scoring_ablation",
    "run_crosschunk_ablation",
    "run_noise_ablation",
    "run_stride_ablation",
    "StrideOutcome",
    "FlakyDetector",
    "format_ablation",
    "format_stride_ablation",
]


@dataclass(frozen=True)
class AblationConfig:
    """Shared workload knobs for all four ablations.

    The defaults reproduce a reduced version of the Fig. 3 cell with
    skew 1/32 and 700-frame mean durations — the setting where chunking
    matters but random is not hopeless, so policy differences show.
    """

    total_frames: int = 250_000
    num_instances: int = 400
    mean_duration: float = 700.0
    skew: float = 1 / 32
    num_chunks: int = 64
    runs: int = 5
    max_samples: int = 5000
    seed: int = 0

    @staticmethod
    def quick() -> "AblationConfig":
        return AblationConfig(
            total_frames=100_000, num_instances=200, runs=3, max_samples=2000
        )

    @staticmethod
    def full() -> "AblationConfig":
        return AblationConfig(
            total_frames=16_000_000,
            num_instances=2000,
            num_chunks=128,
            runs=21,
            max_samples=30_000,
        )


@dataclass(frozen=True)
class AblationSeries:
    """One ablation arm: a label and its trajectory band over runs."""

    label: str
    band: TrajectoryBand

    def samples_to(self, target: float) -> int | None:
        """First grid point where the median trajectory reaches ``target``."""
        hits = np.nonzero(self.band.median >= target)[0]
        return int(self.band.grid[hits[0]]) if len(hits) else None


@dataclass(frozen=True)
class AblationResult:
    """Outcome of one ablation: arms on a common grid, plus the workload."""

    name: str
    config: AblationConfig
    series: list[AblationSeries]
    grid: np.ndarray

    def by_label(self) -> dict[str, AblationSeries]:
        return {s.label: s for s in self.series}

    def final_medians(self) -> dict[str, float]:
        return {s.label: s.band.final_median() for s in self.series}


def _run_arms(
    name: str, config: AblationConfig, arms: dict[str, dict]
) -> AblationResult:
    """Run every arm on one shared repository and band the trajectories.

    ``arms`` maps a label to extra :func:`repeat_histories` kwargs (always
    the ``exsample`` method unless the kwargs say otherwise).
    """
    repo = make_simulation_repository(
        config.total_frames,
        config.num_instances,
        config.mean_duration,
        config.skew,
        seed=config.seed,
    )
    grid = log_spaced_grid(config.max_samples, points=40)
    series = []
    for offset, (label, kwargs) in enumerate(arms.items()):
        kwargs = dict(kwargs)
        method = kwargs.pop("method", "exsample")
        histories = repeat_histories(
            repo,
            method,
            config.runs,
            config.max_samples,
            base_seed=config.seed + 131 * (offset + 1),
            **kwargs,
        )
        series.append(AblationSeries(label, band_over_runs(histories, grid)))
    return AblationResult(name=name, config=config, series=series, grid=grid)


def run_policy_ablation(config: AblationConfig | None = None) -> AblationResult:
    """Chunk-selection policy sweep (§III-B/III-C).

    Expectation: Thompson and Bayes-UCB are indistinguishable; greedy is
    no better (and can get stuck); uniform matches the random baseline.
    """
    config = config if config is not None else AblationConfig()
    arms: dict[str, dict] = {
        "thompson": {"policy": ThompsonSampling(), "num_chunks": config.num_chunks},
        "bayes_ucb": {"policy": BayesUCB(), "num_chunks": config.num_chunks},
        "greedy": {"policy": GreedyMean(), "num_chunks": config.num_chunks},
        "eps_greedy": {
            "policy": EpsilonGreedy(epsilon=0.1),
            "num_chunks": config.num_chunks,
        },
        "uniform": {"policy": UniformPolicy(), "num_chunks": config.num_chunks},
        "random": {"method": "random"},
    }
    return _run_arms("policy", config, arms)


def run_random_plus_ablation(config: AblationConfig | None = None) -> AblationResult:
    """Within-chunk order: stratified random+ vs plain uniform (§III-F).

    Both ExSample variants share the Thompson policy; the standalone
    ``random`` / ``random_plus`` baselines isolate the order's effect
    without chunk adaptation.
    """
    config = config if config is not None else AblationConfig()
    arms: dict[str, dict] = {
        "exsample+random+": {
            "num_chunks": config.num_chunks,
            "use_random_plus": True,
        },
        "exsample+uniform": {
            "num_chunks": config.num_chunks,
            "use_random_plus": False,
        },
        "random+": {"method": "random_plus"},
        "random": {"method": "random"},
    }
    return _run_arms("random_plus", config, arms)


def run_batch_ablation(
    config: AblationConfig | None = None,
    batch_sizes: tuple[int, ...] = (1, 8, 64, 256),
) -> AblationResult:
    """Batched sampling (§III-F): B Thompson draws per iteration.

    Larger batches delay feedback — the statistics that inform draw k of
    a batch exclude the outcomes of draws 1..k-1 — so quality can degrade
    slightly as B grows, while staying far above random.
    """
    config = config if config is not None else AblationConfig()
    arms: dict[str, dict] = {
        f"B={b}": {"num_chunks": config.num_chunks, "batch_size": b}
        for b in batch_sizes
    }
    arms["random"] = {"method": "random"}
    return _run_arms("batch", config, arms)


def run_prior_ablation(
    config: AblationConfig | None = None,
    priors: tuple[tuple[float, float], ...] = (
        (0.01, 1.0),
        (0.1, 1.0),
        (1.0, 1.0),
        (0.1, 0.1),
        (0.5, 5.0),
    ),
) -> AblationResult:
    """Gamma prior sweep (§III-C): alpha0/beta0 around the paper's (0.1, 1)."""
    config = config if config is not None else AblationConfig()
    arms: dict[str, dict] = {
        f"a0={a:g},b0={b:g}": {
            "policy": ThompsonSampling(alpha0=a, beta0=b),
            "num_chunks": config.num_chunks,
        }
        for a, b in priors
    }
    return _run_arms("prior", config, arms)


def run_adaptive_ablation(config: AblationConfig | None = None) -> AblationResult:
    """Automated chunking (§VII) vs fixed partitions.

    The adaptive sampler starts from 8 coarse chunks and splits where
    samples concentrate; fixed partitions bracket it from both sides (too
    few chunks cap the exploitable skew, too many pay the Fig. 4
    exploration tax).  The claim: adaptive tracks the best fixed M
    without knowing it ahead of time.
    """
    config = config if config is not None else AblationConfig()
    min_span = max(2, int(config.mean_duration))
    arms: dict[str, dict] = {
        "adaptive": {
            "method": "adaptive",
            "initial_chunks": 8,
            "split_after": 24,
            "min_chunk_frames": min_span,
        },
        "fixed M=8": {"num_chunks": 8},
        f"fixed M={config.num_chunks}": {"num_chunks": config.num_chunks},
        "fixed M=1024": {"num_chunks": 1024},
        "random": {"method": "random"},
    }
    return _run_arms("adaptive", config, arms)


def run_crosschunk_ablation(config: AblationConfig | None = None) -> AblationResult:
    """Footnote-1 cross-chunk N1 adjustment vs Algorithm 1 as printed.

    Long durations on a fine partition put many instances across chunk
    boundaries, which is where the adjustment matters: a d1 sighting from
    a neighbouring chunk should not erase the neighbour's credit.  The
    claim is parity-or-better — the adjustment is a refinement, not a
    regression.
    """
    config = config if config is not None else AblationConfig()
    arms: dict[str, dict] = {
        "algorithm-1": {
            "num_chunks": config.num_chunks,
            "cross_chunk_adjustment": False,
        },
        "cross-chunk": {
            "num_chunks": config.num_chunks,
            "cross_chunk_adjustment": True,
        },
        "random": {"method": "random"},
    }
    return _run_arms("crosschunk", config, arms)


def run_scoring_ablation(config: AblationConfig | None = None) -> AblationResult:
    """Scan-free predictive scoring (§VII) inside the ExSample loop.

    Three within-chunk orders under the same Thompson chunk policy:

    * ``random+`` — the paper's stratified order (the reference);
    * ``proximity`` — the feedback-driven :class:`ProximityScorer`
      (hits attract, their immediate neighbourhoods repel);
    * ``oracle-score`` — the :class:`OccupancyScorer` ceiling (true
      unseen-instance count per frame, still evaluated lazily).

    The claim from §VII: score-guided within-chunk sampling composes
    with the chunk bandit and can only help when the score is
    informative, without ever paying a scan.
    """
    from ..core.chunking import even_count_chunks
    from ..core.sampler import ExSample
    from ..core.scoring import (
        OccupancyScorer,
        ProximityScorer,
        scored_even_count_chunks,
    )
    from ..detection.detector import OracleDetector
    from ..tracking.discriminator import OracleDiscriminator

    config = config if config is not None else AblationConfig()
    repo = make_simulation_repository(
        config.total_frames,
        config.num_instances,
        config.mean_duration,
        config.skew,
        seed=config.seed,
    )
    grid = log_spaced_grid(config.max_samples, points=40)

    def run_arm(make_sampler_and_callback, seed: int):
        rng = np.random.default_rng(seed)
        detector = OracleDetector(repo)
        discriminator = OracleDiscriminator()
        sampler, callback = make_sampler_and_callback(rng, detector, discriminator)
        sampler.run(max_samples=config.max_samples, callback=callback)
        return sampler.history

    def stratified(rng, detector, discriminator):
        chunks = even_count_chunks(repo.total_frames, config.num_chunks, rng)
        return ExSample(chunks, detector, discriminator, rng=rng), None

    def proximity(rng, detector, discriminator):
        scorer = ProximityScorer(
            attract_bandwidth=repo.total_frames / config.num_chunks,
            repel_bandwidth=config.mean_duration,
        )
        chunks = scored_even_count_chunks(
            repo.total_frames, config.num_chunks, rng, scorer
        )
        sampler = ExSample(chunks, detector, discriminator, rng=rng)
        return sampler, lambda rec: scorer.record(rec.frame_index, rec.d0)

    def oracle_score(rng, detector, discriminator):
        scorer = OccupancyScorer(repo.instances)
        chunks = scored_even_count_chunks(
            repo.total_frames, config.num_chunks, rng, scorer
        )
        sampler = ExSample(chunks, detector, discriminator, rng=rng)
        known: set[int] = set()

        def feedback(rec) -> None:
            if rec.d0 > 0:
                for inst_id in discriminator.distinct_true_instances() - known:
                    known.add(inst_id)
                    scorer.mark_found(inst_id)

        return sampler, feedback

    arms = {
        "random+": stratified,
        "proximity": proximity,
        "oracle-score": oracle_score,
    }
    series = []
    for offset, (label, factory) in enumerate(arms.items()):
        histories = [
            run_arm(factory, seed=config.seed + 131 * (offset + 1) + 1000 * k)
            for k in range(config.runs)
        ]
        series.append(AblationSeries(label, band_over_runs(histories, grid)))
    return AblationResult(name="scoring", config=config, series=series, grid=grid)


@dataclass(frozen=True)
class StrideOutcome:
    """One (stride, duration) cell of the §II-B stride experiment."""

    stride: int
    mean_duration: float
    frames_processed: int
    recall_after_full_pass: float
    redundant_fraction: float  # occupied processed frames yielding nothing new

    @property
    def misses_objects(self) -> bool:
        """True when a full strided pass cannot reach full recall —
        §II-B's "objects visible for shorter than the sampling rate"."""
        return self.recall_after_full_pass < 1.0


def run_stride_ablation(
    config: AblationConfig | None = None,
    strides: tuple[int, ...] = (1, 30, 300, 3000),
    durations: tuple[float, ...] = (100.0, 2000.0),
) -> list[StrideOutcome]:
    """§II-B's naive-execution failure modes, made measurable.

    "If objects appear in the video for much longer than the sampling
    rate, we may repeatedly compute detections of the same object.
    Similarly, if objects appear for shorter than the sampling rate, we
    may completely miss some objects."  One full strided pass per
    (stride, duration) cell measures both: the recall ceiling (misses)
    and the fraction of processed frames wasted on already-seen objects
    (redundancy).  The optimal stride depends on the unknown durations —
    which is exactly why a fixed stride cannot be right across queries,
    and why ExSample adapts instead.
    """
    from ..baselines.sequential import SequentialScanSampler
    from ..detection.detector import OracleDetector
    from ..tracking.discriminator import OracleDiscriminator

    config = config if config is not None else AblationConfig()
    outcomes = []
    for duration in durations:
        repo = make_simulation_repository(
            config.total_frames,
            config.num_instances,
            duration,
            config.skew,
            seed=config.seed,
        )
        for stride in strides:
            detector = OracleDetector(repo)
            discriminator = OracleDiscriminator()
            sampler = SequentialScanSampler(
                repo, detector, discriminator, stride=stride, charge_decode=False
            )
            history = sampler.run()  # one full pass
            d0_per_frame = np.diff(np.concatenate([[0], history.results]))
            processed = len(history)
            # redundant = the frame showed at least one object yet every
            # detection matched an already-known result ("repeatedly
            # compute detections of the same object", §II-B).  Frames
            # showing nothing are dead weight for any method and are
            # excluded so the metric isolates the re-detection waste.
            occupied = np.array(
                [
                    bool(repo.instances.visible_in(int(f)))
                    for f in history.frame_indices
                ]
            )
            redundant = int((occupied & (d0_per_frame == 0)).sum())
            occupied_total = int(occupied.sum())
            outcomes.append(
                StrideOutcome(
                    stride=stride,
                    mean_duration=duration,
                    frames_processed=processed,
                    recall_after_full_pass=(
                        history.results[-1] / config.num_instances
                    ),
                    redundant_fraction=(
                        redundant / occupied_total if occupied_total else 0.0
                    ),
                )
            )
    return outcomes


def format_stride_ablation(outcomes: list[StrideOutcome]) -> str:
    lines = [section("Ablation — sequential stride (§II-B failure modes)")]
    rows = [
        [
            f"{o.mean_duration:.0f}",
            o.stride,
            o.frames_processed,
            f"{o.recall_after_full_pass:.2f}",
            f"{o.redundant_fraction:.2f}",
        ]
        for o in outcomes
    ]
    lines.append(
        format_table(
            ["duration", "stride", "frames (full pass)", "recall ceiling", "redundant frac"],
            rows,
        )
    )
    lines.append(
        "stride >> duration misses objects outright; stride << duration "
        "burns most frames re-seeing known objects — the right stride "
        "depends on durations no user knows in advance."
    )
    return "\n".join(lines)


class FlakyDetector:
    """Wraps a detector, dropping each detection with a fixed miss rate.

    Misses are deterministic per (frame, instance) — a deterministic CNN
    misses the *same* object in the *same* frame every time — which is
    the property the discriminator's caching relies on.  Unlike
    :class:`~repro.detection.detector.SimulatedDetector`, this works on
    interval-only ground truth (no boxes), so the big §IV-style
    simulations can be made noisy too.
    """

    def __init__(self, inner, miss_rate: float, seed: int = 0):
        if not 0.0 <= miss_rate < 1.0:
            raise ValueError("miss_rate must lie in [0, 1)")
        self._inner = inner
        self._miss_rate = miss_rate
        self._seed = seed

    def detect(self, frame_index: int):
        detections = self._inner.detect(frame_index)
        if self._miss_rate == 0.0:
            return detections
        kept = []
        for det in detections:
            key = det.true_instance_id if det.true_instance_id is not None else -1
            rng = np.random.default_rng((self._seed, 0xF1A4E, frame_index, key))
            if rng.random() >= self._miss_rate:
                kept.append(det)
        return kept


def run_noise_ablation(
    config: AblationConfig | None = None,
    miss_rates: tuple[float, ...] = (0.0, 0.25, 0.5),
) -> AblationResult:
    """Robustness to detector noise: ExSample vs random per miss rate.

    The paper treats the detector as a black box and never conditions on
    its accuracy; this ablation checks the implicit claim that the
    *advantage over random* survives a flaky detector.  Misses slow both
    methods down (objects need more visits to be caught), but they feed
    the same N1/n signal, so the relative ordering should persist.
    """
    from ..core.chunking import even_count_chunks
    from ..core.sampler import ExSample
    from ..detection.detector import OracleDetector
    from ..tracking.discriminator import OracleDiscriminator

    config = config if config is not None else AblationConfig()
    repo = make_simulation_repository(
        config.total_frames,
        config.num_instances,
        config.mean_duration,
        config.skew,
        seed=config.seed,
    )
    grid = log_spaced_grid(config.max_samples, points=40)

    def run_once(miss: float, method: str, seed: int):
        rng = np.random.default_rng(seed)
        detector = FlakyDetector(OracleDetector(repo), miss, seed=config.seed)
        discriminator = OracleDiscriminator()
        if method == "exsample":
            chunks = even_count_chunks(repo.total_frames, config.num_chunks, rng)
            sampler = ExSample(chunks, detector, discriminator, rng=rng)
            sampler.run(max_samples=config.max_samples)
            return sampler.history
        order = rng.permutation(repo.total_frames)[: config.max_samples]
        from ..core.sampler import SamplingHistory, process_frame

        history = SamplingHistory()
        for frame in order:
            d0, _d1 = process_frame(int(frame), detector, discriminator)
            history.append(int(frame), d0, discriminator.result_count())
        return history

    series = []
    for offset, miss in enumerate(miss_rates):
        for method in ("exsample", "random"):
            histories = [
                run_once(miss, method, seed=config.seed + 131 * (offset + 1) + 1000 * k)
                for k in range(config.runs)
            ]
            series.append(
                AblationSeries(
                    f"{method}@miss={miss:g}", band_over_runs(histories, grid)
                )
            )
    return AblationResult(name="noise", config=config, series=series, grid=grid)


def format_ablation(result: AblationResult) -> str:
    """Text report: samples-to-{25%,50%} recall and final counts per arm."""
    config = result.config
    lines = [section(f"Ablation — {result.name}")]
    lines.append(
        f"N={config.num_instances} instances, {config.total_frames} frames, "
        f"skew {config.skew:g}, duration {config.mean_duration:.0f}, "
        f"M={config.num_chunks} chunks, {config.runs} runs, "
        f"budget {config.max_samples} samples"
    )
    quarter = config.num_instances // 4
    half = config.num_instances // 2
    rows = []
    for s in result.series:
        rows.append(
            [
                s.label,
                s.samples_to(quarter),
                s.samples_to(half),
                s.band.final_median(),
            ]
        )
    lines.append(
        format_table(
            ["arm", f"samples to {quarter}", f"samples to {half}", "final median"],
            rows,
            title="median across runs:",
        )
    )
    for s in result.series:
        lines.append(f"  {s.label:<18s} {sparkline(s.band.median)}")
    return "\n".join(lines)
