"""Reproduction harness: one module per table/figure of the evaluation.

Run from the command line::

    python -m repro.experiments fig2          # scaled-down defaults
    python -m repro.experiments table1 --quick
    python -m repro.experiments fig3 --full   # the paper's exact scale
    python -m repro.experiments all

or call ``run_*``/``format_*`` pairs programmatically.
"""

from .evaluation import EvalConfig, QueryEvaluation, evaluate_all, evaluate_query
from .fig2 import Fig2Config, Fig2Result, format_fig2, run_fig2
from .fig3 import Fig3Config, Fig3Result, format_fig3, run_fig3
from .fig4 import Fig4Config, Fig4Result, format_fig4, run_fig4
from .fig5 import Fig5Result, format_fig5, run_fig5
from .fig6 import Fig6Result, format_fig6, run_fig6
from .table1 import Table1Result, format_table1, run_table1

__all__ = [
    "EvalConfig",
    "QueryEvaluation",
    "evaluate_all",
    "evaluate_query",
    "Fig2Config",
    "Fig2Result",
    "format_fig2",
    "run_fig2",
    "Fig3Config",
    "Fig3Result",
    "format_fig3",
    "run_fig3",
    "Fig4Config",
    "Fig4Result",
    "format_fig4",
    "run_fig4",
    "Fig5Result",
    "format_fig5",
    "run_fig5",
    "Fig6Result",
    "format_fig6",
    "run_fig6",
    "Table1Result",
    "format_table1",
    "run_table1",
]
