"""Reproduction harness: one module per table/figure of the evaluation.

Run from the command line::

    python -m repro.experiments fig2          # scaled-down defaults
    python -m repro.experiments table1 --quick
    python -m repro.experiments fig3 --full   # the paper's exact scale
    python -m repro.experiments all

or call ``run_*``/``format_*`` pairs programmatically.
"""

# The figure/table modules need numpy (and scipy); the package itself
# must import without them so numpy-free deployments can still reach the
# persistence/reporting utilities and the CLI.  Attribute access is
# resolved lazily (PEP 562): the harness modules load on first use and a
# missing numpy surfaces at that point, as a clear ModuleNotFoundError.
import importlib

_LAZY = {
    "EvalConfig": "evaluation",
    "QueryEvaluation": "evaluation",
    "evaluate_all": "evaluation",
    "evaluate_query": "evaluation",
    "Fig2Config": "fig2",
    "Fig2Result": "fig2",
    "format_fig2": "fig2",
    "run_fig2": "fig2",
    "Fig3Config": "fig3",
    "Fig3Result": "fig3",
    "format_fig3": "fig3",
    "run_fig3": "fig3",
    "Fig4Config": "fig4",
    "Fig4Result": "fig4",
    "format_fig4": "fig4",
    "run_fig4": "fig4",
    "Fig5Result": "fig5",
    "format_fig5": "fig5",
    "run_fig5": "fig5",
    "Fig6Result": "fig6",
    "format_fig6": "fig6",
    "run_fig6": "fig6",
    "Table1Result": "table1",
    "format_table1": "table1",
    "run_table1": "table1",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache: subsequent accesses skip __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "EvalConfig",
    "QueryEvaluation",
    "evaluate_all",
    "evaluate_query",
    "Fig2Config",
    "Fig2Result",
    "format_fig2",
    "run_fig2",
    "Fig3Config",
    "Fig3Result",
    "format_fig3",
    "run_fig3",
    "Fig4Config",
    "Fig4Result",
    "format_fig4",
    "run_fig4",
    "Fig5Result",
    "format_fig5",
    "run_fig5",
    "Fig6Result",
    "format_fig6",
    "run_fig6",
    "Table1Result",
    "format_table1",
    "run_table1",
]
