"""Fig. 6: instance skew and savings for representative queries.

Five queries spanning the savings spectrum — dashcam/bicycle (extreme
skew, biggest savings), bdd1k/motor (high skew but 1000 chunks dampen the
gain), night-street/person (moderate skew, solid gain), archie/car and
amsterdam/boat (no skew, parity with random).  For each, the figure shows
the per-chunk instance histogram, highlights the minimum chunk set
covering half the instances, and annotates N, the skew metric S, and the
savings from Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.skew import SkewSummary
from ..video.datasets import build_dataset, scaled_chunk_frames
from .evaluation import EvalConfig, evaluate_query
from .paper_reference import FIG6_ANNOTATIONS
from .reporting import format_table, section, sparkline

__all__ = ["REPRESENTATIVE_QUERIES", "Fig6Panel", "Fig6Result", "run_fig6", "format_fig6"]

REPRESENTATIVE_QUERIES: tuple[tuple[str, str], ...] = (
    ("dashcam", "bicycle"),
    ("bdd1k", "motor"),
    ("night_street", "person"),
    ("archie", "car"),
    ("amsterdam", "boat"),
)


@dataclass(frozen=True)
class Fig6Panel:
    skew: SkewSummary
    savings: float | None  # ExSample vs random at recall 0.5 (mid panel)
    paper_n: int | None
    paper_s: float | None
    paper_savings: float | None


@dataclass(frozen=True)
class Fig6Result:
    config: EvalConfig
    panels: list[Fig6Panel]


def _chunk_edges(repo, dataset: str, scale: float) -> np.ndarray:
    chunk_frames = scaled_chunk_frames(dataset, scale)
    if chunk_frames is None:
        edges = [c.start_frame for c in repo.clips] + [repo.total_frames]
        return np.asarray(edges, dtype=np.int64)
    return np.arange(0, repo.total_frames + chunk_frames, chunk_frames).clip(
        max=repo.total_frames
    )


def run_fig6(config: EvalConfig | None = None) -> Fig6Result:
    config = config if config is not None else EvalConfig()
    panels = []
    for dataset, category in REPRESENTATIVE_QUERIES:
        repo = build_dataset(
            dataset, categories=[category], seed=config.seed, scale=config.scale
        )
        edges = np.unique(_chunk_edges(repo, dataset, config.scale))
        summary = SkewSummary.compute(
            dataset, category, repo.instances_of(category), edges
        )
        evaluation = evaluate_query(dataset, category, config)
        reference = FIG6_ANNOTATIONS.get((dataset, category), {})
        panels.append(
            Fig6Panel(
                skew=summary,
                savings=evaluation.savings(0.5),
                paper_n=reference.get("N"),
                paper_s=reference.get("S"),
                paper_savings=reference.get("savings"),
            )
        )
    return Fig6Result(config=config, panels=panels)


def format_fig6(result: Fig6Result) -> str:
    lines = [section("Fig. 6 — instance skew and savings, representative queries")]
    rows = []
    for p in result.panels:
        rows.append(
            [
                f"{p.skew.dataset}/{p.skew.category}",
                p.skew.total_instances,
                p.paper_n,
                p.skew.skew,
                p.paper_s,
                p.savings,
                p.paper_savings,
            ]
        )
    lines.append(
        format_table(
            ["query", "N", "paper N", "S", "paper S", "savings", "paper"],
            rows,
            title=f"(measured at scale={result.config.scale}; N scales with it)",
        )
    )
    lines.append("\nper-chunk instance histograms:")
    for p in result.panels:
        lines.append(
            f"  {p.skew.dataset}/{p.skew.category:<14s} "
            f"{sparkline(p.skew.counts, width=60)}"
        )
    return "\n".join(lines)
