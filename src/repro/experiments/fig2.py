"""Fig. 2 + §III-D: empirical validation of the estimator and its belief.

The paper simulates 1000 instances with heavily skewed lognormal ``p_i``,
samples frames, and compares the histogram of the true R(n+1) given the
observed (N1, n) against the Gamma(N1 + 0.1, n + 1) belief of Eq. III.4.
The reproduction generates the same trajectories exactly (via the
first/second-appearance representation — see
:func:`repro.video.synthetic.first_second_appearance`) and reports, per
checkpoint n:

* the mean true R(n+1) vs the mean point estimate N1/n (relative bias),
  next to the Eq. III.2 bias bounds;
* the empirical Var[N1/n] next to the Eq. III.3 bound;
* belief calibration: the fraction of runs whose true R lands inside the
  central 50% and 90% intervals of the Gamma belief (the quantitative
  version of "the curve fits the histograms");

plus §III-D's robustness check: with *correlated* instances (co-occurring
groups, violating the independence assumption) the nominal 95% interval
should cover only ~80% of the time, as the paper observed on BDD-MOT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from ..analysis.theory import bias_bounds, variance_bound
from ..core.belief import DEFAULT_ALPHA0, DEFAULT_BETA0
from ..video.synthetic import first_second_appearance, lognormal_probabilities
from .reporting import format_table, section

__all__ = ["Fig2Config", "CheckpointStats", "Fig2Result", "run_fig2", "format_fig2"]


@dataclass(frozen=True)
class Fig2Config:
    """Scaled-down defaults; ``full()`` matches the paper's scale."""

    num_instances: int = 1000
    runs: int = 400
    checkpoints: tuple[int, ...] = (100, 1000, 14000, 120000, 180000)
    mean_p: float = 3e-3
    sigma_log: float = 1.75
    group_size: int = 5  # for the correlated variant
    seed: int = 0

    @staticmethod
    def full() -> "Fig2Config":
        return Fig2Config(runs=10000)

    @staticmethod
    def quick() -> "Fig2Config":
        return Fig2Config(runs=120, checkpoints=(100, 1000, 14000, 60000))


@dataclass(frozen=True)
class CheckpointStats:
    """Aggregates over runs at one sample count n."""

    n: int
    mean_true_r: float
    mean_estimate: float
    relative_bias: float
    bias_bound_maxp: float
    bias_bound_moment: float
    empirical_variance: float
    variance_bound: float
    coverage_50: float
    coverage_90: float
    mean_n1: float


@dataclass(frozen=True)
class Fig2Result:
    config: Fig2Config
    p_summary: dict[str, float]
    checkpoints: list[CheckpointStats]
    independent_coverage_95: float
    correlated_coverage_95: float


def _trajectories(
    p: np.ndarray, checkpoints: np.ndarray, runs: int, rng: np.random.Generator,
    groups: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per (run, checkpoint): N1(n) and true R(n+1).

    ``groups`` optionally maps each instance to a co-occurrence group;
    members of a group share their appearance times (perfect positive
    correlation), which is the §III-D dependence stress test.
    """
    if groups is None:
        p_eff = p
    else:
        # each group co-occurs as one shared event with the group's max p;
        # every member's *effective* per-frame probability is that shared
        # value, and it is what both the draws and the true R must use.
        num_groups = int(groups.max()) + 1
        group_p = np.zeros(num_groups)
        np.maximum.at(group_p, groups, p)
        p_eff = group_p[groups]

    n1 = np.zeros((runs, len(checkpoints)), dtype=np.float64)
    true_r = np.zeros((runs, len(checkpoints)), dtype=np.float64)
    for run in range(runs):
        if groups is None:
            t1, t2 = first_second_appearance(p_eff, rng)
        else:
            g1, g2 = first_second_appearance(group_p, rng)
            t1, t2 = g1[groups], g2[groups]
        for col, n in enumerate(checkpoints):
            seen_once = (t1 <= n) & (t2 > n)
            unseen = t1 > n
            n1[run, col] = seen_once.sum()
            true_r[run, col] = p_eff[unseen].sum()
    return n1, true_r


def run_fig2(config: Fig2Config | None = None) -> Fig2Result:
    config = config if config is not None else Fig2Config()
    rng = np.random.default_rng(config.seed)
    p = lognormal_probabilities(
        config.num_instances, rng, mean_p=config.mean_p, sigma_log=config.sigma_log
    )
    checkpoints = np.asarray(config.checkpoints, dtype=np.int64)

    n1, true_r = _trajectories(p, checkpoints, config.runs, rng)

    stats: list[CheckpointStats] = []
    a0, b0 = DEFAULT_ALPHA0, DEFAULT_BETA0
    coverage_95_hits = 0
    coverage_95_total = 0
    for col, n in enumerate(checkpoints):
        estimates = n1[:, col] / n
        alphas = n1[:, col] + a0
        scale = 1.0 / (n + b0)
        lo50 = _scipy_stats.gamma.ppf(0.25, a=alphas, scale=scale)
        hi50 = _scipy_stats.gamma.ppf(0.75, a=alphas, scale=scale)
        lo90 = _scipy_stats.gamma.ppf(0.05, a=alphas, scale=scale)
        hi90 = _scipy_stats.gamma.ppf(0.95, a=alphas, scale=scale)
        r = true_r[:, col]
        cov50 = float(np.mean((r >= lo50) & (r <= hi50)))
        cov90 = float(np.mean((r >= lo90) & (r <= hi90)))

        lo95 = _scipy_stats.gamma.ppf(0.025, a=alphas, scale=scale)
        hi95 = _scipy_stats.gamma.ppf(0.975, a=alphas, scale=scale)
        coverage_95_hits += int(np.sum((r >= lo95) & (r <= hi95)))
        coverage_95_total += len(r)

        mean_r = float(r.mean())
        mean_est = float(estimates.mean())
        max_p_bound, moment_bound = bias_bounds(p, int(n))
        stats.append(
            CheckpointStats(
                n=int(n),
                mean_true_r=mean_r,
                mean_estimate=mean_est,
                relative_bias=(mean_est - mean_r) / mean_est if mean_est > 0 else 0.0,
                bias_bound_maxp=max_p_bound,
                bias_bound_moment=moment_bound,
                empirical_variance=float(estimates.var()),
                variance_bound=variance_bound(p, int(n)),
                coverage_50=cov50,
                coverage_90=cov90,
                mean_n1=float(n1[:, col].mean()),
            )
        )

    independent_cov95 = coverage_95_hits / max(coverage_95_total, 1)

    # correlated variant: co-occurring groups break independence; the
    # belief's nominal 95% interval over-covers less (paper saw ~80%).
    groups = np.arange(config.num_instances) // config.group_size
    rng_corr = np.random.default_rng(config.seed + 1)
    n1_c, r_c = _trajectories(p, checkpoints, config.runs, rng_corr, groups=groups)
    hits = 0
    total = 0
    for col, n in enumerate(checkpoints):
        alphas = n1_c[:, col] + a0
        scale = 1.0 / (n + b0)
        lo = _scipy_stats.gamma.ppf(0.025, a=alphas, scale=scale)
        hi = _scipy_stats.gamma.ppf(0.975, a=alphas, scale=scale)
        hits += int(np.sum((r_c[:, col] >= lo) & (r_c[:, col] <= hi)))
        total += r_c.shape[0]
    correlated_cov95 = hits / max(total, 1)

    return Fig2Result(
        config=config,
        p_summary={
            "min_p": float(p.min()),
            "max_p": float(p.max()),
            "mean_p": float(p.mean()),
            "std_p": float(p.std()),
        },
        checkpoints=stats,
        independent_coverage_95=independent_cov95,
        correlated_coverage_95=correlated_cov95,
    )


def format_fig2(result: Fig2Result) -> str:
    lines = [section("Fig. 2 / §III-D — estimator validation")]
    ps = result.p_summary
    lines.append(
        f"p_i: min={ps['min_p']:.2g} max={ps['max_p']:.2g} "
        f"mu_p={ps['mean_p']:.2g} sigma_p={ps['std_p']:.2g} "
        f"(paper: min~3e-6, max~0.15, mu~3e-3, sigma~8e-3)"
    )
    rows = []
    for cp in result.checkpoints:
        rows.append(
            [
                cp.n,
                cp.mean_n1,
                cp.mean_true_r,
                cp.mean_estimate,
                cp.relative_bias,
                cp.bias_bound_maxp,
                cp.empirical_variance,
                cp.variance_bound,
                cp.coverage_50,
                cp.coverage_90,
            ]
        )
    lines.append(
        format_table(
            [
                "n", "E[N1]", "E[R(n+1)]", "E[N1/n]", "rel.bias",
                "bias bound", "Var[N1/n]", "var bound", "cov50", "cov90",
            ],
            rows,
        )
    )
    lines.append(
        f"belief 95% coverage: independent={result.independent_coverage_95:.2f} "
        f"(nominal 0.95), correlated={result.correlated_coverage_95:.2f} "
        f"(paper observed ~0.80 on BDD-MOT)"
    )
    return "\n".join(lines)
