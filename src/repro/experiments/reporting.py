"""Plain-text reporting: ASCII tables and series for the experiment CLI.

The original figures are plots; a library without a display reproduces
them as aligned text tables and coarse trajectories that carry the same
information (who wins, by what factor, where the crossovers are), printed
both by ``python -m repro.experiments`` and by the benchmark suite.
"""

from __future__ import annotations

from typing import Sequence

from ..core import backend

__all__ = ["format_table", "format_ratio", "sparkline", "section"]

# numpy scalar types participate in the numeric-alignment and float
# formatting checks only when numpy is installed
_INTEGRAL: tuple[type, ...] = (int,)
_FLOATING: tuple[type, ...] = (float,)
if backend.np is not None:
    _INTEGRAL = (int, backend.np.integer)
    _FLOATING = (float, backend.np.floating)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table (numbers right-aligned)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for col, text in enumerate(row):
            widths[col] = max(widths[col], len(text))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for original, row in zip(rows, cells):
        padded = []
        for col, text in enumerate(row):
            if isinstance(original[col], _INTEGRAL + _FLOATING):
                padded.append(text.rjust(widths[col]))
            else:
                padded.append(text.ljust(widths[col]))
        lines.append("  ".join(padded))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, _FLOATING):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 100:
            return f"{value:.0f}"
        if magnitude >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def format_ratio(value: float | None) -> str:
    """Savings labels like the figures print them: '3.9x', '0.79x', '-'."""
    if value is None:
        return "-"
    if value >= 10:
        return f"{value:.0f}x"
    return f"{value:.2g}x"


_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A coarse unicode trajectory for results-vs-samples curves."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        step = (len(vals) - 1) / (width - 1) if width > 1 else 0.0
        vals = [vals[round(i * step)] for i in range(width)]
    top = max(vals)
    if top <= 0:
        return _BLOCKS[0] * len(vals)
    span = len(_BLOCKS) - 1
    return "".join(
        _BLOCKS[int(round(min(max(v / top * span, 0.0), span)))] for v in vals
    )


def section(title: str) -> str:
    bar = "=" * max(8, len(title))
    return f"\n{bar}\n{title}\n{bar}"
