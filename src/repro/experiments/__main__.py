"""CLI for regenerating the paper's tables and figures.

Examples::

    python -m repro.experiments fig3
    python -m repro.experiments table1 --quick
    python -m repro.experiments fig2 --full --seed 7
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from .ablations import (
    AblationConfig,
    format_ablation,
    run_adaptive_ablation,
    run_batch_ablation,
    run_crosschunk_ablation,
    run_policy_ablation,
    run_prior_ablation,
    format_stride_ablation,
    run_noise_ablation,
    run_random_plus_ablation,
    run_stride_ablation,
    run_scoring_ablation,
)
from .evaluation import EvalConfig
from .fig2 import Fig2Config, format_fig2, run_fig2
from .fig3 import Fig3Config, format_fig3, run_fig3
from .fig4 import Fig4Config, format_fig4, run_fig4
from .fig5 import format_fig5, run_fig5
from .fig6 import format_fig6, run_fig6
from .table1 import format_table1, run_table1

EXPERIMENTS = ("fig2", "fig3", "fig4", "fig5", "fig6", "table1")
ABLATIONS = {
    "ablation-policy": run_policy_ablation,
    "ablation-randomplus": run_random_plus_ablation,
    "ablation-batch": run_batch_ablation,
    "ablation-prior": run_prior_ablation,
    "ablation-adaptive": run_adaptive_ablation,
    "ablation-scoring": run_scoring_ablation,
    "ablation-crosschunk": run_crosschunk_ablation,
    "ablation-noise": run_noise_ablation,
}
SPECIAL_ABLATIONS = {
    "ablation-stride": (run_stride_ablation, format_stride_ablation),
}


def _config_for(name: str, mode: str, seed: int):
    if name == "fig2":
        base = {"quick": Fig2Config.quick, "full": Fig2Config.full, "default": Fig2Config}[mode]()
    elif name == "fig3":
        base = {"quick": Fig3Config.quick, "full": Fig3Config.full, "default": Fig3Config}[mode]()
    elif name == "fig4":
        base = {"quick": Fig4Config.quick, "full": Fig4Config.full, "default": Fig4Config}[mode]()
    elif name in ABLATIONS or name in SPECIAL_ABLATIONS:
        base = {"quick": AblationConfig.quick, "full": AblationConfig.full, "default": AblationConfig}[mode]()
    else:  # table1, fig5, fig6 share EvalConfig
        base = {"quick": EvalConfig.quick, "full": EvalConfig.full, "default": EvalConfig}[mode]()
    return dataclasses.replace(base, seed=seed)


_RUNNERS = {
    "fig2": (run_fig2, format_fig2),
    "fig3": (run_fig3, format_fig3),
    "fig4": (run_fig4, format_fig4),
    "fig5": (run_fig5, format_fig5),
    "fig6": (run_fig6, format_fig6),
    "table1": (run_table1, format_table1),
}


def run_one(name: str, mode: str, seed: int, json_dir: str | None = None) -> str:
    config = _config_for(name, mode, seed)
    if name in _RUNNERS:
        run, fmt = _RUNNERS[name]
    elif name in ABLATIONS:
        run, fmt = ABLATIONS[name], format_ablation
    elif name in SPECIAL_ABLATIONS:
        run, fmt = SPECIAL_ABLATIONS[name]
    else:
        raise ValueError(f"unknown experiment {name!r}")
    result = run(config)
    if json_dir is not None:
        from .persistence import save_json

        save_json(result, f"{json_dir}/{name}.json", name=name)
    return fmt(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the ExSample paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + tuple(ABLATIONS) + tuple(SPECIAL_ABLATIONS) + ("all", "ablations"),
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="smallest scale, seconds")
    mode.add_argument("--full", action="store_true", help="the paper's exact scale")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also save each result as DIR/<experiment>.json",
    )
    args = parser.parse_args(argv)

    mode_name = "quick" if args.quick else "full" if args.full else "default"
    if args.experiment == "all":
        names: tuple[str, ...] = EXPERIMENTS
    elif args.experiment == "ablations":
        names = tuple(ABLATIONS) + tuple(SPECIAL_ABLATIONS)
    else:
        names = (args.experiment,)
    for name in names:
        start = time.perf_counter()
        print(run_one(name, mode_name, args.seed, json_dir=args.json))
        print(f"\n[{name} took {time.perf_counter() - start:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
