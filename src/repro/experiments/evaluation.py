"""Shared query-evaluation sweep behind Table I, Fig. 5 and Fig. 6.

One pass over the 43 (dataset, category) queries of the evaluation runs
ExSample and the random baseline to the requested recall levels and
records frames-to-recall per run.  Table I converts the ExSample medians
to full-scale time and compares against the proxy scan; Fig. 5 turns the
per-level ratios into savings bars; Fig. 6 adds skew summaries.

Scaling: datasets are built at a configurable ``scale`` (§ DESIGN.md);
frames-to-recall measured at scale s estimate full-scale counts as
``frames / s`` because per-instance probabilities scale as 1/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..detection.costmodel import ThroughputModel
from ..video.datasets import (
    all_queries,
    build_dataset,
    scaled_chunk_frames,
)
from .runner import run_history

__all__ = ["EvalConfig", "QueryEvaluation", "evaluate_query", "evaluate_all"]


@dataclass(frozen=True)
class EvalConfig:
    scale: float = 0.05
    runs: int = 3
    recall_levels: tuple[float, ...] = (0.1, 0.5, 0.9)
    seed: int = 0
    throughput: ThroughputModel = field(default_factory=ThroughputModel)
    datasets: tuple[str, ...] | None = None  # None = all six

    @staticmethod
    def quick() -> "EvalConfig":
        return EvalConfig(scale=0.03, runs=2)

    @staticmethod
    def full() -> "EvalConfig":
        return EvalConfig(scale=1.0, runs=5)


@dataclass(frozen=True)
class QueryEvaluation:
    """Per-query outcome: median frames-to-recall for both methods."""

    dataset: str
    category: str
    scale: float
    ground_truth_instances: int
    num_chunks: int
    # recall level -> median frames over runs (at the evaluation scale);
    # None when fewer than half the runs reached the level in budget.
    exsample_frames: dict[float, float | None]
    random_frames: dict[float, float | None]

    def savings(self, level: float) -> float | None:
        ex = self.exsample_frames.get(level)
        rnd = self.random_frames.get(level)
        if ex is None or rnd is None or ex == 0:
            return None
        return rnd / ex

    def full_scale_frames(self, level: float) -> float | None:
        ex = self.exsample_frames.get(level)
        if ex is None:
            return None
        return ex / self.scale

    def full_scale_seconds(self, level: float, throughput: ThroughputModel) -> float | None:
        frames = self.full_scale_frames(level)
        if frames is None:
            return None
        return throughput.detection_seconds(int(round(frames)))


def evaluate_query(
    dataset: str,
    category: str,
    config: EvalConfig,
) -> QueryEvaluation:
    """Run both methods on one query and summarize frames-to-recall."""
    repo = build_dataset(
        dataset, categories=[category], seed=config.seed, scale=config.scale
    )
    chunk_frames = scaled_chunk_frames(dataset, config.scale)
    instances = len(repo.instances_of(category))
    targets = {
        level: max(1, math.ceil(level * instances))
        for level in config.recall_levels
    }
    max_target = max(targets.values())
    budget = repo.total_frames  # without replacement: exhaustion is the cap

    per_method: dict[str, dict[float, float | None]] = {}
    for method in ("exsample", "random"):
        frames_at: dict[float, list[float | None]] = {
            level: [] for level in config.recall_levels
        }
        for run in range(config.runs):
            history = run_history(
                repo,
                method,
                max_samples=budget,
                seed=config.seed + 101 * run + (0 if method == "exsample" else 7),
                chunk_frames=chunk_frames,
                result_limit=max_target,
                category=category,
            )
            for level, target in targets.items():
                frames_at[level].append(history.samples_to_reach(target))
        medians: dict[float, float | None] = {}
        for level, values in frames_at.items():
            reached = [v for v in values if v is not None]
            if len(reached) * 2 < len(values):
                medians[level] = None
            else:
                censored = [float(v) if v is not None else math.inf for v in values]
                medians[level] = float(np.median(censored))
        per_method[method] = medians

    if chunk_frames is None:
        num_chunks = repo.num_clips
    else:
        num_chunks = -(-repo.total_frames // chunk_frames)
    return QueryEvaluation(
        dataset=dataset,
        category=category,
        scale=config.scale,
        ground_truth_instances=instances,
        num_chunks=num_chunks,
        exsample_frames=per_method["exsample"],
        random_frames=per_method["random"],
    )


def evaluate_all(config: EvalConfig | None = None) -> list[QueryEvaluation]:
    """Evaluate every (dataset, category) query of the paper's Table I."""
    config = config if config is not None else EvalConfig()
    wanted = set(config.datasets) if config.datasets is not None else None
    out = []
    for dataset, category in all_queries():
        if wanted is not None and dataset not in wanted:
            continue
        out.append(evaluate_query(dataset, category, config))
    return out
