"""Persisting experiment results: JSON for structures, CSV for tables.

The experiment modules return frozen dataclasses full of numpy arrays —
convenient in-process, useless to a plotting notebook or a CI artifact
store.  This module provides the bridge:

* :func:`to_jsonable` — recursively converts dataclasses, numpy arrays
  and scalars, mappings, and sequences into plain JSON-compatible data
  (arrays become lists, ``nan``/``inf`` become ``None`` — JSON has no
  spelling for them and downstream tools choke on the common
  ``NaN``-literal extension);
* :func:`save_json` / :func:`load_json` — write/read one result, with a
  small metadata envelope (experiment name, package version) so stored
  artifacts are self-describing;
* :func:`save_csv` — flat tables (Table I, Fig. 5 rows) for spreadsheets.

The experiment CLI exposes this via ``--json DIR``.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
import pathlib
from typing import Any, Mapping, Sequence

from ..core import backend

__all__ = ["to_jsonable", "save_json", "load_json", "save_csv"]

_ENVELOPE_KEY = "__repro__"


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-compatible plain data."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    np = backend.np
    if np is not None:
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            value = float(obj)
            return value if math.isfinite(value) else None
        if isinstance(obj, np.ndarray):
            return [to_jsonable(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot convert {type(obj).__name__} to JSON-compatible data")


def save_json(result: Any, path: str | pathlib.Path, name: str | None = None) -> pathlib.Path:
    """Serialize one experiment result with a self-describing envelope."""
    from .. import __version__

    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        _ENVELOPE_KEY: {
            "name": name if name is not None else type(result).__name__,
            "version": __version__,
        },
        "result": to_jsonable(result),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_json(path: str | pathlib.Path) -> tuple[dict, dict]:
    """Read a stored result; returns ``(metadata, result_data)``."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if _ENVELOPE_KEY not in payload or "result" not in payload:
        raise ValueError(f"{path} is not a repro experiment artifact")
    return payload[_ENVELOPE_KEY], payload["result"]


def save_csv(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    path: str | pathlib.Path,
) -> pathlib.Path:
    """Write a flat table; cells pass through :func:`to_jsonable`."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            if len(row) != len(headers):
                raise ValueError("row width does not match headers")
            writer.writerow([to_jsonable(cell) for cell in row])
    return path
