"""Table I: sampling immediately vs proxy scoring overhead (§V-B).

For every query, the paper compares the time a proxy-based approach
spends just *scanning and scoring* the dataset (before it can return its
first result) against the time ExSample — which starts sampling
immediately — takes to reach 10%, 50% and 90% of all distinct instances.
The headline property: **ExSample reaches 90% recall before the proxy
scan finishes, on every query**.

The reproduction measures ExSample frames-to-recall on the calibrated
synthetic datasets, converts to full-scale time via the §V-B throughput
model (detect 20 fps; scan 100 fps), and prints the same rows, with the
paper's published times alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..detection.costmodel import format_duration
from ..video.datasets import get_profile
from .evaluation import EvalConfig, evaluate_all
from .paper_reference import TABLE_ONE
from .reporting import format_table, section

__all__ = ["Table1Row", "Table1Result", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    dataset: str
    category: str
    scan_seconds: float
    t10_seconds: float | None
    t50_seconds: float | None
    t90_seconds: float | None
    paper_t10: str | None
    paper_t50: str | None
    paper_t90: str | None

    @property
    def beats_scan_at_90(self) -> bool | None:
        if self.t90_seconds is None:
            return None
        return self.t90_seconds < self.scan_seconds


@dataclass(frozen=True)
class Table1Result:
    config: EvalConfig
    rows: list[Table1Row]

    def all_beat_scan(self) -> bool:
        """The paper's headline claim, over the measured rows."""
        return all(r.beats_scan_at_90 for r in self.rows if r.beats_scan_at_90 is not None)


def _paper_times(dataset: str, category: str) -> tuple[str | None, str | None, str | None]:
    for row in TABLE_ONE:
        if row.dataset == dataset and row.category == category:
            return row.t10, row.t50, row.t90
    return None, None, None


def run_table1(config: EvalConfig | None = None) -> Table1Result:
    config = config if config is not None else EvalConfig()
    evaluations = evaluate_all(config)
    rows = []
    for ev in evaluations:
        profile = get_profile(ev.dataset)
        scan_seconds = config.throughput.scan_seconds(profile.total_frames)
        p10, p50, p90 = _paper_times(ev.dataset, ev.category)
        rows.append(
            Table1Row(
                dataset=ev.dataset,
                category=ev.category,
                scan_seconds=scan_seconds,
                t10_seconds=ev.full_scale_seconds(0.1, config.throughput),
                t50_seconds=ev.full_scale_seconds(0.5, config.throughput),
                t90_seconds=ev.full_scale_seconds(0.9, config.throughput),
                paper_t10=p10,
                paper_t50=p50,
                paper_t90=p90,
            )
        )
    return Table1Result(config=config, rows=rows)


def format_table1(result: Table1Result) -> str:
    lines = [section("Table I — proxy scan time vs ExSample time to 10/50/90% recall")]
    lines.append(
        f"(measured at scale={result.config.scale}, {result.config.runs} runs, "
        "times extrapolated to full scale at 20 fps detect / 100 fps scan; "
        "'paper' columns are the published values)"
    )
    headers = [
        "dataset", "category", "scan",
        "t10", "t50", "t90",
        "paper t10", "paper t50", "paper t90", "t90<scan",
    ]
    table_rows = []
    for r in result.rows:
        table_rows.append(
            [
                r.dataset,
                r.category,
                format_duration(r.scan_seconds),
                format_duration(r.t10_seconds) if r.t10_seconds is not None else "-",
                format_duration(r.t50_seconds) if r.t50_seconds is not None else "-",
                format_duration(r.t90_seconds) if r.t90_seconds is not None else "-",
                r.paper_t10 or "-",
                r.paper_t50 or "-",
                r.paper_t90 or "-",
                {True: "yes", False: "NO", None: "-"}[r.beats_scan_at_90],
            ]
        )
    lines.append(format_table(headers, table_rows))
    verdict = "HOLDS" if result.all_beat_scan() else "VIOLATED"
    lines.append(
        f"\nheadline claim 'ExSample reaches 90% recall before the proxy scan "
        f"completes, for every query': {verdict}"
    )
    return "\n".join(lines)
