"""Shared experiment machinery: workload construction and repeated runs.

The §IV simulations and the §V dataset sweeps all reduce to the same
operations — build a repository, run one sampling method for a frame
budget, collect the results curve, repeat across seeds.  Centralizing
this keeps the per-figure modules declarative.
"""

from __future__ import annotations

import numpy as np

from ..baselines.random_plus import RandomPlusSampler
from ..baselines.sequential import SequentialScanSampler
from ..baselines.uniform import UniformRandomSampler
from ..core.adaptive import AdaptiveExSample
from ..core.chunking import even_count_chunks, make_chunks
from ..core.policies import ChunkPolicy, ThompsonSampling, UniformPolicy
from ..core.sampler import ExSample, SamplingHistory
from ..detection.detector import OracleDetector
from ..tracking.discriminator import OracleDiscriminator
from ..video.repository import VideoRepository, single_clip_repository
from ..video.synthetic import place_instances

__all__ = ["make_simulation_repository", "run_history", "repeat_histories"]


def make_simulation_repository(
    total_frames: int,
    num_instances: int,
    mean_duration: float,
    skew_fraction: float | None,
    seed: int,
    category: str = "object",
) -> VideoRepository:
    """A §IV-B style workload: N instances placed into a frame range with
    the given skew and lognormal durations, as an interval-only repo."""
    rng = np.random.default_rng(seed)
    instances = place_instances(
        num_instances,
        total_frames,
        rng,
        mean_duration=mean_duration,
        skew_fraction=skew_fraction,
        category=category,
        with_boxes=False,
    )
    return single_clip_repository(total_frames, instances, name="simulation")


def run_history(
    repository: VideoRepository,
    method: str,
    max_samples: int,
    seed: int,
    num_chunks: int | None = None,
    chunk_frames: int | None = None,
    result_limit: int | None = None,
    policy: ChunkPolicy | None = None,
    batch_size: int = 1,
    use_random_plus: bool = True,
    category: str | None = None,
    static_weights: np.ndarray | None = None,
    cross_chunk_adjustment: bool = False,
    initial_chunks: int = 8,
    split_after: int = 32,
    min_chunk_frames: int = 256,
) -> SamplingHistory:
    """One run of one method; returns its results curve.

    ``method`` is one of ``exsample``, ``random``, ``random_plus``,
    ``sequential``, ``static`` (fixed chunk weights, for sanity-checking
    the Eq. IV.1 allocation inside the same pipeline) or ``adaptive``
    (the §VII self-refining chunking of
    :class:`~repro.core.adaptive.AdaptiveExSample`).  Simulation runs
    use the oracle detector/discriminator: §IV studies the sampling
    question in isolation, exactly as the paper's simulations do.
    """
    rng = np.random.default_rng(seed)
    detector = OracleDetector(repository, category=category)
    discriminator = OracleDiscriminator()

    if method in ("exsample", "static"):
        if num_chunks is not None:
            chunks = even_count_chunks(
                repository.total_frames, num_chunks, rng, use_random_plus
            )
        else:
            chunks = make_chunks(
                repository, rng, chunk_frames=chunk_frames,
                use_random_plus=use_random_plus,
            )
        if method == "static":
            if static_weights is None:
                raise ValueError("static method requires static_weights")
            chosen: ChunkPolicy = UniformPolicy(tuple(float(w) for w in static_weights))
        else:
            chosen = policy if policy is not None else ThompsonSampling()
        sampler = ExSample(
            chunks, detector, discriminator,
            policy=chosen, rng=rng, batch_size=batch_size,
            cross_chunk_adjustment=cross_chunk_adjustment,
        )
    elif method == "adaptive":
        sampler = AdaptiveExSample(
            repository.total_frames, detector, discriminator,
            initial_chunks=initial_chunks, split_after=split_after,
            min_chunk_frames=min_chunk_frames, rng=rng,
        )
    elif method == "random":
        sampler = UniformRandomSampler(
            repository, detector, discriminator, rng, charge_decode=False
        )
    elif method == "random_plus":
        sampler = RandomPlusSampler(
            repository, detector, discriminator, rng, charge_decode=False
        )
    elif method == "sequential":
        sampler = SequentialScanSampler(
            repository, detector, discriminator, charge_decode=False
        )
    else:
        raise ValueError(f"unknown method {method!r}")

    return sampler.run(result_limit=result_limit, max_samples=max_samples)


def repeat_histories(
    repository: VideoRepository,
    method: str,
    runs: int,
    max_samples: int,
    base_seed: int = 0,
    **kwargs,
) -> list[SamplingHistory]:
    """Repeat :func:`run_history` across seeds (the 21-run medians of
    Fig. 3 use this); the dataset stays fixed, the sampling varies."""
    if runs <= 0:
        raise ValueError("runs must be positive")
    return [
        run_history(
            repository, method, max_samples=max_samples,
            seed=base_seed + 1000 * k, **kwargs,
        )
        for k in range(runs)
    ]
