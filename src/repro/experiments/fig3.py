"""Fig. 3: the skew × duration simulation grid (§IV-B).

The paper places N = 2000 instances into 16 M frames with four skew levels
(none, and 95% of instances inside the central 1/4, 1/32, 1/256 of the
data) and four mean durations (14, 100, 700, 4900 frames), runs ExSample
(128 chunks) and random sampling 21 times each, and reports median
trajectories with 25–75 bands plus savings labels at 10, 100 and 1000
results.  The dashed upper-bound line is the Eq. IV.1 optimal static
allocation.

The default configuration here is a proportional scale-down (same shape:
instance density, skew and chunk count are preserved; frame count and
instance count shrink together) so the grid runs in seconds; ``full()``
reproduces the paper's exact scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import (
    TrajectoryBand,
    band_over_runs,
    log_spaced_grid,
    savings_ratio,
)
from ..analysis.optimal import (
    chunk_conditional_probabilities,
    expected_results_curve,
    optimal_weights,
)
from .reporting import format_ratio, format_table, section, sparkline
from .runner import make_simulation_repository, repeat_histories

__all__ = ["Fig3Config", "Fig3Cell", "Fig3Result", "run_fig3", "format_fig3"]

SKEW_LABELS = {None: "none", 0.25: "1/4", 1 / 32: "1/32", 1 / 256: "1/256"}


@dataclass(frozen=True)
class Fig3Config:
    total_frames: int = 400_000
    num_instances: int = 500
    mean_durations: tuple[float, ...] = (14.0, 100.0, 700.0, 4900.0)
    skews: tuple[float | None, ...] = (None, 0.25, 1 / 32, 1 / 256)
    num_chunks: int = 128
    runs: int = 7
    max_samples: int = 6000
    # targets as fractions of N: the paper's 10/100/1000 out of 2000.
    target_fractions: tuple[float, ...] = (0.005, 0.05, 0.5)
    seed: int = 0

    @staticmethod
    def full() -> "Fig3Config":
        return Fig3Config(
            total_frames=16_000_000,
            num_instances=2000,
            runs=21,
            max_samples=30_000,
        )

    @staticmethod
    def quick() -> "Fig3Config":
        return Fig3Config(
            total_frames=150_000,
            num_instances=300,
            mean_durations=(100.0, 700.0),
            skews=(None, 1 / 32),
            runs=3,
            max_samples=2500,
        )

    def targets(self) -> list[int]:
        return [max(1, round(f * self.num_instances)) for f in self.target_fractions]


@dataclass(frozen=True)
class Fig3Cell:
    """One grid cell: trajectories and savings for a (duration, skew) pair."""

    mean_duration: float
    skew: float | None
    exsample: TrajectoryBand
    random: TrajectoryBand
    optimal_curve: np.ndarray  # expected results at the band grid, Eq. IV.1
    savings: dict[int, float | None]  # target results -> savings ratio


@dataclass(frozen=True)
class Fig3Result:
    config: Fig3Config
    cells: list[Fig3Cell]

    def cell(self, mean_duration: float, skew: float | None) -> Fig3Cell:
        for c in self.cells:
            if c.mean_duration == mean_duration and c.skew == skew:
                return c
        raise KeyError((mean_duration, skew))


def run_fig3(config: Fig3Config | None = None) -> Fig3Result:
    config = config if config is not None else Fig3Config()
    grid = log_spaced_grid(config.max_samples, points=40)
    targets = config.targets()
    cells: list[Fig3Cell] = []
    for row, duration in enumerate(config.mean_durations):
        for col, skew in enumerate(config.skews):
            cell_seed = config.seed + 7919 * (row * len(config.skews) + col)
            repo = make_simulation_repository(
                config.total_frames,
                config.num_instances,
                duration,
                skew,
                seed=cell_seed,
            )
            ex_runs = repeat_histories(
                repo, "exsample", config.runs, config.max_samples,
                base_seed=cell_seed + 1, num_chunks=config.num_chunks,
            )
            rnd_runs = repeat_histories(
                repo, "random", config.runs, config.max_samples,
                base_seed=cell_seed + 2,
            )
            edges = np.linspace(
                0, config.total_frames, config.num_chunks + 1
            ).round().astype(np.int64)
            # p_matrix[i, j] = P(see instance i | frame drawn from chunk j),
            # so a weight vector w gives per-sample hit chance p_matrix @ w.
            p_matrix = chunk_conditional_probabilities(repo.instances, edges)
            weights = optimal_weights(p_matrix, config.max_samples)
            optimal_curve = expected_results_curve(p_matrix, weights, grid)
            cells.append(
                Fig3Cell(
                    mean_duration=duration,
                    skew=skew,
                    exsample=band_over_runs(ex_runs, grid),
                    random=band_over_runs(rnd_runs, grid),
                    optimal_curve=optimal_curve,
                    savings={
                        t: savings_ratio(rnd_runs, ex_runs, t) for t in targets
                    },
                )
            )
    return Fig3Result(config=config, cells=cells)


def format_fig3(result: Fig3Result) -> str:
    config = result.config
    targets = config.targets()
    lines = [section("Fig. 3 — savings grid: instance skew x mean duration")]
    lines.append(
        f"N={config.num_instances} instances in {config.total_frames} frames, "
        f"{config.num_chunks} chunks, {config.runs} runs, "
        f"budget {config.max_samples} samples"
    )
    header = ["duration \\ skew"] + [SKEW_LABELS.get(s, str(s)) for s in config.skews]
    rows = []
    for duration in config.mean_durations:
        row: list[object] = [f"{duration:.0f} frames"]
        for skew in config.skews:
            cell = result.cell(duration, skew)
            labels = [format_ratio(cell.savings[t]) for t in targets]
            row.append("/".join(labels))
        rows.append(row)
    lines.append(
        format_table(
            header, rows,
            title=f"savings (random/exsample) at {targets} results:",
        )
    )
    # one illustrative trajectory pair, highest-skew / 700-frame cell
    pick = None
    for cell in result.cells:
        if cell.skew is not None and cell.mean_duration >= 100:
            if pick is None or (cell.skew < pick.skew):
                pick = cell
    if pick is not None:
        lines.append(
            f"\ntrajectories at duration={pick.mean_duration:.0f}, "
            f"skew={SKEW_LABELS.get(pick.skew)} (log-spaced sample grid):"
        )
        lines.append(f"  exsample {sparkline(pick.exsample.median)}")
        lines.append(f"  random   {sparkline(pick.random.median)}")
        lines.append(f"  optimal  {sparkline(pick.optimal_curve)}")
    return "\n".join(lines)
