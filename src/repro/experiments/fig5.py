"""Fig. 5: per-query time savings of ExSample over random sampling.

One bar per (dataset, category) query at each recall level (.1, .5, .9).
Since neither method has an upfront cost, time savings equal frame
savings.  The paper's summary statistics over the bars:

* maximum ≈ 6x, worst case ≈ 0.75x (amsterdam/boat),
* 90th percentile 3.7x, 10th percentile 1.2x,
* geometric mean ≈ 1.9x across all bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..analysis.bootstrap import BootstrapInterval, geometric_mean_ci
from ..analysis.metrics import geometric_mean
from .evaluation import EvalConfig, QueryEvaluation, evaluate_all
from .paper_reference import FIG5_SUMMARY
from .reporting import format_ratio, format_table, section

__all__ = ["Fig5Result", "run_fig5", "format_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    config: EvalConfig
    evaluations: list[QueryEvaluation]

    def bars(self, level: float) -> list[tuple[str, str, float]]:
        """(dataset, category, savings) for one recall panel, descending
        savings — the order the paper draws the bars in."""
        out = []
        for ev in self.evaluations:
            ratio = ev.savings(level)
            if ratio is not None and math.isfinite(ratio):
                out.append((ev.dataset, ev.category, ratio))
        out.sort(key=lambda t: -t[2])
        return out

    def summary(self) -> dict[str, float]:
        all_ratios = [
            bar[2]
            for level in self.config.recall_levels
            for bar in self.bars(level)
        ]
        if not all_ratios:
            raise ValueError("no finite savings ratios measured")
        arr = np.asarray(all_ratios)
        return {
            "max_savings": float(arr.max()),
            "min_savings": float(arr.min()),
            "p90_savings": float(np.percentile(arr, 90)),
            "p10_savings": float(np.percentile(arr, 10)),
            "geometric_mean": geometric_mean(all_ratios),
            "bars": float(len(arr)),
        }

    def headline_ci(
        self, confidence: float = 0.95, replicates: int = 2000
    ) -> BootstrapInterval:
        """Bootstrap interval for the cross-query geometric mean — how
        stable the headline 1.9x is under resampling of the query set."""
        all_ratios = [
            bar[2]
            for level in self.config.recall_levels
            for bar in self.bars(level)
        ]
        return geometric_mean_ci(
            all_ratios,
            confidence=confidence,
            replicates=replicates,
            rng=np.random.default_rng(self.config.seed),
        )


def run_fig5(config: EvalConfig | None = None) -> Fig5Result:
    config = config if config is not None else EvalConfig()
    return Fig5Result(config=config, evaluations=evaluate_all(config))


def format_fig5(result: Fig5Result) -> str:
    lines = [section("Fig. 5 — savings ratio ExSample vs random, per query")]
    for level in result.config.recall_levels:
        bars = result.bars(level)
        lines.append(f"\nrecall {level}: (best and worst five)")
        show = bars[:5] + ([("...", "...", float("nan"))] if len(bars) > 10 else []) + bars[-5:]
        rows = [
            [ds, cat, format_ratio(r) if math.isfinite(r) else "..."]
            for ds, cat, r in show
        ]
        lines.append(format_table(["dataset", "category", "savings"], rows))
    s = result.summary()
    lines.append("\nsummary over all bars (paper values in parentheses):")
    lines.append(
        f"  geometric mean {s['geometric_mean']:.2f}x ({FIG5_SUMMARY['geometric_mean']}x)  "
        f"max {s['max_savings']:.1f}x ({FIG5_SUMMARY['max_savings']}x)  "
        f"min {s['min_savings']:.2f}x ({FIG5_SUMMARY['min_savings']}x)"
    )
    lines.append(
        f"  p90 {s['p90_savings']:.1f}x ({FIG5_SUMMARY['p90_savings']}x)  "
        f"p10 {s['p10_savings']:.1f}x ({FIG5_SUMMARY['p10_savings']}x)  "
        f"bars {int(s['bars'])}"
    )
    ci = result.headline_ci()
    lines.append(
        f"  geometric mean 95% bootstrap CI: [{ci.lo:.2f}x, {ci.hi:.2f}x] "
        f"over {ci.replicates} resamples of the query set"
    )
    return "\n".join(lines)
