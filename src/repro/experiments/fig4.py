"""Fig. 4: how the number of chunks affects ExSample (§IV-C).

Fixed workload (the skew-1/32, 700-frame-duration cell of Fig. 3); the
chunk count sweeps three orders of magnitude.  The paper's findings, all
checkable in this reproduction's output:

* every chunking beats random (benefit of chunking is robust);
* more chunks raise the *optimal-allocation* ceiling (dashed lines get
  steeper) because finer partitions exploit skew at smaller time scales;
* but ExSample's achieved curve is non-monotonic in M — at 1024 chunks it
  pays so many exploratory samples (each chunk must be sampled before it
  can be ranked) that it falls behind its own 128-chunk configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import TrajectoryBand, band_over_runs, log_spaced_grid
from ..analysis.optimal import (
    chunk_conditional_probabilities,
    expected_results_curve,
    optimal_weights,
)
from .reporting import format_table, section, sparkline
from .runner import make_simulation_repository, repeat_histories

__all__ = ["Fig4Config", "Fig4Series", "Fig4Result", "run_fig4", "format_fig4"]


@dataclass(frozen=True)
class Fig4Config:
    total_frames: int = 400_000
    num_instances: int = 500
    mean_duration: float = 700.0
    skew: float = 1 / 32
    chunk_counts: tuple[int, ...] = (2, 16, 128, 1024)
    runs: int = 7
    max_samples: int = 8000
    seed: int = 0

    @staticmethod
    def full() -> "Fig4Config":
        return Fig4Config(
            total_frames=16_000_000,
            num_instances=2000,
            runs=21,
            max_samples=30_000,
        )

    @staticmethod
    def quick() -> "Fig4Config":
        return Fig4Config(
            total_frames=150_000,
            num_instances=300,
            chunk_counts=(2, 16, 128),
            runs=3,
            max_samples=3000,
        )


@dataclass(frozen=True)
class Fig4Series:
    num_chunks: int
    exsample: TrajectoryBand
    optimal_curve: np.ndarray


@dataclass(frozen=True)
class Fig4Result:
    config: Fig4Config
    series: list[Fig4Series]
    random: TrajectoryBand
    grid: np.ndarray

    def final_results(self) -> dict[int | str, float]:
        """Median instances found at the end of the budget, per setting."""
        out: dict[int | str, float] = {
            s.num_chunks: s.exsample.final_median() for s in self.series
        }
        out["random"] = self.random.final_median()
        return out


def run_fig4(config: Fig4Config | None = None) -> Fig4Result:
    config = config if config is not None else Fig4Config()
    repo = make_simulation_repository(
        config.total_frames,
        config.num_instances,
        config.mean_duration,
        config.skew,
        seed=config.seed,
    )
    grid = log_spaced_grid(config.max_samples, points=40)
    rnd_runs = repeat_histories(
        repo, "random", config.runs, config.max_samples, base_seed=config.seed + 5
    )
    series: list[Fig4Series] = []
    for m in config.chunk_counts:
        ex_runs = repeat_histories(
            repo, "exsample", config.runs, config.max_samples,
            base_seed=config.seed + 17 * m, num_chunks=m,
        )
        edges = np.linspace(0, config.total_frames, m + 1).round().astype(np.int64)
        p_matrix = chunk_conditional_probabilities(repo.instances, edges)
        weights = optimal_weights(p_matrix, config.max_samples)
        series.append(
            Fig4Series(
                num_chunks=m,
                exsample=band_over_runs(ex_runs, grid),
                optimal_curve=expected_results_curve(p_matrix, weights, grid),
            )
        )
    return Fig4Result(
        config=config,
        series=series,
        random=band_over_runs(rnd_runs, grid),
        grid=grid,
    )


def format_fig4(result: Fig4Result) -> str:
    config = result.config
    lines = [section("Fig. 4 — varying the number of chunks")]
    lines.append(
        f"N={config.num_instances} instances, skew 1/32, duration "
        f"{config.mean_duration:.0f} frames, {config.runs} runs, "
        f"budget {config.max_samples} samples"
    )
    rows = []
    for s in result.series:
        gap = s.optimal_curve[-1] - s.exsample.final_median()
        rows.append(
            [
                s.num_chunks,
                s.exsample.final_median(),
                float(s.optimal_curve[-1]),
                gap,
            ]
        )
    rows.append(["random", result.random.final_median(), None, None])
    lines.append(
        format_table(
            ["chunks", "median found", "optimal bound", "gap"],
            rows,
            title="instances found at end of budget:",
        )
    )
    for s in result.series:
        lines.append(f"  M={s.num_chunks:<5d} {sparkline(s.exsample.median)}")
    lines.append(f"  random  {sparkline(result.random.median)}")
    return "\n".join(lines)
