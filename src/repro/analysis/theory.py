"""The formal analysis of §III: bias, variance, and the Poisson law of N1.

Everything ExSample *observes* is (N1, n); everything it *wants* is
R(n+1), the expected number of new results in the next sampled frame.
This module computes the exact population quantities the paper's theorems
relate, so tests and the Fig. 2 experiment can validate the estimator
against ground truth:

* ``expected_r(p, n, seen)``           — R(n+1) itself;
* ``pi_first_seen(p, n)``              — π_i(n) = p_i (1-p_i)^{n-1}, the
  probability instance *i* is first seen on sample *n*;
* ``expected_n1(p, n)``                — E[N1(n)] = Σ n·π_i(n) ... per the
  §III-A proof, the chance of *exactly one* appearance in n samples;
* ``bias_bounds(p, n)``                — the two upper bounds of Eq. III.2;
* ``variance_bound(p, n)``             — Eq. III.3;
* ``poisson_parameter(p, n)``          — λ = Σ π_i(n) of the §III-B
  sampling-distribution theorem.

All functions treat ``p`` as the vector of per-instance per-frame
probabilities and assume independent presence, exactly as the paper's
analysis does; the §III-D empirical-validation experiment is where the
independence assumption gets stress-tested.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "expected_r",
    "expected_n1",
    "exact_bias",
    "bias_bounds",
    "variance_bound",
    "exact_variance_n1",
    "poisson_parameter",
]


def _validate_p(p: np.ndarray) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1 or len(p) == 0:
        raise ValueError("p must be a non-empty 1-D vector")
    if np.any((p <= 0.0) | (p > 1.0)):
        raise ValueError("probabilities must lie in (0, 1]")
    return p


def expected_r(p: np.ndarray, n: int, seen: np.ndarray | None = None) -> float:
    """E[R(n+1)]: expected new results on sample n+1 after n misses.

    With ``seen`` given (a boolean mask of already-found instances), this
    is the *conditional* R(n+1) = Σ_{i unseen} p_i used during simulation;
    without it, the unconditional expectation Σ p_i (1-p_i)^n.
    """
    p = _validate_p(p)
    if n < 0:
        raise ValueError("n must be non-negative")
    if seen is not None:
        seen = np.asarray(seen, dtype=bool)
        if seen.shape != p.shape:
            raise ValueError("seen mask must match p")
        return float(p[~seen].sum())
    return float(np.sum(p * np.power(1.0 - p, n)))


def expected_n1(p: np.ndarray, n: int) -> float:
    """E[N1(n)] = Σ_i n p_i (1-p_i)^{n-1}: instances seen exactly once."""
    p = _validate_p(p)
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 0.0
    return float(np.sum(n * p * np.power(1.0 - p, n - 1)))


def exact_bias(p: np.ndarray, n: int) -> float:
    """E[N1(n)/n − R(n+1)] = Σ p_i π_i(n), the §III-A proof's exact form.

    π_i(n) = p_i (1-p_i)^{n-1} is the chance of exactly one appearance in
    n samples divided by n; the bias telescopes to Σ p·π(n).
    """
    p = _validate_p(p)
    if n <= 0:
        raise ValueError("n must be positive")
    pi_n = p * np.power(1.0 - p, n - 1)
    return float(np.sum(p * pi_n))


def bias_bounds(p: np.ndarray, n: int) -> tuple[float, float]:
    """The two relative-bias upper bounds of Eq. III.2.

    Returns ``(max_p_bound, moment_bound)`` where the relative bias
    E[R̂ − R]/E[R̂] is guaranteed ≤ the first and, via Cauchy–Schwarz,
    ≤ the second ``√N (µ_p + σ_p)`` ... the paper states both; the tighter
    one in practice is almost always ``max p_i``.
    """
    p = _validate_p(p)
    if n <= 0:
        raise ValueError("n must be positive")
    max_p = float(np.max(p))
    mu = float(np.mean(p))
    sigma = float(np.std(p))
    moment = math.sqrt(len(p)) * (mu + sigma)
    return max_p, moment


def variance_bound(p: np.ndarray, n: int) -> float:
    """Eq. III.3's bound: Var[N1(n)/n] ≤ E[R̂(n+1)] / n = E[N1(n)] / n²."""
    if n <= 0:
        raise ValueError("n must be positive")
    return expected_n1(p, n) / (n * n)


def exact_variance_n1(p: np.ndarray, n: int) -> float:
    """Exact Var[N1(n)] under independent instances.

    N1(n) = Σ X_i with X_i ~ Bernoulli(n π_i(n)) independent, so the
    variance is Σ q_i (1 − q_i) with q_i = n p_i (1-p_i)^{n-1}.  Always
    below the Eq. III.3 bound n λ (which drops the (1 − q) factor).
    """
    p = _validate_p(p)
    if n <= 0:
        raise ValueError("n must be positive")
    q = n * p * np.power(1.0 - p, n - 1)
    q = np.clip(q, 0.0, 1.0)
    return float(np.sum(q * (1.0 - q)))


def poisson_parameter(p: np.ndarray, n: int) -> float:
    """λ = Σ_i n p_i (1-p_i)^{n-1} of the §III-B Poisson theorem.

    For small p or large n, N1(n) is approximately Poisson(λ); the Fig. 2
    experiment compares this against the empirical histogram.
    """
    return expected_n1(p, n)
