"""Optimal static chunk weights — the Eq. IV.1 upper bound.

§IV-A derives a non-practical benchmark: if an oracle revealed each
instance's per-chunk conditional probabilities ``p_ij`` ahead of time, the
best *static* allocation of n samples across chunks would maximize

    f(w) = Σ_i 1 − (1 − p_i·w)^n        over the simplex {w ≥ 0, Σw = 1}.

``1 − (1 − x)^n`` is concave and increasing in x, so f is concave in w and
any local maximizer is global.  The paper solves it with CVXPY; we use
exponentiated-gradient ascent (mirror ascent with the entropy mirror,
which keeps iterates strictly inside the simplex and scales to the 1024-
chunk sweeps of Fig. 4) and cross-check small instances against scipy's
SLSQP in the test suite.

The dashed "optimal" curves of Figs. 3 and 4 are
:func:`expected_results_curve` evaluated at :func:`optimal_weights`
recomputed for each sample budget n.
"""

from __future__ import annotations

import numpy as np

from ..video.instances import InstanceSet

__all__ = [
    "chunk_conditional_probabilities",
    "expected_results",
    "expected_results_curve",
    "optimal_weights",
    "uniform_weights",
]


def chunk_conditional_probabilities(
    instances: InstanceSet, chunk_edges: np.ndarray
) -> np.ndarray:
    """The (N, M) matrix of ``p_ij`` for instances over a chunk partition.

    ``p_ij`` is the probability of seeing instance *i* in one frame drawn
    uniformly from chunk *j*: the overlap of the instance's visibility
    interval with the chunk, divided by the chunk's frame count.
    ``chunk_edges`` has M+1 ascending entries, ``edges[0] = 0`` through the
    total frame count.
    """
    edges = np.asarray(chunk_edges, dtype=np.int64)
    if edges.ndim != 1 or len(edges) < 2:
        raise ValueError("chunk_edges must list at least two edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("chunk_edges must be strictly increasing")
    sizes = np.diff(edges).astype(np.float64)
    matrix = np.zeros((len(instances), len(sizes)), dtype=np.float64)
    for row, inst in enumerate(instances):
        lo = np.maximum(edges[:-1], inst.start_frame)
        hi = np.minimum(edges[1:], inst.end_frame)
        overlap = np.clip(hi - lo, 0, None).astype(np.float64)
        matrix[row] = overlap / sizes
    return matrix


def uniform_weights(chunk_edges: np.ndarray) -> np.ndarray:
    """The weight vector equivalent to uniform random frame sampling:
    chunks weighted by their share of the frame space."""
    edges = np.asarray(chunk_edges, dtype=np.float64)
    sizes = np.diff(edges)
    return sizes / sizes.sum()


def expected_results(p_matrix: np.ndarray, weights: np.ndarray, n: int) -> float:
    """E[#instances found] after n weighted samples: Σ 1 − (1 − p·w)^n.

    Uses ``exp(n·log1p(−x))`` for numerical stability at the large n /
    tiny probability scales of the 16M-frame simulations.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    hit = p_matrix @ weights
    hit = np.clip(hit, 0.0, 1.0)
    miss_pow = np.where(hit < 1.0, np.exp(n * np.log1p(-np.minimum(hit, 1 - 1e-15))), 0.0)
    return float(np.sum(1.0 - miss_pow))


def expected_results_curve(
    p_matrix: np.ndarray, weights: np.ndarray, ns: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`expected_results` over many sample budgets."""
    return np.array([expected_results(p_matrix, weights, int(n)) for n in ns])


def optimal_weights(
    p_matrix: np.ndarray,
    n: int,
    max_iter: int = 500,
    tol: float = 1e-9,
    step: float | None = None,
) -> np.ndarray:
    """Solve Eq. IV.1 by exponentiated-gradient ascent on the simplex.

    Multiplicative updates ``w ← w · exp(η ∇f) / Z`` converge for concave
    f; the step size is normalized by the gradient's range so a single
    default works from 2 to 1024 chunks.  Iteration stops when the
    objective improvement falls below ``tol`` (relative).
    """
    if p_matrix.ndim != 2:
        raise ValueError("p_matrix must be (instances, chunks)")
    if n <= 0:
        raise ValueError("n must be positive")
    num_chunks = p_matrix.shape[1]
    if num_chunks == 1:
        return np.ones(1)

    w = np.full(num_chunks, 1.0 / num_chunks)
    prev_obj = expected_results(p_matrix, w, n)
    for _ in range(max_iter):
        hit = np.clip(p_matrix @ w, 0.0, 1.0 - 1e-15)
        # ∇f_j = n Σ_i (1 − p_i·w)^{n−1} p_ij, computed in log space
        miss_pow = np.exp((n - 1) * np.log1p(-hit))
        grad = n * (miss_pow @ p_matrix)
        scale = np.max(np.abs(grad))
        if scale <= 0:
            break
        eta = (step if step is not None else 1.0) / scale
        w_new = w * np.exp(eta * grad)
        w_new /= w_new.sum()
        obj = expected_results(p_matrix, w_new, n)
        if obj < prev_obj:
            # overshoot: halve the step by blending back toward w
            w_new = np.sqrt(w * w_new)
            w_new /= w_new.sum()
            obj = expected_results(p_matrix, w_new, n)
            if obj < prev_obj:
                break
        improvement = obj - prev_obj
        w = w_new
        prev_obj = obj
        if improvement < tol * max(prev_obj, 1.0):
            break
    return w
