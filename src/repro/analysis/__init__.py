"""Formal analysis (§III), optimal allocation (Eq. IV.1), skew and metrics."""

from .bootstrap import (
    BootstrapInterval,
    bootstrap_ci,
    geometric_mean_ci,
    savings_ratio_ci,
)
from .metrics import (
    TrajectoryBand,
    band_over_runs,
    geometric_mean,
    log_spaced_grid,
    median_samples_to_target,
    results_at,
    samples_to_target,
    savings_ratio,
)
from .optimal import (
    chunk_conditional_probabilities,
    expected_results,
    expected_results_curve,
    optimal_weights,
    uniform_weights,
)
from .skew import (
    SkewSummary,
    chunk_instance_counts,
    half_coverage_set,
    skew_metric,
)
from .theory import (
    bias_bounds,
    exact_bias,
    exact_variance_n1,
    expected_n1,
    expected_r,
    poisson_parameter,
    variance_bound,
)

__all__ = [
    "BootstrapInterval",
    "bootstrap_ci",
    "geometric_mean_ci",
    "savings_ratio_ci",
    "TrajectoryBand",
    "band_over_runs",
    "geometric_mean",
    "log_spaced_grid",
    "median_samples_to_target",
    "results_at",
    "samples_to_target",
    "savings_ratio",
    "chunk_conditional_probabilities",
    "expected_results",
    "expected_results_curve",
    "optimal_weights",
    "uniform_weights",
    "SkewSummary",
    "chunk_instance_counts",
    "half_coverage_set",
    "skew_metric",
    "bias_bounds",
    "exact_bias",
    "exact_variance_n1",
    "expected_n1",
    "expected_r",
    "poisson_parameter",
    "variance_bound",
]
