"""Instance skew across chunks — the S metric of Fig. 6.

Fig. 6 annotates representative queries with a skew metric S and colors
"the minimum set of chunks that cover half the instances".  The paper
refers to §IV-B for the definition without restating a formula; the
reproduction uses the natural one consistent with the reported values
(archie/car S ≈ 1.1, night-street/person S ≈ 4.5, dashcam/bicycle S ≈ 14):

    S = (M / 2) / k_half

where M is the number of chunks and ``k_half`` is the size of the smallest
chunk set containing at least half the instances.  A perfectly uniform
spread needs M/2 chunks for half the instances (S = 1); concentration
drives S up — S = 14 means half the results live in 1/28 of the data,
and a sampler aware of that could roughly double its hit rate by
reallocating samples there (the §IV-B 2x-skew argument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..video.instances import InstanceSet

__all__ = ["chunk_instance_counts", "half_coverage_set", "skew_metric", "SkewSummary"]


def chunk_instance_counts(
    instances: InstanceSet, chunk_edges: np.ndarray
) -> np.ndarray:
    """Instances per chunk, assigning each instance to the chunk holding
    its temporal midpoint (each instance counted exactly once)."""
    edges = np.asarray(chunk_edges, dtype=np.int64)
    if edges.ndim != 1 or len(edges) < 2:
        raise ValueError("chunk_edges must list at least two edges")
    if np.any(np.diff(edges) <= 0):
        raise ValueError("chunk_edges must be strictly increasing")
    counts = np.zeros(len(edges) - 1, dtype=np.int64)
    mids = np.array(
        [(inst.start_frame + inst.end_frame) // 2 for inst in instances],
        dtype=np.int64,
    )
    if len(mids):
        pos = np.clip(np.searchsorted(edges, mids, side="right") - 1, 0, len(counts) - 1)
        np.add.at(counts, pos, 1)
    return counts


def half_coverage_set(counts: np.ndarray) -> np.ndarray:
    """Indices of the smallest chunk set covering ≥ half the instances.

    Greedy by descending count, which is optimal for this covering
    objective.  These are Fig. 6's blue bars.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = counts.sum()
    if total == 0:
        return np.array([], dtype=np.int64)
    order = np.argsort(-counts, kind="stable")
    cum = np.cumsum(counts[order])
    k = int(np.searchsorted(cum, (total + 1) // 2) + 1)
    return np.sort(order[:k])


def skew_metric(counts: np.ndarray) -> float:
    """S = (M/2) / k_half; 1 for uniform spread, larger = more skew."""
    counts = np.asarray(counts, dtype=np.int64)
    if len(counts) == 0:
        raise ValueError("need at least one chunk")
    if counts.sum() == 0:
        return 1.0
    k_half = len(half_coverage_set(counts))
    return (len(counts) / 2.0) / k_half


@dataclass(frozen=True)
class SkewSummary:
    """One Fig. 6 panel: the per-chunk histogram and derived skew stats."""

    dataset: str
    category: str
    counts: tuple[int, ...]
    total_instances: int
    skew: float
    half_coverage_chunks: tuple[int, ...]

    @staticmethod
    def compute(
        dataset: str,
        category: str,
        instances: InstanceSet,
        chunk_edges: np.ndarray,
    ) -> "SkewSummary":
        counts = chunk_instance_counts(instances, chunk_edges)
        return SkewSummary(
            dataset=dataset,
            category=category,
            counts=tuple(int(c) for c in counts),
            total_instances=int(counts.sum()),
            skew=skew_metric(counts),
            half_coverage_chunks=tuple(int(c) for c in half_coverage_set(counts)),
        )
