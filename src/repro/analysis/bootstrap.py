"""Bootstrap confidence intervals for the evaluation's headline numbers.

The paper reports point statistics — per-query savings ratios, their
geometric mean (1.9x), percentiles — over a modest number of runs and
queries.  A reproduction should also say how *stable* those numbers are,
so this module adds nonparametric bootstrap intervals:

* :func:`bootstrap_ci` — percentile bootstrap for any statistic of one
  sample;
* :func:`savings_ratio_ci` — resamples the per-run frames-to-target of
  baseline and method independently, rebuilding the ratio-of-medians
  each replicate (the exact construction of the Fig. 3/5 labels);
* :func:`geometric_mean_ci` — interval for the headline cross-query
  geometric mean, resampling queries.

All functions take an explicit ``rng`` so experiment outputs stay
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .metrics import geometric_mean

__all__ = ["BootstrapInterval", "bootstrap_ci", "savings_ratio_ci", "geometric_mean_ci"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    lo: float
    hi: float
    confidence: float
    replicates: int

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ValueError("interval bounds out of order")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return f"{self.estimate:.3g} [{self.lo:.3g}, {self.hi:.3g}] ({pct}% CI)"


def _validate(confidence: float, replicates: int) -> None:
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if replicates <= 0:
        raise ValueError("replicates must be positive")


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.median,
    confidence: float = 0.95,
    replicates: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """Percentile bootstrap for ``statistic`` over one sample."""
    _validate(confidence, replicates)
    data = np.asarray(list(values), dtype=np.float64)
    if len(data) == 0:
        raise ValueError("need at least one value")
    rng = rng if rng is not None else np.random.default_rng()
    stats = np.empty(replicates)
    for k in range(replicates):
        resample = data[rng.integers(0, len(data), size=len(data))]
        stats[k] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(statistic(data)),
        lo=float(np.quantile(stats, alpha)),
        hi=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        replicates=replicates,
    )


def savings_ratio_ci(
    baseline_samples_to_target: Sequence[float],
    method_samples_to_target: Sequence[float],
    confidence: float = 0.95,
    replicates: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """Interval for the ratio of medians (the Fig. 3/5 savings label).

    Inputs are per-run frames-to-target for each arm (runs that never
    reached the target should be filtered or censored by the caller, as
    :func:`~repro.analysis.metrics.median_samples_to_target` does).
    Baseline and method runs are independent, so each bootstrap
    replicate resamples them independently.
    """
    _validate(confidence, replicates)
    base = np.asarray(list(baseline_samples_to_target), dtype=np.float64)
    ours = np.asarray(list(method_samples_to_target), dtype=np.float64)
    if len(base) == 0 or len(ours) == 0:
        raise ValueError("both arms need at least one run")
    if np.any(base <= 0) or np.any(ours <= 0):
        raise ValueError("frames-to-target must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    ratios = np.empty(replicates)
    for k in range(replicates):
        b = np.median(base[rng.integers(0, len(base), size=len(base))])
        m = np.median(ours[rng.integers(0, len(ours), size=len(ours))])
        ratios[k] = b / m
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        estimate=float(np.median(base) / np.median(ours)),
        lo=float(np.quantile(ratios, alpha)),
        hi=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
        replicates=replicates,
    )


def geometric_mean_ci(
    ratios: Sequence[float],
    confidence: float = 0.95,
    replicates: int = 2000,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """Interval for the cross-query geometric mean (the headline 1.9x),
    resampling queries with replacement."""
    _validate(confidence, replicates)
    vals = [float(v) for v in ratios]
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive ratios")
    return bootstrap_ci(
        vals,
        statistic=lambda arr: geometric_mean(arr.tolist()),
        confidence=confidence,
        replicates=replicates,
        rng=rng,
    )
