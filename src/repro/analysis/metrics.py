"""Evaluation metrics: results curves, bands, savings ratios.

The paper reports three kinds of numbers, all derived from "distinct
results found vs frames processed" curves:

* **trajectory bands** (Figs. 3, 4): median and 25–75 percentile of the
  results curve across repeated runs, on a common sample grid;
* **savings ratios** (Figs. 3, 5): the ratio of frames the baseline needs
  to reach a target (result count or recall level) over the frames
  ExSample needs — computed on medians across runs, labelled at 10/100/
  1000 results in Fig. 3 and at .1/.5/.9 recall in Fig. 5;
* **geometric means** of savings across queries (the headline 1.9x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.sampler import SamplingHistory

__all__ = [
    "results_at",
    "samples_to_target",
    "TrajectoryBand",
    "band_over_runs",
    "median_samples_to_target",
    "savings_ratio",
    "geometric_mean",
    "log_spaced_grid",
]


def results_at(history: SamplingHistory, n: int) -> int:
    """Distinct results after the first ``n`` processed frames (step
    interpolation; n beyond the run returns the final count)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    results = history.results
    if len(results) == 0 or n == 0:
        return 0
    return int(results[min(n, len(results)) - 1])


def samples_to_target(history: SamplingHistory, target: int) -> int | None:
    """Frames processed when ``target`` results were first reached."""
    return history.samples_to_reach(target)


def log_spaced_grid(max_samples: int, points: int = 60, start: int = 1) -> np.ndarray:
    """A log-spaced sample grid like the x axes of Figs. 3–4."""
    if max_samples < start:
        raise ValueError("max_samples must be >= start")
    grid = np.unique(
        np.round(np.logspace(math.log10(start), math.log10(max_samples), points))
    ).astype(np.int64)
    return grid


@dataclass(frozen=True)
class TrajectoryBand:
    """Median and percentile band of results curves over repeated runs."""

    grid: np.ndarray
    median: np.ndarray
    lo: np.ndarray
    hi: np.ndarray

    def final_median(self) -> float:
        return float(self.median[-1]) if len(self.median) else 0.0


def band_over_runs(
    histories: Sequence[SamplingHistory],
    grid: np.ndarray,
    percentiles: tuple[float, float] = (25.0, 75.0),
) -> TrajectoryBand:
    """Align runs on ``grid`` and take median and percentile envelopes —
    the solid lines and shaded areas of Figs. 3 and 4."""
    if not histories:
        raise ValueError("need at least one run")
    lo_p, hi_p = percentiles
    if not 0.0 <= lo_p < hi_p <= 100.0:
        raise ValueError("percentiles must be ordered within [0, 100]")
    matrix = np.zeros((len(histories), len(grid)), dtype=np.float64)
    for row, history in enumerate(histories):
        results = history.results
        for col, n in enumerate(grid):
            matrix[row, col] = (
                results[min(int(n), len(results)) - 1] if len(results) and n > 0 else 0
            )
    return TrajectoryBand(
        grid=np.asarray(grid, dtype=np.int64),
        median=np.median(matrix, axis=0),
        lo=np.percentile(matrix, lo_p, axis=0),
        hi=np.percentile(matrix, hi_p, axis=0),
    )


def median_samples_to_target(
    histories: Sequence[SamplingHistory], target: int
) -> float | None:
    """Median frames-to-target across runs; ``None`` when fewer than half
    the runs ever reach the target (the paper leaves such labels blank)."""
    if not histories:
        raise ValueError("need at least one run")
    hits = [h.samples_to_reach(target) for h in histories]
    reached = [h for h in hits if h is not None]
    if len(reached) * 2 < len(hits):
        return None
    # censor unfinished runs at +inf; the median over all runs is defined
    # because at least half reached the target.
    values = [float(h) if h is not None else math.inf for h in hits]
    return float(np.median(values))


def savings_ratio(
    baseline_histories: Sequence[SamplingHistory],
    method_histories: Sequence[SamplingHistory],
    target: int,
) -> float | None:
    """Fig. 3/5's savings label: baseline frames / method frames to reach
    ``target`` results (medians across runs).  >1 means the method wins."""
    base = median_samples_to_target(baseline_histories, target)
    ours = median_samples_to_target(method_histories, target)
    if base is None or ours is None or ours == 0:
        return None
    return base / ours


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive ratios (the paper's overall 1.9x)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(vals))))
