"""repro — a full reproduction of *ExSample: Efficient Searches on Video
Repositories through Adaptive Sampling* (Moll et al., ICDE 2022).

The package is organized as the paper's system is:

* :mod:`repro.core` — the contribution: the N1/n estimator, Gamma belief,
  Thompson sampling over chunks, the Algorithm-1 loop, and the
  distinct-object query API.
* :mod:`repro.video` — the video repository substrate (synthetic, with
  calibrated profiles of the six evaluation datasets).
* :mod:`repro.detection` — the black-box object detector and cost model.
* :mod:`repro.tracking` — the SORT-like discriminator.
* :mod:`repro.baselines` — sequential scan, uniform random, random+, and
  a BlazeIt-style proxy baseline.
* :mod:`repro.analysis` — the formal bounds of §III, optimal chunk
  weights (Eq. IV.1), skew metrics and evaluation metrics.
* :mod:`repro.experiments` — one module per paper table/figure.
* :mod:`repro.serving` — the query serving subsystem: resumable
  sessions, the shared detection cache, and the frames-per-tick budget
  scheduler.
* :mod:`repro.distributed` — shard-parallel execution: a clip-shard
  planner, per-shard worker processes, and the coordinator that keeps
  sharded answers byte-identical to single-process ones.
* :mod:`repro.simulation` — the deterministic end-to-end simulation
  harness (randomized scenarios, fault injection, oracle parity).
"""

from .core import (
    AdaptiveExSample,
    BayesUCB,
    ChunkStatistics,
    DecisionRng,
    DistinctObjectQuery,
    ExSample,
    GammaBelief,
    MultiQueryExSample,
    ProgressTracker,
    ProximityScorer,
    QueryEngine,
    QueryResult,
    SamplingHistory,
    ScoredOrder,
    ThompsonSampling,
)
from .detection import (
    CachingDetector,
    DetectionCache,
    OracleDetector,
    SimulatedDetector,
    ThroughputModel,
)
from .serving import QueryService
from .tracking import OracleDiscriminator, TrackingDiscriminator
from .video import VideoRepository, build_dataset, dataset_names

__version__ = "1.0.0"

__all__ = [
    "AdaptiveExSample",
    "BayesUCB",
    "ChunkStatistics",
    "DecisionRng",
    "DistinctObjectQuery",
    "ExSample",
    "GammaBelief",
    "MultiQueryExSample",
    "ProgressTracker",
    "QueryEngine",
    "QueryResult",
    "ProximityScorer",
    "SamplingHistory",
    "ScoredOrder",
    "ThompsonSampling",
    "CachingDetector",
    "DetectionCache",
    "OracleDetector",
    "QueryService",
    "SimulatedDetector",
    "ThroughputModel",
    "OracleDiscriminator",
    "TrackingDiscriminator",
    "VideoRepository",
    "build_dataset",
    "dataset_names",
    "__version__",
]
