"""Track construction and storage for the distinct-object discriminator.

When the paper's system finds a *new* detection, it runs a SORT-like
tracker "backwards and forwards through video" to recover the object's
position in every frame where it was visible (§II-B); future detections
that land on those positions are recognized as duplicates.

Here the forward/backward pass is simulated against ground truth: the
detection is resolved to its true instance and the constructed track is
that instance's trajectory, optionally *shrunk* around the detection frame
by a coverage factor to model tracker failure (real trackers lose objects
before their true extent ends).  False-positive detections produce
single-frame tracks, exactly as a tracker with nothing to follow would.

:class:`TrackStore` holds the accumulated tracks and answers the only
query the discriminator needs — "which tracks cover frame f?" — in O(1)
expected via coarse time bucketing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..detection.detector import Detection
from ..video.geometry import Box, Trajectory
from ..video.instances import InstanceSet

__all__ = ["Track", "TrackStore", "GroundTruthTrackExtender"]


@dataclass
class Track:
    """One distinct query result and its recovered spatio-temporal extent."""

    track_id: int
    category: str
    trajectory: Trajectory
    first_detection: Detection
    times_seen: int = 1
    true_instance_id: int | None = None  # provenance, for evaluation only

    @property
    def start_frame(self) -> int:
        return self.trajectory.start_frame

    @property
    def end_frame(self) -> int:
        return self.trajectory.end_frame

    def covers(self, frame: int) -> bool:
        return self.trajectory.covers(frame)

    def box_at(self, frame: int) -> Box:
        return self.trajectory.box_at(frame)


class TrackStore:
    """Time-bucketed index of tracks for fast frame-coverage queries.

    A track spanning ``[s, e)`` registers in every bucket of width
    ``bucket_frames`` that its span touches; a frame query inspects only
    its own bucket.  With the default width, even million-frame datasets
    keep per-query candidate lists tiny.
    """

    def __init__(self, bucket_frames: int = 4096):
        if bucket_frames <= 0:
            raise ValueError("bucket_frames must be positive")
        self._bucket_frames = bucket_frames
        self._buckets: dict[int, list[Track]] = {}
        self._tracks: list[Track] = []
        self._next_id = itertools.count()

    def __len__(self) -> int:
        return len(self._tracks)

    @property
    def tracks(self) -> list[Track]:
        return list(self._tracks)

    def new_track(
        self,
        category: str,
        trajectory: Trajectory,
        first_detection: Detection,
        true_instance_id: int | None = None,
    ) -> Track:
        track = Track(
            track_id=next(self._next_id),
            category=category,
            trajectory=trajectory,
            first_detection=first_detection,
            true_instance_id=true_instance_id,
        )
        self._tracks.append(track)
        first = trajectory.start_frame // self._bucket_frames
        last = (trajectory.end_frame - 1) // self._bucket_frames
        for bucket in range(first, last + 1):
            self._buckets.setdefault(bucket, []).append(track)
        return track

    def covering(self, frame: int) -> list[Track]:
        """All stored tracks whose trajectory covers ``frame``."""
        bucket = self._buckets.get(frame // self._bucket_frames)
        if not bucket:
            return []
        return [t for t in bucket if t.covers(frame)]

    def seen_exactly_once(self) -> int:
        """The N1 statistic over the whole store (per-chunk N1 lives in the
        sampler; this global view is used by diagnostics and tests)."""
        return sum(1 for t in self._tracks if t.times_seen == 1)


class GroundTruthTrackExtender:
    """Simulates the backward/forward SORT pass against ground truth.

    ``coverage`` in (0, 1] controls how much of the true extent the
    simulated tracker recovers: 1.0 is a perfect tracker; 0.8 loses 20% of
    the span (split evenly before/after, but never dropping the detection
    frame itself).  Imperfect coverage makes later re-detections of the
    same object near its appearance edges register as *new* objects — the
    duplicate-result failure mode real systems have.
    """

    def __init__(self, instances: InstanceSet, coverage: float = 1.0):
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must lie in (0, 1]")
        self._instances = instances
        self._coverage = coverage

    def extend(self, detection: Detection) -> Trajectory:
        """Build the track trajectory for a newly discovered detection."""
        inst_id = detection.true_instance_id
        if inst_id is None or inst_id not in self._instances:
            # Nothing to track: a false positive yields a single-frame track.
            return Trajectory.stationary(detection.frame_index, 1, detection.box)
        inst = self._instances[inst_id]
        start, end = inst.start_frame, inst.end_frame
        frame = detection.frame_index
        if not (start <= frame < end):
            # Jittered frame bookkeeping should not happen, but degrade
            # gracefully to a single-frame track rather than crash a query.
            return Trajectory.stationary(frame, 1, detection.box)
        if self._coverage < 1.0:
            keep_before = int((frame - start) * self._coverage)
            keep_after = int((end - 1 - frame) * self._coverage)
            start = frame - keep_before
            end = frame + keep_after + 1
        keyframes = [(start, inst.box_at(start))]
        if end - 1 > start:
            keyframes.append((end - 1, inst.box_at(end - 1)))
        if start < frame < end - 1:
            keyframes.insert(1, (frame, inst.box_at(frame)))
        return Trajectory(keyframes)
