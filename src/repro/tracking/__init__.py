"""SORT-like tracking substrate: IoU matching, track store, discriminators."""

from .discriminator import (
    Discriminator,
    MatchOutcome,
    OracleDiscriminator,
    TrackingDiscriminator,
)
from .matching import MatchResult, greedy_match
from .tracker import GroundTruthTrackExtender, Track, TrackStore

__all__ = [
    "Discriminator",
    "MatchOutcome",
    "OracleDiscriminator",
    "TrackingDiscriminator",
    "MatchResult",
    "greedy_match",
    "GroundTruthTrackExtender",
    "Track",
    "TrackStore",
]
