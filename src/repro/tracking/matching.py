"""Detection-to-track association by greedy IoU matching.

SORT-style trackers associate detections with existing tracks by solving a
bipartite matching on the IoU matrix.  Full Hungarian assignment is
overkill at the densities video queries see; like many SORT
implementations we use the greedy variant: repeatedly take the highest
remaining IoU above threshold and remove its row and column.  For
well-separated objects (the common case) this equals the optimal
assignment.
"""

from __future__ import annotations

__all__ = ["greedy_match", "MatchResult"]


class MatchResult:
    """Outcome of one association round.

    ``pairs`` maps detection index -> track index for every match made;
    ``unmatched_detections`` and ``unmatched_tracks`` list the leftovers.
    """

    def __init__(
        self,
        pairs: dict[int, int],
        unmatched_detections: list[int],
        unmatched_tracks: list[int],
    ):
        self.pairs = pairs
        self.unmatched_detections = unmatched_detections
        self.unmatched_tracks = unmatched_tracks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchResult(pairs={self.pairs}, "
            f"unmatched_detections={self.unmatched_detections}, "
            f"unmatched_tracks={self.unmatched_tracks})"
        )


def greedy_match(iou, threshold: float = 0.5) -> MatchResult:
    """Greedily match rows (detections) to columns (tracks).

    ``iou`` may be an ndarray or a list of row lists (the two layouts
    :func:`repro.video.geometry.iou_matrix` produces); matching scans
    row-major and takes the *first* maximum, exactly like ``np.argmax``
    on the flattened matrix, so the assignment is backend-independent.
    Ties below ``threshold`` are never matched.  Complexity is
    O(K · N·M) for K matches, which is trivial at per-frame scales.
    """
    if hasattr(iou, "ndim"):
        if iou.ndim != 2:
            raise ValueError("iou must be a 2-D matrix")
        num_dets, num_tracks = (int(n) for n in iou.shape)
        rows = [[float(v) for v in row] for row in iou]
    else:
        rows = [list(row) for row in iou]
        if rows and any(len(row) != len(rows[0]) for row in rows):
            raise ValueError("iou must be a 2-D matrix")
        num_dets = len(rows)
        num_tracks = len(rows[0]) if rows else 0
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must lie in [0, 1]")
    pairs: dict[int, int] = {}
    if num_dets and num_tracks:
        while True:
            best = -1.0
            det = track = -1
            for d, row in enumerate(rows):
                for t, v in enumerate(row):
                    if v > best:
                        best = v
                        det, track = d, t
            if best < threshold or best <= 0.0:
                break
            pairs[det] = track
            rows[det] = [-1.0] * num_tracks
            for row in rows:
                row[track] = -1.0

    unmatched_dets = [d for d in range(num_dets) if d not in pairs]
    matched_tracks = set(pairs.values())
    unmatched_tracks = [t for t in range(num_tracks) if t not in matched_tracks]
    return MatchResult(pairs, unmatched_dets, unmatched_tracks)
