"""Detection-to-track association by greedy IoU matching.

SORT-style trackers associate detections with existing tracks by solving a
bipartite matching on the IoU matrix.  Full Hungarian assignment is
overkill at the densities video queries see; like many SORT
implementations we use the greedy variant: repeatedly take the highest
remaining IoU above threshold and remove its row and column.  For
well-separated objects (the common case) this equals the optimal
assignment.
"""

from __future__ import annotations


import numpy as np

__all__ = ["greedy_match", "MatchResult"]


class MatchResult:
    """Outcome of one association round.

    ``pairs`` maps detection index -> track index for every match made;
    ``unmatched_detections`` and ``unmatched_tracks`` list the leftovers.
    """

    def __init__(
        self,
        pairs: dict[int, int],
        unmatched_detections: list[int],
        unmatched_tracks: list[int],
    ):
        self.pairs = pairs
        self.unmatched_detections = unmatched_detections
        self.unmatched_tracks = unmatched_tracks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchResult(pairs={self.pairs}, "
            f"unmatched_detections={self.unmatched_detections}, "
            f"unmatched_tracks={self.unmatched_tracks})"
        )


def greedy_match(iou: np.ndarray, threshold: float = 0.5) -> MatchResult:
    """Greedily match rows (detections) to columns (tracks).

    Ties below ``threshold`` are never matched.  Complexity is
    O(K · N·M) for K matches, which is trivial at per-frame scales.
    """
    if iou.ndim != 2:
        raise ValueError("iou must be a 2-D matrix")
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must lie in [0, 1]")

    num_dets, num_tracks = iou.shape
    pairs: dict[int, int] = {}
    if num_dets and num_tracks:
        work = iou.astype(np.float64, copy=True)
        while True:
            flat = int(np.argmax(work))
            det, track = divmod(flat, num_tracks)
            if work[det, track] < threshold or work[det, track] <= 0.0:
                break
            pairs[det] = track
            work[det, :] = -1.0
            work[:, track] = -1.0

    unmatched_dets = [d for d in range(num_dets) if d not in pairs]
    matched_tracks = set(pairs.values())
    unmatched_tracks = [t for t in range(num_tracks) if t not in matched_tracks]
    return MatchResult(pairs, unmatched_dets, unmatched_tracks)
