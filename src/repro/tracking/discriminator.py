"""Discriminators: deciding which detections are *new* distinct objects.

Algorithm 1 consumes two detection subsets per processed frame:

* ``d0`` — detections that matched **no** previous result (new objects);
* ``d1`` — detections whose matched result had been seen **exactly once**
  before this frame (those results graduate out of the N1 statistic).

The update ``N1 += |d0| - |d1|`` keeps N1 equal to the number of distinct
results seen exactly once, which is what the estimator of Eq. III.1 needs.

Two implementations share the interface:

* :class:`TrackingDiscriminator` — the paper's: IoU matching against
  stored tracks, with the backward/forward track extension simulated from
  ground truth (see :mod:`repro.tracking.tracker`).
* :class:`OracleDiscriminator` — matches by true instance id; used to
  isolate sampling behaviour from tracking behaviour and to run the
  large-scale interval-only simulations of §IV cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..detection.detector import Detection
from ..video.geometry import iou_matrix
from ..video.instances import InstanceSet
from .matching import greedy_match
from .tracker import GroundTruthTrackExtender, Track, TrackStore

__all__ = [
    "Discriminator",
    "MatchOutcome",
    "TrackingDiscriminator",
    "OracleDiscriminator",
]


@dataclass(frozen=True)
class MatchOutcome:
    """The (d0, d1) split for one processed frame, plus bookkeeping."""

    new_detections: tuple[Detection, ...]  # d0
    second_sightings: tuple[Detection, ...]  # d1

    @property
    def d0(self) -> int:
        return len(self.new_detections)

    @property
    def d1(self) -> int:
        return len(self.second_sightings)


class Discriminator(Protocol):
    """The discriminator interface of Algorithm 1."""

    def get_matches(
        self, frame_index: int, detections: Sequence[Detection]
    ) -> MatchOutcome:  # pragma: no cover - protocol
        ...

    def add(self, frame_index: int, detections: Sequence[Detection]) -> None:  # pragma: no cover
        ...

    def observe(
        self, frame_index: int, detections: Sequence[Detection]
    ) -> MatchOutcome:  # pragma: no cover - protocol
        ...

    def result_count(self) -> int:  # pragma: no cover - protocol
        ...


class TrackingDiscriminator:
    """IoU-tracking discriminator (the paper's §II-B fixed discriminator).

    ``get_matches`` computes the association without mutating state and
    caches it; the following ``add`` for the same frame applies it.  The
    one-shot ``observe`` does both, which is what the samplers use.
    """

    def __init__(
        self,
        instances: InstanceSet,
        iou_threshold: float = 0.5,
        track_coverage: float = 1.0,
        bucket_frames: int = 4096,
    ):
        if not 0.0 < iou_threshold <= 1.0:
            raise ValueError("iou_threshold must lie in (0, 1]")
        self._store = TrackStore(bucket_frames=bucket_frames)
        self._extender = GroundTruthTrackExtender(instances, coverage=track_coverage)
        self._iou_threshold = iou_threshold
        self._pending: dict[int, tuple[tuple[Detection, ...], dict[int, Track]]] = {}

    # ------------------------------------------------------------- matching

    def get_matches(
        self, frame_index: int, detections: Sequence[Detection]
    ) -> MatchOutcome:
        dets = tuple(detections)
        candidates = self._store.covering(frame_index)
        if not dets or not candidates:
            assignment: dict[int, Track] = {}
        else:
            det_boxes = [d.box for d in dets]
            track_boxes = [t.box_at(frame_index) for t in candidates]
            result = greedy_match(
                iou_matrix(det_boxes, track_boxes), threshold=self._iou_threshold
            )
            assignment = {
                det_idx: candidates[track_idx]
                for det_idx, track_idx in result.pairs.items()
            }
        self._pending[frame_index] = (dets, assignment)

        d0 = tuple(d for i, d in enumerate(dets) if i not in assignment)
        d1 = tuple(
            d
            for i, d in enumerate(dets)
            if i in assignment and assignment[i].times_seen == 1
        )
        return MatchOutcome(new_detections=d0, second_sightings=d1)

    def add(self, frame_index: int, detections: Sequence[Detection]) -> None:
        dets = tuple(detections)
        cached = self._pending.pop(frame_index, None)
        if cached is None or cached[0] != dets:
            self.get_matches(frame_index, dets)
            cached = self._pending.pop(frame_index)
        _, assignment = cached
        for i, det in enumerate(dets):
            track = assignment.get(i)
            if track is not None:
                track.times_seen += 1
            else:
                trajectory = self._extender.extend(det)
                self._store.new_track(
                    category=det.category,
                    trajectory=trajectory,
                    first_detection=det,
                    true_instance_id=det.true_instance_id,
                )

    def observe(
        self, frame_index: int, detections: Sequence[Detection]
    ) -> MatchOutcome:
        outcome = self.get_matches(frame_index, detections)
        self.add(frame_index, detections)
        return outcome

    # ------------------------------------------------------------- results

    def result_count(self) -> int:
        return len(self._store)

    @property
    def results(self) -> list[Track]:
        return self._store.tracks

    def distinct_true_instances(self) -> set[int]:
        """True instance ids among results — evaluation-only provenance."""
        return {
            t.true_instance_id
            for t in self._store.tracks
            if t.true_instance_id is not None
        }


class OracleDiscriminator:
    """Perfect discriminator keyed on true instance ids.

    Every false positive is a brand-new singleton result, matching how a
    tracking discriminator treats a box nothing else ever overlaps.
    """

    def __init__(self) -> None:
        self._seen_counts: dict[int, int] = {}
        self._result_count = 0
        self._false_positives = 0

    def get_matches(
        self, frame_index: int, detections: Sequence[Detection]
    ) -> MatchOutcome:
        d0 = []
        d1 = []
        seen_this_frame: set[int] = set()
        for det in detections:
            inst = det.true_instance_id
            if inst is None:
                d0.append(det)
            elif inst not in self._seen_counts and inst not in seen_this_frame:
                d0.append(det)
                seen_this_frame.add(inst)
            elif self._seen_counts.get(inst) == 1:
                d1.append(det)
        return MatchOutcome(tuple(d0), tuple(d1))

    def add(self, frame_index: int, detections: Sequence[Detection]) -> None:
        for det in detections:
            inst = det.true_instance_id
            if inst is None:
                self._false_positives += 1
                self._result_count += 1
            else:
                if inst not in self._seen_counts:
                    self._result_count += 1
                self._seen_counts[inst] = self._seen_counts.get(inst, 0) + 1

    def observe(
        self, frame_index: int, detections: Sequence[Detection]
    ) -> MatchOutcome:
        outcome = self.get_matches(frame_index, detections)
        self.add(frame_index, detections)
        return outcome

    def result_count(self) -> int:
        return self._result_count

    def distinct_true_instances(self) -> set[int]:
        return set(self._seen_counts)

    @property
    def false_positive_results(self) -> int:
        return self._false_positives
