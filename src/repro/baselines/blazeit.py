"""A BlazeIt-style proxy-model baseline (§II-B, §V-B).

Proxy methods train a cheap per-query model, run it over **every** frame
of the dataset (an upfront scan at io/decode-bound throughput), then
process frames through the expensive detector in descending proxy-score
order.  Two structural properties drive the paper's comparison, and both
are reproduced here:

* **Upfront scan cost** — no result can be returned before the whole
  dataset has been scored; Table I charges this as
  ``total_frames / scan_fps`` seconds.
* **Score-ordered processing with duplicate avoidance** — the highest
  scoring frames tend to contain objects, but not necessarily *new*
  objects; the common mitigation (also granted to the baseline in §III's
  comparison) is skipping frames that are temporally close to already
  processed ones.

The proxy itself is simulated: a frame's score is a monotone function of
how many query-relevant objects ground truth places in it, corrupted by
Gaussian noise whose magnitude sets the proxy's quality.  ``noise=0``
yields a *perfect* proxy — the strongest possible version of the baseline,
which is the right comparison for the structural argument the paper makes
(even a perfect proxy pays the scan).
"""

from __future__ import annotations

from typing import Iterator

from ..core import backend
from ..detection.detector import Detector
from ..tracking.discriminator import Discriminator
from ..video.instances import InstanceSet
from ..video.repository import VideoRepository
from .base import FrameSequenceSampler

__all__ = ["ProxyModel", "BlazeItSampler", "score_ordered_frames"]


class ProxyModel:
    """A simulated cheap scoring model over the whole frame range.

    Scores are computed vectorized from ground-truth occupancy: the
    per-frame count of visible relevant instances passes through
    ``tanh`` (saturating, like a classifier confidence) plus noise.
    """

    def __init__(
        self,
        instances: InstanceSet,
        total_frames: int,
        noise: float = 0.1,
        seed: int = 0,
    ):
        backend.require_numpy("the BlazeIt proxy-model baseline")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self._total_frames = total_frames
        self._noise = noise
        self._seed = seed
        self._instances = instances
        self._scores = None

    @property
    def total_frames(self) -> int:
        return self._total_frames

    def scores(self):
        """Score every frame (the 'scan'); cached after the first call."""
        if self._scores is None:
            np = backend.np
            occupancy = np.zeros(self._total_frames + 1, dtype=np.float64)
            for inst in self._instances:
                occupancy[inst.start_frame] += 1.0
                occupancy[inst.end_frame] -= 1.0
            counts = np.cumsum(occupancy[:-1])
            rng = np.random.default_rng(self._seed)
            clean = np.tanh(counts)
            noisy = clean + rng.normal(0.0, self._noise, size=self._total_frames)
            self._scores = noisy
        return self._scores

    def auc_proxy_quality(self) -> float:
        """Probability a random positive frame outscores a random negative
        frame (AUC) — a diagnostic for how good the simulated proxy is."""
        np = backend.np
        scores = self.scores()
        occupancy = np.zeros(self._total_frames + 1, dtype=np.int64)
        for inst in self._instances:
            occupancy[inst.start_frame] += 1
            occupancy[inst.end_frame] -= 1
        positive = np.cumsum(occupancy[:-1]) > 0
        pos = scores[positive]
        neg = scores[~positive]
        if len(pos) == 0 or len(neg) == 0:
            return float("nan")
        # exact AUC via rank statistics
        order = np.argsort(np.concatenate([neg, pos]), kind="stable")
        ranks = np.empty(len(order), dtype=np.float64)
        ranks[order] = np.arange(1, len(order) + 1)
        pos_ranks = ranks[len(neg):]
        auc = (pos_ranks.sum() - len(pos) * (len(pos) + 1) / 2) / (len(pos) * len(neg))
        return float(auc)


def score_ordered_frames(scores, min_gap: int = 0) -> Iterator[int]:
    """Frames in descending score order, skipping near-duplicates.

    ``min_gap`` implements the duplicate-avoidance heuristic: once a frame
    is emitted, frames within ``min_gap`` frames of it are suppressed
    (they would almost certainly show the same objects).  Suppressed
    frames are *not* revisited — the scan already spent their budget.
    """
    backend.require_numpy("the BlazeIt score ordering")
    if min_gap < 0:
        raise ValueError("min_gap must be non-negative")
    order = backend.np.argsort(-scores, kind="stable")
    if min_gap == 0:
        yield from (int(f) for f in order)
        return
    emitted_blocks: set[int] = set()
    block = 2 * min_gap + 1
    for frame in order:
        frame = int(frame)
        b = frame // block
        # a frame conflicts if any emitted frame lies within min_gap; with
        # block size 2*min_gap+1 it suffices to check the 3 nearby blocks.
        if any(nb in emitted_blocks for nb in (b - 1, b, b + 1)):
            continue
        emitted_blocks.add(b)
        yield frame


class BlazeItSampler(FrameSequenceSampler):
    """Proxy-score-ordered limit-query processing with upfront scan.

    ``scan_frames_charged`` exposes the frames the proxy had to score —
    the quantity Table I converts to time at 100 fps.  Frame processing
    after the scan proceeds exactly like every other baseline.
    """

    def __init__(
        self,
        repository: VideoRepository,
        detector: Detector,
        discriminator: Discriminator,
        category: str | None = None,
        noise: float = 0.1,
        min_gap: int = 0,
        seed: int = 0,
        charge_decode: bool = True,
    ):
        instances = (
            repository.instances
            if category is None
            else repository.instances_of(category)
        )
        self.proxy = ProxyModel(
            instances, repository.total_frames, noise=noise, seed=seed
        )
        self.scan_frames_charged = repository.total_frames
        super().__init__(
            frames=score_ordered_frames(self.proxy.scores(), min_gap=min_gap),
            detector=detector,
            discriminator=discriminator,
            repository=repository if charge_decode else None,
        )
