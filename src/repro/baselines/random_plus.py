"""The random+ baseline: stratified without-replacement sampling (§III-F).

Plain uniform sampling "allows samples to happen very close to each other
in quick succession"; random+ deliberately spreads early samples — one
random frame out of every hour, then one out of every not-yet-sampled half
hour, and so on.  The paper evaluates this order both as a standalone
baseline and as the within-chunk order inside ExSample (where
:mod:`repro.core.chunking` applies it per chunk).
"""

from __future__ import annotations

from typing import Iterator

from ..core.chunking import RandomPlusOrder
from ..core.rng import DecisionRng
from ..detection.detector import Detector
from ..tracking.discriminator import Discriminator
from ..video.repository import VideoRepository
from .base import FrameSequenceSampler

__all__ = ["RandomPlusSampler", "random_plus_frame_order"]


def random_plus_frame_order(
    total_frames: int, rng
) -> Iterator[int]:
    """Lazy stratified order over ``[0, total_frames)``."""
    order = RandomPlusOrder(0, total_frames, rng)
    while True:
        frame = order.draw()
        if frame is None:
            return
        yield frame


class RandomPlusSampler(FrameSequenceSampler):
    """Whole-repository random+ sampling (the §III-F ablation baseline)."""

    def __init__(
        self,
        repository: VideoRepository,
        detector: Detector,
        discriminator: Discriminator,
        rng=None,
        charge_decode: bool = True,
    ):
        rng = rng if rng is not None else DecisionRng()
        super().__init__(
            frames=random_plus_frame_order(repository.total_frames, rng),
            detector=detector,
            discriminator=discriminator,
            repository=repository if charge_decode else None,
        )
