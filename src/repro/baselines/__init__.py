"""Comparator methods: sequential scan, uniform random, random+, BlazeIt-style proxy."""

from .base import FrameSequenceSampler
from .blazeit import BlazeItSampler, ProxyModel, score_ordered_frames
from .random_plus import RandomPlusSampler, random_plus_frame_order
from .sequential import SequentialScanSampler, sequential_frame_order
from .uniform import UniformRandomSampler, uniform_frame_order

__all__ = [
    "FrameSequenceSampler",
    "BlazeItSampler",
    "ProxyModel",
    "score_ordered_frames",
    "RandomPlusSampler",
    "random_plus_frame_order",
    "SequentialScanSampler",
    "sequential_frame_order",
    "UniformRandomSampler",
    "uniform_frame_order",
]
