"""The uniform random-sampling baseline (§II-B).

"Iteratively process frames uniformly sampled from the video repository
(without replacement)."  This is the efficient baseline ExSample's savings
are measured against throughout the evaluation.
"""

from __future__ import annotations

from typing import Iterator

from ..core.chunking import UniformOrder
from ..core.rng import DecisionRng
from ..detection.detector import Detector
from ..tracking.discriminator import Discriminator
from ..video.repository import VideoRepository
from .base import FrameSequenceSampler

__all__ = ["UniformRandomSampler", "uniform_frame_order"]


def uniform_frame_order(
    total_frames: int, rng
) -> Iterator[int]:
    """Lazy uniform-without-replacement order over ``[0, total_frames)``."""
    order = UniformOrder(0, total_frames, rng)
    while True:
        frame = order.draw()
        if frame is None:
            return
        yield frame


class UniformRandomSampler(FrameSequenceSampler):
    """Uniform random sampling without replacement over the repository."""

    def __init__(
        self,
        repository: VideoRepository,
        detector: Detector,
        discriminator: Discriminator,
        rng=None,
        charge_decode: bool = True,
    ):
        rng = rng if rng is not None else DecisionRng()
        super().__init__(
            frames=uniform_frame_order(repository.total_frames, rng),
            detector=detector,
            discriminator=discriminator,
            repository=repository if charge_decode else None,
        )
