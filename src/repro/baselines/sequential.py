"""The naive sequential-scan baseline (§II-B).

Processes frames in temporal order with an optional stride ("sample only
one out of every n frames").  The paper notes its two failure modes, both
observable with this implementation: high variance from uneven object
placement (the scan can get stuck in an empty stretch) and sensitivity of
the stride to unknown object durations (too small re-detects the same
object; too large skips short-lived ones entirely).
"""

from __future__ import annotations

from typing import Iterator

from ..detection.detector import Detector
from ..tracking.discriminator import Discriminator
from ..video.repository import VideoRepository
from .base import FrameSequenceSampler

__all__ = ["SequentialScanSampler", "sequential_frame_order"]


def sequential_frame_order(
    total_frames: int, stride: int = 1, start: int = 0
) -> Iterator[int]:
    """Frames ``start, start+stride, ...`` — one pass over the data."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    if not 0 <= start < total_frames:
        raise ValueError("start must lie inside the frame range")
    return iter(range(start, total_frames, stride))


class SequentialScanSampler(FrameSequenceSampler):
    """Naive execution: scan in order, optionally subsampled by a stride."""

    def __init__(
        self,
        repository: VideoRepository,
        detector: Detector,
        discriminator: Discriminator,
        stride: int = 1,
        start: int = 0,
        charge_decode: bool = True,
    ):
        super().__init__(
            frames=sequential_frame_order(repository.total_frames, stride, start),
            detector=detector,
            discriminator=discriminator,
            repository=repository if charge_decode else None,
        )
        self.stride = stride
