"""Shared machinery for the non-adaptive baselines.

Every baseline in §II-B is "a sampling loop where the choice of which
frame to process next is based on an algorithm-specific decision" (§V-A).
:class:`FrameSequenceSampler` factors out everything except that choice:
subclasses (or callers) provide a lazy frame-index sequence, and the base
class runs the identical detect→discriminate→record pipeline that
:class:`repro.core.sampler.ExSample` uses, so that comparisons measure the
*sampling decision* and nothing else.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.sampler import SamplingHistory, StepRecord, process_frame
from ..detection.detector import Detector
from ..tracking.discriminator import Discriminator
from ..video.repository import VideoRepository

__all__ = ["FrameSequenceSampler"]


class FrameSequenceSampler:
    """Runs the Algorithm-1 pipeline over an externally chosen frame order.

    The ``frames`` iterator defines the baseline: uniform random for the
    random baseline, a stratified order for random+, arithmetic for the
    sequential scan, score-descending for the proxy method.  Exhaustion of
    the iterator means the whole repository has been processed.
    """

    def __init__(
        self,
        frames: Iterator[int],
        detector: Detector,
        discriminator: Discriminator,
        repository: VideoRepository | None = None,
    ):
        self._frames = frames
        self._detector = detector
        self._discriminator = discriminator
        self._repository = repository
        self._history = SamplingHistory()
        self._exhausted = False

    # ------------------------------------------------------------ properties

    @property
    def history(self) -> SamplingHistory:
        return self._history

    @property
    def results_found(self) -> int:
        return self._discriminator.result_count()

    @property
    def frames_processed(self) -> int:
        return len(self._history)

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def discriminator(self) -> Discriminator:
        return self._discriminator

    # ------------------------------------------------------------- execution

    def step(self) -> list[StepRecord]:
        """Process the next frame of the sequence (empty list at the end)."""
        if self._exhausted:
            raise RuntimeError("frame sequence is exhausted")
        try:
            frame = next(self._frames)
        except StopIteration:
            self._exhausted = True
            return []
        d0, d1 = process_frame(
            frame, self._detector, self._discriminator, self._repository
        )
        total = self._discriminator.result_count()
        self._history.append(frame, d0, total)
        return [
            StepRecord(
                sample_index=len(self._history),
                chunk=0,
                frame_index=frame,
                d0=d0,
                d1=d1,
                results_total=total,
            )
        ]

    def run(
        self,
        result_limit: int | None = None,
        max_samples: int | None = None,
        callback: Callable[[StepRecord], None] | None = None,
    ) -> SamplingHistory:
        """Same contract as :meth:`repro.core.sampler.ExSample.run`."""
        if result_limit is not None and result_limit <= 0:
            raise ValueError("result_limit must be positive")
        if max_samples is not None and max_samples <= 0:
            raise ValueError("max_samples must be positive")
        while not self._exhausted:
            if result_limit is not None and self.results_found >= result_limit:
                break
            if max_samples is not None and self.frames_processed >= max_samples:
                break
            for record in self.step():
                if callback is not None:
                    callback(record)
        return self._history
