"""Legacy-installer shim; all metadata lives in pyproject.toml.

The package is a src/ layout: `pip install -e .` discovers `repro`
under src/ via [tool.setuptools.packages.find] there.
"""

from setuptools import setup

setup()
