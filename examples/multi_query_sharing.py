"""Concurrent searches that share every detector invocation.

An object detector emits boxes for all categories at once, so two
concurrent searches should never sample frames separately.  This script
runs three queries over a fixed-camera corpus with
:class:`MultiQueryExSample` — one shared Algorithm-1 loop in which each
query keeps its own per-chunk statistics and the chunk choice maximizes
the combined expected yield — and compares against running the same
queries back to back.

Run with::

    python examples/multi_query_sharing.py
"""

import numpy as np

from repro import MultiQueryExSample, OracleDetector, OracleDiscriminator
from repro.core.chunking import even_count_chunks
from repro.detection.costmodel import ThroughputModel, format_duration
from repro.experiments.reporting import format_table
from repro.video.datasets import build_dataset, scaled_chunk_frames

SCALE = 0.04
LIMITS = {"bicycle": 20, "person": 20, "truck": 20}


def make_engine(repo, limits, seed):
    rng = np.random.default_rng(seed)
    chunk_frames = scaled_chunk_frames("archie", SCALE)
    chunks = even_count_chunks(
        repo.total_frames, max(2, repo.total_frames // chunk_frames), rng
    )
    return MultiQueryExSample(
        chunks,
        OracleDetector(repo),  # all categories in one pass
        limits,
        discriminator_factory=lambda _c: OracleDiscriminator(),
        rng=rng,
    )


def main() -> None:
    repo = build_dataset("archie", categories=list(LIMITS), scale=SCALE, seed=17)
    throughput = ThroughputModel()
    print(f"corpus: {repo.total_frames:,} frames; queries: {LIMITS}\n")

    shared = make_engine(repo, LIMITS, seed=17)
    shared.run(max_samples=repo.total_frames)

    rows = []
    serial_total = 0
    for category, limit in LIMITS.items():
        single = make_engine(repo, {category: limit}, seed=17)
        single.run(max_samples=repo.total_frames)
        serial_total += single.frames_processed
        rows.append([f"{category} alone", single.frames_processed])
    rows.append(["serial total", serial_total])
    rows.append(["shared loop", shared.frames_processed])
    print(format_table(["execution", "detector frames"], rows))

    saved = serial_total - shared.frames_processed
    print(
        f"\nsharing saves {saved} detector frames "
        f"({format_duration(throughput.detection_seconds(saved))} of GPU time), "
        f"a {serial_total / shared.frames_processed:.1f}x reduction"
    )
    for category, state in shared.queries.items():
        print(f"  {category:<8s} {state.results_found}/{state.limit} found")


if __name__ == "__main__":
    main()
