"""Rare-event mining: a handful of motorcycle examples from BDD clips.

The paper's 10%-recall setting models "an autonomous vehicle data
scientist looking for a few test examples" (§V-A).  The object is rare
(the bdd1k/motor query, N=509 across 1000 clips), the user wants 25
examples, and every clip is its own chunk — the §IV-C stress case where
ExSample must rank 1000 arms from scratch.

The scan-vs-sample asymmetry is starkest here: a proxy pipeline scores
the whole corpus before its first result, while sampling methods return
results immediately.  This is Table I's argument at the scale of one
query.

Run with::

    python examples/rare_event_mining.py
"""

from repro import DistinctObjectQuery, QueryEngine, build_dataset
from repro.detection.costmodel import ThroughputModel, format_duration

SCALE = 0.25  # 250 of the 1000 BDD clips
LIMIT = 25


def main() -> None:
    repo = build_dataset("bdd1k", categories=["motor"], scale=SCALE, seed=3)
    throughput = ThroughputModel()
    engine = QueryEngine(repo, category="motor", seed=3)  # one chunk per clip
    instances = len(repo.instances_of("motor"))
    print(
        f"corpus: {repo.num_clips} clips / {repo.total_frames:,} frames, "
        f"{instances} distinct motorcycles"
    )
    print(f"query: LIMIT {LIMIT} distinct motorcycles\n")

    # what a proxy pipeline must pay before its first result:
    scan = throughput.scan_seconds(repo.total_frames)
    print(f"upfront proxy scan of the corpus would take {format_duration(scan)}")

    query = DistinctObjectQuery("motor", limit=LIMIT)
    for method in ("exsample", "random", "sequential"):
        result = engine.execute(query, method=method)
        verdict = "ok" if result.satisfied else "FELL SHORT"
        print(
            f"  {method:<11s} {result.results_returned:3d}/{LIMIT} results in "
            f"{result.frames_processed:6d} frames = "
            f"{format_duration(result.detector_seconds)} [{verdict}]"
        )

    ex = engine.execute(query, method="exsample")
    if ex.detector_seconds < scan:
        print(
            f"\nExSample satisfies the LIMIT before a proxy even finishes "
            f"scanning ({format_duration(ex.detector_seconds)} vs "
            f"{format_duration(scan)})"
        )


if __name__ == "__main__":
    main()
